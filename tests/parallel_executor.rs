//! Property and integration tests of the parallel sharded executor:
//! `drain_parallel(w)` and the long-lived `ShardedRuntime` must be
//! **bit-identical** to the serial `drain_round_robin` for arbitrary
//! worker counts and session mixes, and sink consumers must see each
//! session's event stream in exactly the serial order.

use alert::sched::runtime::{EpisodeEvent, Runtime, SessionSpec};
use alert::sched::{Episode, FamilyKind};
use alert::stats::units::{Joules, Seconds};
use alert::workload::{Goal, Scenario, SessionId};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// One deterministic session spec from a (scenario-kind, seed) pair.
fn session_spec(kind: usize, seed: u64) -> SessionSpec {
    let scenario = match kind % 3 {
        0 => Scenario::default_env(),
        1 => Scenario::memory_env(300 + seed),
        _ => Scenario::compute_env(600 + seed),
    };
    SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.35 + 0.01 * (seed % 6) as f64), 0.9),
        scenario,
        n_inputs: 8 + (seed % 3) as usize * 4,
        seed: Some(1000 + seed),
        // Exercise heterogeneous schemes across shards.
        policy: if seed.is_multiple_of(4) {
            Some("App-only".to_string())
        } else {
            None
        },
    }
}

/// Everything of a summary that is deterministic (the scheduler overhead
/// is wall-clock and may differ across runs and threads).
fn summary_modulo_overhead(ep: &Episode) -> (usize, usize, f64, f64) {
    (
        ep.summary.measured,
        ep.summary.violations,
        ep.summary.avg_energy.get(),
        ep.summary.avg_quality,
    )
}

fn assert_equivalent(
    parallel: &[(SessionId, Episode)],
    serial: &[(SessionId, Episode)],
    label: &str,
) {
    assert_eq!(parallel.len(), serial.len(), "{label}: episode counts");
    for ((id, ep), (rid, rep)) in parallel.iter().zip(serial) {
        assert_eq!(id, rid, "{label}: id order");
        assert_eq!(ep.scheme, rep.scheme, "{label}: {id} scheme");
        assert_eq!(ep.records, rep.records, "{label}: {id} records diverged");
        assert_eq!(
            summary_modulo_overhead(ep),
            summary_modulo_overhead(rep),
            "{label}: {id} summary diverged"
        );
    }
}

proptest! {
    /// The headline invariant: for arbitrary worker counts and session
    /// mixes, the parallel drain's episodes are bit-identical to the
    /// serial drain's.
    #[test]
    fn drain_parallel_is_bit_identical_to_round_robin(
        workers in 1usize..9,
        mix in proptest::collection::vec((0usize..3, 0i64..1000), 1..10),
    ) {
        let open_all = |rt: &mut Runtime| -> Vec<SessionId> {
            mix.iter()
                .map(|&(kind, seed)| {
                    rt.session(session_spec(kind, seed as u64)).open().unwrap()
                })
                .collect()
        };

        let mut serial = Runtime::builder().build().unwrap();
        open_all(&mut serial);
        let reference = serial.drain_round_robin().unwrap();

        let mut parallel = Runtime::builder().build().unwrap();
        open_all(&mut parallel);
        let episodes = parallel.drain_parallel(workers).unwrap();
        prop_assert_eq!(parallel.session_count(), 0);
        assert_equivalent(&episodes, &reference, &format!("workers={workers}"));
    }

    /// Sink consumers see each session's events exactly as under the
    /// serial drain: `InputProcessed` in index order carrying the very
    /// records of the episode, then one `SessionClosed`.
    #[test]
    fn parallel_sink_preserves_per_session_order(
        workers in 1usize..9,
        mix in proptest::collection::vec((0usize..3, 0i64..1000), 1..8),
    ) {
        let (tx, rx) = mpsc::channel();
        let mut rt = Runtime::builder().sink(tx).build().unwrap();
        let ids: Vec<SessionId> = mix
            .iter()
            .map(|&(kind, seed)| rt.session(session_spec(kind, seed as u64)).open().unwrap())
            .collect();
        let episodes = rt.drain_parallel(workers).unwrap();
        drop(rt); // drop the sender inside the runtime

        let mut streams: BTreeMap<SessionId, Vec<EpisodeEvent>> = BTreeMap::new();
        for event in rx.iter() {
            let session = match &event {
                EpisodeEvent::SessionOpened { session, .. }
                | EpisodeEvent::InputProcessed { session, .. }
                | EpisodeEvent::SessionClosed { session, .. } => *session,
                // Telemetry is off by default; none may appear here.
                EpisodeEvent::Telemetry { .. } => {
                    prop_assert!(false, "unexpected telemetry with TelemetryConfig::Off");
                    unreachable!()
                }
            };
            streams.entry(session).or_default().push(event);
        }
        prop_assert_eq!(streams.len(), ids.len());
        for (id, episode) in &episodes {
            let stream = &streams[id];
            prop_assert!(matches!(stream[0], EpisodeEvent::SessionOpened { .. }));
            prop_assert!(matches!(stream[stream.len() - 1], EpisodeEvent::SessionClosed { .. }));
            let processed: Vec<_> = stream
                .iter()
                .filter_map(|e| match e {
                    EpisodeEvent::InputProcessed { record, .. } => Some(record.clone()),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(
                &processed,
                &episode.records,
                "sink records of {} must match the episode in order",
                id
            );
        }
    }
}

/// A CPU+GPU runtime under a shared 230 W node envelope (the placement
/// bench's heterogeneous node).
fn hetero_builder() -> alert::sched::runtime::RuntimeBuilder {
    Runtime::builder()
        .platform(alert::platform::PlatformId::Cpu1)
        .extra_backend(alert::platform::PlatformId::Gpu)
        .shared_budget(alert::stats::units::Watts(230.0))
}

/// A session mix for the heterogeneous node: scenarios include the
/// GPU-targeted HeteroServing script, and every built-in placement-aware
/// scheme appears.
fn hetero_spec(kind: usize, seed: u64) -> SessionSpec {
    let scenario = match kind % 3 {
        0 => Scenario::hetero_serving(300 + seed),
        1 => Scenario::memory_env(600 + seed),
        _ => Scenario::default_env(),
    };
    SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.2 + 0.01 * (seed % 6) as f64), 0.9),
        scenario,
        n_inputs: 8 + (seed % 3) as usize * 4,
        seed: Some(2000 + seed),
        policy: Some(["ALERT", "Sys-only", "No-coord"][(seed % 3) as usize].to_string()),
    }
}

proptest! {
    /// Cross-device determinism: for arbitrary worker counts and session
    /// mixes on a shared-budget CPU+GPU node, the parallel drain's
    /// episodes — including every record's device placement — are
    /// bit-identical to the serial drain's.
    #[test]
    fn hetero_drain_parallel_is_bit_identical_to_round_robin(
        workers in 1usize..9,
        mix in proptest::collection::vec((0usize..3, 0i64..1000), 1..8),
    ) {
        let open_all = |rt: &mut Runtime| -> Vec<SessionId> {
            mix.iter()
                .map(|&(kind, seed)| {
                    rt.session(hetero_spec(kind, seed as u64)).open().unwrap()
                })
                .collect()
        };

        let mut serial = hetero_builder().build().unwrap();
        open_all(&mut serial);
        let reference = serial.drain_round_robin().unwrap();

        let mut parallel = hetero_builder().build().unwrap();
        open_all(&mut parallel);
        let episodes = parallel.drain_parallel(workers).unwrap();
        assert_equivalent(&episodes, &reference, &format!("hetero workers={workers}"));
        // assert_equivalent compares records wholesale, which covers the
        // device column; make the placement comparison explicit anyway.
        for ((_, ep), (_, rep)) in episodes.iter().zip(&reference) {
            let devices: Vec<usize> = ep.records.iter().map(|r| r.device).collect();
            let ref_devices: Vec<usize> = rep.records.iter().map(|r| r.device).collect();
            prop_assert_eq!(devices, ref_devices);
        }
    }

    /// Checkpoint/restore re-homes a session onto the same device
    /// topology: cut a heterogeneous session at an arbitrary point,
    /// restore the snapshot into a fresh CPU+GPU runtime, and the
    /// remaining inputs must land on the same devices with the same
    /// outcomes as an uninterrupted run.
    #[test]
    fn hetero_snapshot_restore_re_homes_devices(
        kind in 0usize..3,
        seed in 0i64..500,
        cut_frac in 0.1f64..0.9,
    ) {
        // Only ALERT exports controller state for checkpointing; the
        // device-topology re-homing under test is policy-independent.
        let spec = SessionSpec {
            policy: Some("ALERT".to_string()),
            ..hetero_spec(kind, seed as u64)
        };
        let n = spec.n_inputs;
        let cut = ((n as f64 * cut_frac) as usize).clamp(1, n - 1);

        let mut reference = hetero_builder().build().unwrap();
        let id = reference.session(spec.clone()).open().unwrap();
        reference.run_to_completion(id).unwrap();
        let reference = reference.close(id).unwrap();

        let mut rt = hetero_builder().build().unwrap();
        let id = rt.session(spec).open().unwrap();
        for _ in 0..cut {
            rt.submit(id).unwrap().unwrap();
        }
        let snap = rt.snapshot_session(id).unwrap();

        let mut resumed = hetero_builder().build().unwrap();
        let rid = resumed.restore_session(&snap).unwrap();
        resumed.run_to_completion(rid).unwrap();
        let resumed = resumed.close(rid).unwrap();

        prop_assert_eq!(&resumed.records, &reference.records,
            "resumed episode diverged (cut at {}/{})", cut, n);
        let devices: Vec<usize> = resumed.records.iter().map(|r| r.device).collect();
        let ref_devices: Vec<usize> = reference.records.iter().map(|r| r.device).collect();
        prop_assert_eq!(devices, ref_devices);
    }
}

/// Grouped (NLP1) streams carry per-session shared-deadline budgets; the
/// parallel drain must not perturb them either.
#[test]
fn drain_parallel_matches_serial_on_grouped_streams() {
    let spec = |seed: u64| SessionSpec {
        goal: Goal::minimize_error(Seconds(0.12), Joules(6.0)),
        scenario: Scenario::memory_env(seed),
        n_inputs: 60,
        seed: Some(seed),
        policy: None,
    };
    let build = || {
        Runtime::builder()
            .family(FamilyKind::Sentence)
            .build()
            .unwrap()
    };
    let mut serial = build();
    for s in 0..6u64 {
        serial.session(spec(70 + s)).open().unwrap();
    }
    let reference = serial.drain_round_robin().unwrap();

    for workers in [2, 4, 7] {
        let mut rt = build();
        for s in 0..6u64 {
            rt.session(spec(70 + s)).open().unwrap();
        }
        let episodes = rt.drain_parallel(workers).unwrap();
        assert_equivalent(&episodes, &reference, &format!("grouped workers={workers}"));
    }
}

/// The long-lived sharded runtime serves the same episodes as one serial
/// runtime, end to end: open routing, interleaved submits, parallel
/// drain, and per-session event ordering through its sink.
#[test]
fn sharded_runtime_is_bit_identical_to_serial_runtime() {
    const N: u64 = 10;
    let mut serial = Runtime::builder().build().unwrap();
    let serial_ids: Vec<SessionId> = (0..N)
        .map(|i| serial.session(session_spec(i as usize, i)).open().unwrap())
        .collect();
    // Interleave some manual submits before draining the rest.
    for &id in &serial_ids {
        serial.submit(id).unwrap();
    }
    let reference = serial.drain_round_robin().unwrap();

    let (tx, rx) = mpsc::channel();
    let mut sharded = Runtime::builder().sink(tx).build_sharded(3).unwrap();
    let sharded_ids: Vec<SessionId> = (0..N)
        .map(|i| sharded.session(session_spec(i as usize, i)).open().unwrap())
        .collect();
    assert_eq!(serial_ids, sharded_ids, "dense id allocation");
    for &id in &sharded_ids {
        sharded.submit(id).unwrap();
    }
    let episodes = sharded.drain().unwrap();
    drop(sharded);
    assert_equivalent(&episodes, &reference, "sharded vs serial");

    // Per-session event ordering through the sharded sink.
    let mut per_session: BTreeMap<SessionId, Vec<EpisodeEvent>> = BTreeMap::new();
    for event in rx.iter() {
        let session = match &event {
            EpisodeEvent::SessionOpened { session, .. }
            | EpisodeEvent::InputProcessed { session, .. }
            | EpisodeEvent::SessionClosed { session, .. } => *session,
            // Telemetry is off by default; none may appear here.
            EpisodeEvent::Telemetry { .. } => {
                panic!("unexpected telemetry with TelemetryConfig::Off")
            }
        };
        per_session.entry(session).or_default().push(event);
    }
    for (id, episode) in &episodes {
        let stream = &per_session[id];
        assert!(matches!(stream[0], EpisodeEvent::SessionOpened { .. }));
        let indices: Vec<usize> = stream
            .iter()
            .filter_map(|e| match e {
                EpisodeEvent::InputProcessed { record, .. } => Some(record.index),
                _ => None,
            })
            .collect();
        assert_eq!(
            indices,
            (0..episode.records.len()).collect::<Vec<_>>(),
            "{id}: InputProcessed must arrive in index order"
        );
        assert!(matches!(
            stream[stream.len() - 1],
            EpisodeEvent::SessionClosed { .. }
        ));
    }
}
