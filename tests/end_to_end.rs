//! End-to-end integration tests: full episodes across all crates,
//! asserting the paper's qualitative findings hold on the reproduction.

use alert::models::ModelFamily;
use alert::platform::Platform;
use alert::sched::{
    run_episode, AlertScheduler, AppOnly, EpisodeEnv, NoCoord, Oracle, OracleStatic, Scheduler,
    SysOnly,
};
use alert::stats::units::{Seconds, Watts};
use alert::workload::{Goal, InputStream, Scenario, TaskId};
use std::sync::Arc;

struct World {
    platform: Platform,
    family: ModelFamily,
    stream: InputStream,
    goal: Goal,
    env: Arc<EpisodeEnv>,
}

fn world(goal: Goal, scenario: Scenario, n: usize, seed: u64) -> World {
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();
    let stream = InputStream::generate(TaskId::Img2, n, seed);
    let env = Arc::new(EpisodeEnv::build(&platform, &scenario, &stream, &goal, seed).unwrap());
    World {
        platform,
        family,
        stream,
        goal,
        env,
    }
}

fn run(w: &World, s: &mut dyn Scheduler) -> alert::sched::Episode {
    run_episode(s, &w.env, &w.family, &w.stream, &w.goal).unwrap()
}

/// Paper §5.2 ordering on one representative minimize-energy setting:
/// Oracle ≤ ALERT ≪ App-only; ALERT honors the constraints.
#[test]
fn energy_ordering_holds_under_contention() {
    let w = world(
        Goal::minimize_energy(Seconds(0.4), 0.90),
        Scenario::memory_env(21),
        400,
        21,
    );
    let mut alert = AlertScheduler::standard(&w.family, &w.platform, w.goal).unwrap();
    let mut oracle = Oracle::new(w.env.clone(), w.family.clone(), w.goal);
    let mut app = AppOnly::new(&w.family, &w.platform);

    let ep_alert = run(&w, &mut alert);
    let ep_oracle = run(&w, &mut oracle);
    let ep_app = run(&w, &mut app);

    assert!(
        ep_alert.summary.violation_rate() <= 0.10,
        "ALERT violations"
    );
    assert!(
        ep_oracle.summary.avg_energy.get() <= ep_alert.summary.avg_energy.get() * 1.05,
        "oracle {} vs alert {}",
        ep_oracle.summary.avg_energy,
        ep_alert.summary.avg_energy
    );
    assert!(
        ep_app.summary.avg_energy.get() > ep_alert.summary.avg_energy.get() * 1.25,
        "app-only must waste energy: {} vs {}",
        ep_app.summary.avg_energy,
        ep_alert.summary.avg_energy
    );
}

/// Sys-only cannot meet accuracy floors above its pinned fastest model.
#[test]
fn sys_only_structurally_violates_high_floors() {
    // Floor 0.90: comfortably above the fastest model (0.855), comfortably
    // below what Sparse ResNet-50 delivers (grid-realistic).
    let w = world(
        Goal::minimize_energy(Seconds(0.5), 0.90),
        Scenario::default_env(),
        200,
        3,
    );
    let mut sys = SysOnly::new(&w.family, &w.platform, w.goal);
    let ep = run(&w, &mut sys);
    assert!(ep.summary.disqualified());
    // ALERT meets the same floor.
    let mut alert = AlertScheduler::standard(&w.family, &w.platform, w.goal).unwrap();
    let ep = run(&w, &mut alert);
    assert!(!ep.summary.disqualified());
}

/// No-coord is beaten by ALERT-Any with the identical candidate set
/// (paper §5.2: coordination is the difference, not the candidates).
#[test]
fn coordination_beats_no_coordination() {
    let w = world(
        Goal::minimize_error(Seconds(0.4), Watts(25.0) * Seconds(0.4)),
        Scenario::memory_env(5),
        400,
        5,
    );
    let mut alert_any = AlertScheduler::anytime_only(&w.family, &w.platform, w.goal).unwrap();
    let mut nc = NoCoord::new(&w.family, &w.platform, w.goal);
    let ep_any = run(&w, &mut alert_any);
    let ep_nc = run(&w, &mut nc);
    // Table 4 semantics: disqualification first; among qualified episodes,
    // compare the objective (error = 1 − quality here).
    let score = |e: &alert::sched::Episode| (e.summary.disqualified(), 1.0 - e.summary.avg_quality);
    assert!(
        score(&ep_any) <= score(&ep_nc),
        "ALERT-Any {:?} must beat No-coord {:?}",
        score(&ep_any),
        score(&ep_nc)
    );
}

/// Episodes are bit-reproducible (same seed) and sensitive to the seed.
#[test]
fn determinism_and_seed_sensitivity() {
    let mk = |seed: u64| {
        let w = world(
            Goal::minimize_energy(Seconds(0.4), 0.90),
            Scenario::compute_env(seed),
            150,
            seed,
        );
        let mut alert = AlertScheduler::standard(&w.family, &w.platform, w.goal).unwrap();
        run(&w, &mut alert)
    };
    let a = mk(9);
    let b = mk(9);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.model, y.model);
        assert_eq!(x.cap, y.cap);
        assert_eq!(x.latency, y.latency);
    }
    let c = mk(10);
    let same = a
        .records
        .iter()
        .zip(&c.records)
        .all(|(x, y)| x.latency == y.latency);
    assert!(!same, "different seeds must differ");
}

/// The paper's static baseline is pinned across the whole requirement
/// range (one configuration per cell): provisioned for the tight setting,
/// it must waste energy on the loose one, where ALERT downshifts.
#[test]
fn static_baseline_pays_for_rigidity() {
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();
    let stream = InputStream::generate(TaskId::Img2, 300, 33);
    // Conflicting demands: the tight setting needs an accurate model at
    // speed; the loose one is satisfiable by the cheapest candidates.
    let tight = Goal::minimize_energy(Seconds(0.35), 0.90);
    let loose = Goal::minimize_energy(Seconds(0.70), 0.80);
    let scenario = Scenario::memory_env(33);
    let mk_env =
        |g: &Goal| Arc::new(EpisodeEnv::build(&platform, &scenario, &stream, g, 33).unwrap());
    let cell = vec![(mk_env(&tight), tight), (mk_env(&loose), loose)];
    let choice = OracleStatic::for_cell(&cell, family.clone(), &stream).choice();

    // Replay the pinned configuration on the loose setting.
    let mut st = OracleStatic::from_choice(choice);
    let loose_env = mk_env(&loose);
    let ep_static = run_episode(&mut st, &loose_env, &family, &stream, &loose).unwrap();
    let mut alert = AlertScheduler::standard(&family, &platform, loose).unwrap();
    let ep_alert = run_episode(&mut alert, &loose_env, &family, &stream, &loose).unwrap();
    assert!(
        ep_alert.summary.avg_energy.get() < ep_static.summary.avg_energy.get(),
        "ALERT ({:.2} J) must beat the cell-pinned static ({:.2} J) on the loose setting",
        ep_alert.summary.avg_energy.get(),
        ep_static.summary.avg_energy.get()
    );
}

/// NLP sentence budgets: ALERT on grouped streams meets sentence-shared
/// deadlines and beats Sys-only on perplexity.
#[test]
fn sentence_prediction_end_to_end() {
    let platform = Platform::cpu1();
    let family = ModelFamily::sentence_prediction();
    let stream = InputStream::generate(TaskId::Nlp1, 600, 8);
    let goal = Goal::minimize_error(Seconds(0.08), Watts(30.0) * Seconds(0.08));
    let env = Arc::new(
        EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 8).unwrap(),
    );
    let mut alert = AlertScheduler::standard(&family, &platform, goal).unwrap();
    let ep_alert = run_episode(&mut alert, &env, &family, &stream, &goal).unwrap();
    let mut sys = SysOnly::new(&family, &platform, goal);
    let ep_sys = run_episode(&mut sys, &env, &family, &stream, &goal).unwrap();
    assert!(ep_alert.summary.violation_rate() <= 0.10);
    // Perplexity = -quality; ALERT must be at least as good.
    assert!(
        -ep_alert.summary.avg_quality <= -ep_sys.summary.avg_quality + 1e-9,
        "alert ppl {} vs sys ppl {}",
        -ep_alert.summary.avg_quality,
        -ep_sys.summary.avg_quality
    );
}

/// Degenerate candidate set: a single traditional model still works (the
/// controller has no choice but still manages power).
#[test]
fn single_model_family_works() {
    use alert::models::family::sparse_resnet_family;
    let platform = Platform::cpu1();
    let family = ModelFamily::new("single", vec![sparse_resnet_family()[2].clone()]);
    let stream = InputStream::generate(TaskId::Img2, 150, 4);
    let goal = Goal::minimize_energy(Seconds(0.5), 0.90);
    let env = Arc::new(
        EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 4).unwrap(),
    );
    let mut alert = AlertScheduler::standard(&family, &platform, goal).unwrap();
    let ep = run_episode(&mut alert, &env, &family, &stream, &goal).unwrap();
    assert_eq!(ep.records.len(), 150);
    // All decisions use the single model; caps may vary.
    assert!(ep.records.iter().all(|r| r.model == "sparse_resnet_26"));
}

/// Infeasible goals degrade gracefully: the scheduler still dispatches
/// every input and the harness completes.
#[test]
fn impossible_deadline_degrades_gracefully() {
    let w = world(
        Goal::minimize_energy(Seconds(0.002), 0.90),
        Scenario::default_env(),
        80,
        6,
    );
    let mut alert = AlertScheduler::standard(&w.family, &w.platform, w.goal).unwrap();
    let ep = run(&w, &mut alert);
    assert_eq!(ep.records.len(), 80);
    assert!(ep.summary.disqualified(), "everything misses, by design");
}
