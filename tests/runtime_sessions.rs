//! Integration tests of the session runtime: the interleaved-vs-
//! sequential determinism guarantee at scale, cross-runtime migration,
//! and `RunSpec` round-tripping — the acceptance criteria of the
//! session-API redesign.

use alert::sched::runtime::{
    EpisodeEvent, FamilySpec, RunSpec, Runtime, RuntimeBuilder, RuntimeError, SessionSpec,
};
use alert::sched::{run_episode, AlertScheduler, EpisodeEnv, FamilyKind, PolicyRegistry};
use alert::stats::units::{Joules, Seconds};
use alert::workload::{Goal, InputStream, Scenario, SessionId, TaskId};

fn session_spec(i: u64) -> SessionSpec {
    // Vary goal tightness, scenario, stream length and seed per session
    // so the 64 sessions genuinely differ.
    let deadline = 0.35 + 0.01 * (i % 8) as f64;
    let scenario = match i % 3 {
        0 => Scenario::default_env(),
        1 => Scenario::memory_env(100 + i),
        _ => Scenario::compute_env(200 + i),
    };
    SessionSpec {
        goal: Goal::minimize_energy(Seconds(deadline), 0.9),
        scenario,
        n_inputs: 40 + (i % 5) as usize * 10,
        seed: Some(1000 + i),
        policy: None,
    }
}

/// The headline guarantee: 64 sessions multiplexed through ONE runtime,
/// stepped round-robin, produce records bit-identical to 64 standalone
/// `run_episode` runs of the classic one-shot harness.
#[test]
fn sixty_four_interleaved_sessions_match_sequential_episodes() {
    const N: u64 = 64;

    // Reference: the classic one-shot path, one scheduler per stream.
    let platform = alert::platform::Platform::cpu1();
    let family = FamilyKind::Image.family();
    let reference: Vec<_> = (0..N)
        .map(|i| {
            let spec = session_spec(i);
            let seed = spec.seed.expect("session_spec sets a seed");
            let stream = InputStream::generate(TaskId::Img2, spec.n_inputs, seed);
            let env =
                EpisodeEnv::build(&platform, &spec.scenario, &stream, &spec.goal, seed).unwrap();
            let mut s = AlertScheduler::standard(&family, &platform, spec.goal).unwrap();
            run_episode(&mut s, &env, &family, &stream, &spec.goal).unwrap()
        })
        .collect();

    // Candidate: all 64 concurrently open in one runtime, drained
    // round-robin (every session interleaves with every other).
    let mut rt = Runtime::builder().build().unwrap();
    let ids: Vec<SessionId> = (0..N)
        .map(|i| rt.session(session_spec(i)).open().unwrap())
        .collect();
    assert_eq!(rt.session_count(), 64);
    let episodes = rt.drain_round_robin().unwrap();

    assert_eq!(episodes.len(), reference.len());
    for ((id, ep), reference_ep) in episodes.iter().zip(&reference) {
        assert!(ids.contains(id));
        assert_eq!(ep.scheme, reference_ep.scheme);
        assert_eq!(
            ep.records, reference_ep.records,
            "session {id} diverged from its standalone episode"
        );
    }
}

/// Mid-stream checkpoint, migration to a different runtime, and resume:
/// the migrated session finishes with records identical to an
/// uninterrupted run.
#[test]
fn migration_across_runtimes_preserves_records() {
    let spec = session_spec(17);

    let mut reference_rt = Runtime::builder().build().unwrap();
    let rid = reference_rt.session(spec.clone()).open().unwrap();
    reference_rt.run_to_completion(rid).unwrap();
    let reference = reference_rt.close(rid).unwrap();

    let mut origin = Runtime::builder().build().unwrap();
    let id = origin.session(spec).open().unwrap();
    for _ in 0..25 {
        origin.submit(id).unwrap();
    }
    let snapshot = origin.snapshot_session(id).unwrap();
    drop(origin);

    let mut destination = Runtime::builder().build().unwrap();
    let id2 = destination.restore_session(&snapshot).unwrap();
    destination.run_to_completion(id2).unwrap();
    let resumed = destination.close(id2).unwrap();
    assert_eq!(reference.records, resumed.records);
}

/// A RunSpec serialized to JSON rebuilds an equivalent runtime, and the
/// rebuilt runtime reproduces the original's records.
#[test]
fn run_spec_file_rebuilds_equivalent_runtime() {
    let spec = RunSpec {
        platform: alert::platform::PlatformId::Cpu1,
        family: FamilySpec::Kind(FamilyKind::Image),
        policy: "ALERT-Any".to_string(),
        seed: 5,
        ..Default::default()
    };
    let json = serde_json::to_string_pretty(&spec).unwrap();

    let run = |spec: RunSpec| {
        let mut rt = RuntimeBuilder::from_spec(spec).build().unwrap();
        let id = rt.session(session_spec(3)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        rt.close(id).unwrap()
    };
    let a = run(spec);
    let b = run(serde_json::from_str(&json).unwrap());
    assert_eq!(a.scheme, "ALERT-Any");
    assert_eq!(a.records, b.records);
}

/// Event totals across many concurrent sessions: one Opened and one
/// Closed per session, one InputProcessed per input, interleaved or not.
#[test]
fn event_stream_accounts_for_every_input() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut rt = Runtime::builder().sink(tx).build().unwrap();
    let mut expected_inputs = 0;
    for i in 0..8 {
        let spec = session_spec(i);
        expected_inputs += spec.n_inputs;
        rt.session(spec).open().unwrap();
    }
    rt.drain_round_robin().unwrap();
    drop(rt);
    let mut opened = 0;
    let mut processed = 0;
    let mut closed = 0;
    for e in rx.iter() {
        match e {
            EpisodeEvent::SessionOpened { .. } => opened += 1,
            EpisodeEvent::InputProcessed { .. } => processed += 1,
            EpisodeEvent::SessionClosed { .. } => closed += 1,
            // Telemetry is off by default; none may appear here.
            EpisodeEvent::Telemetry { .. } => panic!("unexpected telemetry event"),
        }
    }
    assert_eq!(opened, 8);
    assert_eq!(closed, 8);
    assert_eq!(processed, expected_inputs);
}

/// A spec over the grouped NLP1 task (words share sentence deadlines,
/// paper §3.2 step 2).
fn grouped_spec(seed: u64, n_inputs: usize) -> SessionSpec {
    SessionSpec {
        goal: Goal::minimize_error(Seconds(0.12), Joules(6.0)),
        scenario: Scenario::memory_env(seed),
        n_inputs,
        seed: Some(seed),
        policy: None,
    }
}

fn sentence_runtime() -> Runtime {
    Runtime::builder()
        .family(FamilyKind::Sentence)
        .build()
        .unwrap()
}

/// Mid-sentence checkpoint/restore round-trip: a session snapshotted
/// while a sentence's shared budget is partially consumed (the next
/// input has `member_idx != 0`) must resume bit-identically to an
/// uninterrupted run — the `BudgetTracker` state travels inside
/// `SessionSnapshot` (through JSON) and survives migration to a fresh
/// runtime. A lost tracker would silently clamp every remaining word's
/// deadline to the 1 µs floor instead.
#[test]
fn mid_sentence_checkpoint_resumes_identically() {
    const N: usize = 120;
    let stream = InputStream::generate(TaskId::Nlp1, N, 77);

    let mut reference_rt = sentence_runtime();
    let rid = reference_rt.session(grouped_spec(77, N)).open().unwrap();
    reference_rt.run_to_completion(rid).unwrap();
    let reference = reference_rt.close(rid).unwrap();

    // Cut at every mid-sentence position of the first few sentences:
    // the divergence, were the tracker lost, depends on where within
    // the sentence the cut lands.
    let cuts: Vec<usize> = stream
        .inputs()
        .iter()
        .enumerate()
        .filter(|(i, inp)| {
            *i > 0 && *i < 40 && inp.group.map(|g| g.member_idx != 0).unwrap_or(false)
        })
        .map(|(i, _)| i)
        .collect();
    assert!(!cuts.is_empty(), "NLP1 streams have mid-sentence inputs");

    for cut in cuts {
        let mut origin = sentence_runtime();
        let id = origin.session(grouped_spec(77, N)).open().unwrap();
        for _ in 0..cut {
            origin.submit(id).unwrap();
        }
        let snap = origin.snapshot_session(id).unwrap();
        // The tracker must actually be mid-group in the snapshot...
        assert!(
            snap.engine.budget().in_group(),
            "cut {cut}: snapshot should carry live group state"
        );
        // ...and survive a JSON round-trip (the migration wire format).
        let json = serde_json::to_string(&snap).unwrap();
        let snap: alert::sched::runtime::SessionSnapshot = serde_json::from_str(&json).unwrap();
        drop(origin);

        let mut destination = sentence_runtime();
        let id2 = destination.restore_session(&snap).unwrap();
        destination.run_to_completion(id2).unwrap();
        let resumed = destination.close(id2).unwrap();
        assert_eq!(
            reference.records, resumed.records,
            "cut {cut}: mid-sentence resume diverged from the uninterrupted run"
        );
    }
}

/// A snapshot whose budget tracker was lost (reset to idle) while the
/// cursor sits mid-sentence describes exactly the silent-clamp failure
/// mode — restore must reject it loudly instead of resuming wrong.
#[test]
fn restore_rejects_mid_sentence_snapshot_with_reset_budget() {
    const N: usize = 80;
    let stream = InputStream::generate(TaskId::Nlp1, N, 31);
    let cut = stream
        .inputs()
        .iter()
        .enumerate()
        .position(|(i, inp)| i > 5 && inp.group.map(|g| g.member_idx != 0).unwrap_or(false))
        .expect("grouped stream has mid-sentence inputs");

    let mut origin = sentence_runtime();
    let id = origin.session(grouped_spec(31, N)).open().unwrap();
    for _ in 0..cut {
        origin.submit(id).unwrap();
    }
    let good = origin.snapshot_session(id).unwrap();

    // Simulate a snapshot that lost the tracker (e.g. produced by a
    // pre-carry-over serializer): splice an idle budget tracker into the
    // serialized engine state, keeping cursor and records intact.
    let json = serde_json::to_string(&good).unwrap();
    let start = json
        .find("\"budget\":{")
        .expect("engine serializes its budget tracker");
    let end = start + json[start..].find('}').expect("tracker object closes") + 1;
    let doctored_json = format!(
        "{}\"budget\":{{\"remaining\":0.0,\"members_left\":0,\"in_group\":false}}{}",
        &json[..start],
        &json[end..]
    );
    let doctored: alert::sched::runtime::SessionSnapshot =
        serde_json::from_str(&doctored_json).unwrap();
    assert!(!doctored.engine.budget().in_group(), "tracker was reset");

    let mut destination = sentence_runtime();
    let err = destination.restore_session(&doctored).unwrap_err();
    assert!(
        matches!(err, RuntimeError::InvalidSpec(_)),
        "expected InvalidSpec, got {err}"
    );
    assert!(
        err.to_string().contains("mid-sentence"),
        "error should explain the mid-sentence cut: {err}"
    );

    // The untouched snapshot still restores fine.
    assert!(destination.restore_session(&good).is_ok());
}

/// A custom policy registered by name runs through the full session
/// lifecycle next to the built-ins.
#[test]
fn custom_policy_runs_as_session() {
    let mut registry = PolicyRegistry::builtin();
    registry.register_fn("MaxQuality", |ctx| {
        // The registry showcase policy: delegate to the ALERT-Trad
        // constructor but under a custom registry name.
        Ok(Box::new(AlertScheduler::traditional_only(
            ctx.family,
            ctx.platform,
            ctx.goal,
        )?) as Box<dyn alert::sched::Scheduler>)
    });
    let mut rt = Runtime::builder()
        .registry(registry)
        .policy("MaxQuality")
        .build()
        .unwrap();
    let id = rt.session(session_spec(9)).open().unwrap();
    rt.run_to_completion(id).unwrap();
    let ep = rt.close(id).unwrap();
    assert_eq!(ep.scheme, "ALERT-Trad");
    assert!(!ep.records.is_empty());
}
