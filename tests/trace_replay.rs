//! Integration tests of the trace subsystem: capture from the live
//! runtime (serial and sharded), file round trips, replay fit modes at
//! every horizon mismatch, typed errors for malformed files, and a
//! proptest that capture→replay is bit-identical across schemes.

use alert::platform::Platform;
use alert::sched::capture::TraceRecorder;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::{run_episode, AlertScheduler, EnvError, EpisodeEnv, SysOnly};
use alert::stats::units::Seconds;
use alert::workload::{
    quality_span, Goal, InputStream, Scenario, TaskId, TraceError, TraceFit, TraceSource,
    TraceStep, WorkloadTrace,
};
use proptest::prelude::*;
use std::io::Cursor;

fn base_goal() -> Goal {
    Goal::minimize_energy(Seconds(0.4), 0.9)
}

fn spec(scenario: Scenario, n: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        goal: base_goal(),
        scenario,
        n_inputs: n,
        seed: Some(seed),
        policy: Some("ALERT".into()),
    }
}

/// Captures `scenario` through a runtime sink; returns the trace and the
/// recorded session id.
fn capture(scenario: Scenario, n: usize, seed: u64) -> (WorkloadTrace, u64) {
    let recorder = TraceRecorder::new(scenario.name(), Some(seed));
    let mut rt = Runtime::builder()
        .seed(seed)
        .sink(recorder.clone())
        .build()
        .unwrap();
    let id = rt.session(spec(scenario, n, seed)).open().unwrap();
    rt.run_to_completion(id).unwrap();
    rt.close(id).unwrap();
    (recorder.snapshot(), id.0)
}

#[test]
fn capture_survives_the_file_format_bit_exactly() {
    let (trace, session) = capture(Scenario::compound_stress(17), 80, 17);
    assert_eq!(trace.len(), 80);
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    let loaded = WorkloadTrace::read_from(Cursor::new(&buf)).unwrap();
    assert_eq!(trace, loaded);
    for (a, b) in trace.records().iter().zip(loaded.records()) {
        assert_eq!(
            a.inter_arrival.get().to_bits(),
            b.inter_arrival.get().to_bits()
        );
        assert_eq!(a.scale.to_bits(), b.scale.to_bits());
    }
    assert_eq!(loaded.sessions(), vec![session]);
    assert_eq!(loaded.header().source, "CompoundStress");
    assert_eq!(loaded.header().seed, Some(17));
}

#[test]
fn multi_session_capture_preserves_per_session_order() {
    // Three interleaved sessions through one runtime: the capture keeps
    // each session's records in dispatch order, and each extracts into
    // its own replay source.
    let recorder = TraceRecorder::new("multi", Some(3));
    let mut rt = Runtime::builder()
        .seed(3)
        .sink(recorder.clone())
        .build()
        .unwrap();
    let ids: Vec<_> = (0..3u64)
        .map(|k| {
            rt.session(spec(
                Scenario::memory_env(3 + k),
                30 + 5 * k as usize,
                3 + k,
            ))
            .open()
            .unwrap()
        })
        .collect();
    rt.drain_round_robin().unwrap();
    let trace = recorder.snapshot();
    assert_eq!(trace.len(), 30 + 35 + 40);
    for (k, id) in ids.iter().enumerate() {
        let seqs: Vec<usize> = trace.session_records(id.0).map(|r| r.seq).collect();
        assert_eq!(seqs, (0..30 + 5 * k).collect::<Vec<_>>(), "session {id}");
        let source = trace.replay_source(id.0).unwrap();
        assert_eq!(source.len(), 30 + 5 * k);
    }
}

#[test]
fn sharded_capture_matches_serial_capture() {
    // The same sessions captured through a 3-shard runtime produce the
    // same per-session traces as a serial runtime.
    let open_all = |rt_serial: bool| {
        let recorder = TraceRecorder::new("cap", Some(5));
        if rt_serial {
            let mut rt = Runtime::builder()
                .seed(5)
                .sink(recorder.clone())
                .build()
                .unwrap();
            for k in 0..4u64 {
                rt.session(spec(Scenario::churn(5 + k), 24, 5 + k))
                    .open()
                    .unwrap();
            }
            rt.drain_round_robin().unwrap();
        } else {
            let mut rt = Runtime::builder()
                .seed(5)
                .sink(recorder.clone())
                .build_sharded(3)
                .unwrap();
            for k in 0..4u64 {
                rt.session(spec(Scenario::churn(5 + k), 24, 5 + k))
                    .open()
                    .unwrap();
            }
            rt.drain().unwrap();
        }
        recorder.snapshot()
    };
    let serial = open_all(true);
    let sharded = open_all(false);
    assert_eq!(serial.len(), sharded.len());
    for session in serial.sessions() {
        let a: Vec<_> = serial.session_records(session).collect();
        let b: Vec<_> = sharded.session_records(session).collect();
        assert_eq!(a, b, "session {session} capture diverged across executors");
    }
}

#[test]
fn empty_and_missing_sessions_are_typed_errors() {
    let empty = WorkloadTrace::new("empty", None);
    assert!(matches!(empty.replay_source(0), Err(TraceError::Empty)));
    let (trace, session) = capture(Scenario::default_env(), 20, 9);
    assert!(trace.replay_source(session).is_ok());
    assert!(matches!(
        trace.replay_source(session + 1),
        Err(TraceError::Empty)
    ));
    // An empty trace still round-trips through the format (header only).
    let mut buf = Vec::new();
    empty.write_to(&mut buf).unwrap();
    let back = WorkloadTrace::read_from(Cursor::new(&buf)).unwrap();
    assert!(back.is_empty());
}

#[test]
fn malformed_files_return_typed_errors_not_panics() {
    for (text, expect_not_a_trace) in [
        ("", true),
        ("garbage\n", true),
        (
            "{\"format\":\"other\",\"version\":1,\"source\":\"x\",\"seed\":null}\n",
            true,
        ),
    ] {
        match WorkloadTrace::read_from(Cursor::new(text)) {
            Err(TraceError::NotATrace(_)) => assert!(expect_not_a_trace),
            other => panic!("expected NotATrace for {text:?}, got {other:?}"),
        }
    }
    let future = "{\"format\":\"alert-trace\",\"version\":7,\"source\":\"x\",\"seed\":null}\n";
    assert!(matches!(
        WorkloadTrace::read_from(Cursor::new(future)),
        Err(TraceError::Version { found: 7, .. })
    ));
    let (trace, _) = capture(Scenario::default_env(), 10, 2);
    let mut buf = Vec::new();
    trace.write_to(&mut buf).unwrap();
    let mut text = String::from_utf8(buf).unwrap();
    text.insert_str(text.find('\n').unwrap() + 1, "not json\n");
    assert!(matches!(
        WorkloadTrace::read_from(Cursor::new(text)),
        Err(TraceError::Malformed { line: 2, .. })
    ));
}

/// Builds a replay env of `source` over an `n`-input horizon.
fn replay_env(
    source: TraceSource,
    fit: TraceFit,
    n: usize,
    seed: u64,
) -> Result<EpisodeEnv, EnvError> {
    let platform = Platform::cpu1();
    let stream = InputStream::generate(TaskId::Img2, n, seed);
    EpisodeEnv::build(
        &platform,
        &Scenario::replay("Replay", source, fit),
        &stream,
        &base_goal(),
        seed,
    )
}

#[test]
fn single_step_trace_covers_any_horizon_under_loop_and_stretch() {
    let one = TraceSource::new(
        "one",
        vec![TraceStep {
            inter_arrival: Seconds(0.25),
            scale: 1.4,
        }],
    );
    let env = replay_env(one.clone(), TraceFit::Loop, 40, 1).unwrap();
    for i in 0..40 {
        assert_eq!(env.period(i), Seconds(0.25));
        assert_eq!(env.realization(i).scale, 1.4);
    }
    let env = replay_env(one.clone(), TraceFit::Stretch, 40, 1).unwrap();
    for i in 0..40 {
        // One step stretched over 40 inputs: 1/40th the inter-arrival.
        let expected: f64 = 0.25 * (1.0 / 40.0);
        assert_eq!(env.period(i).get().to_bits(), expected.to_bits());
    }
    // Truncate cannot cover 40 inputs with one step.
    assert!(matches!(
        replay_env(one, TraceFit::Truncate, 40, 1),
        Err(EnvError::Script(_))
    ));
}

#[test]
fn horizon_mismatch_matrix_behaves_per_mode() {
    let (trace, session) = capture(Scenario::burst_arrival(), 60, 21);
    let source = trace.replay_source(session).unwrap();
    let recorded: Vec<(u64, u64)> = trace
        .session_records(session)
        .map(|r| (r.inter_arrival.get().to_bits(), r.scale.to_bits()))
        .collect();

    // Shorter horizon (30 < 60): every mode replays the prefix.
    for fit in [TraceFit::Loop, TraceFit::Truncate] {
        let env = replay_env(source.clone(), fit, 30, 21).unwrap();
        for (i, rec) in recorded.iter().take(30).enumerate() {
            assert_eq!(env.period(i).get().to_bits(), rec.0, "{fit} {i}");
            assert_eq!(env.realization(i).scale.to_bits(), rec.1);
        }
    }
    // Stretch onto 30 inputs: every other step, at 2× inter-arrival.
    let env = replay_env(source.clone(), TraceFit::Stretch, 30, 21).unwrap();
    for i in 0..30 {
        let expected = f64::from_bits(recorded[2 * i].0) * 2.0;
        assert_eq!(env.period(i).get().to_bits(), expected.to_bits());
    }

    // Longer horizon (90 > 60): Loop wraps, Truncate refuses, Stretch
    // spreads each step over 1.5 inputs at 2/3 the inter-arrival.
    let env = replay_env(source.clone(), TraceFit::Loop, 90, 21).unwrap();
    for i in 0..90 {
        assert_eq!(env.period(i).get().to_bits(), recorded[i % 60].0);
        assert_eq!(env.realization(i).scale.to_bits(), recorded[i % 60].1);
    }
    assert!(matches!(
        replay_env(source.clone(), TraceFit::Truncate, 90, 21),
        Err(EnvError::Script(_))
    ));
    let env = replay_env(source, TraceFit::Stretch, 90, 21).unwrap();
    for i in 0..90 {
        let expected = f64::from_bits(recorded[(i * 60) / 90].0) * (60.0 / 90.0);
        assert_eq!(env.period(i).get().to_bits(), expected.to_bits());
    }
}

#[test]
fn exact_horizon_is_identity_for_every_mode() {
    let (trace, session) = capture(Scenario::poisson_arrival(), 50, 31);
    let source = trace.replay_source(session).unwrap();
    for fit in [TraceFit::Loop, TraceFit::Truncate, TraceFit::Stretch] {
        let env = replay_env(source.clone(), fit, 50, 31).unwrap();
        for (i, r) in trace.session_records(session).enumerate() {
            assert_eq!(
                env.period(i).get().to_bits(),
                r.inter_arrival.get().to_bits(),
                "{fit} input {i}"
            );
            assert_eq!(env.realization(i).scale.to_bits(), r.scale.to_bits());
        }
    }
}

proptest! {
    /// Capture → replay is bit-identical across schemes: a trace captured
    /// from any library scenario under ALERT, replayed via
    /// `ArrivalProcess::Trace`, reproduces the recorded per-input
    /// arrival/scale sequence exactly — and the replay environment two
    /// different schemes run over is itself bit-identical (the frozen
    /// guarantee extends to replayed traffic).
    #[test]
    fn capture_replay_is_bit_identical_across_schemes(
        seed in 0i64..200,
        scenario_idx in 0usize..12,
        n in 40usize..90,
    ) {
        let seed = seed as u64;
        let scenario = Scenario::library(11)[scenario_idx].clone();
        let (trace, session) = capture(scenario, n, seed);
        prop_assert_eq!(trace.len(), n);
        let source = trace.replay_source(session).unwrap();

        let platform = Platform::cpu1();
        let family = alert::models::ModelFamily::image_classification();
        let span = quality_span(&family, &platform);
        let stream = InputStream::generate(TaskId::Img2, n, seed);
        let replay = Scenario::replay("Replay", source, TraceFit::Truncate);
        let goal = base_goal();
        let env_a =
            EpisodeEnv::build_scoped(&platform, &replay, &stream, &goal, seed, Some(span)).unwrap();
        for (i, r) in trace.session_records(session).enumerate() {
            prop_assert_eq!(env_a.period(i).get().to_bits(), r.inter_arrival.get().to_bits());
            prop_assert_eq!(env_a.realization(i).scale.to_bits(), r.scale.to_bits());
        }

        // Two schemes over two independent builds: bit-identical replays.
        let mut alert_s = AlertScheduler::standard(&family, &platform, goal).unwrap();
        let _ = run_episode(&mut alert_s, &env_a, &family, &stream, &goal).unwrap();
        let env_b =
            EpisodeEnv::build_scoped(&platform, &replay, &stream, &goal, seed, Some(span)).unwrap();
        let mut sys = SysOnly::new(&family, &platform, goal);
        let _ = run_episode(&mut sys, &env_b, &family, &stream, &goal).unwrap();
        prop_assert_eq!(env_a.realizations(), env_b.realizations());
    }
}
