//! Integration tests of the scenario engine: script serde round-trips,
//! frozen-environment determinism across schemes (including through
//! cap/goal phase boundaries), scripted-condition end-to-end behavior,
//! and runtime sessions over scripted scenarios.

use alert::platform::Platform;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::{run_episode, AlertScheduler, EpisodeEnv, SysOnly};
use alert::stats::units::Seconds;
use alert::workload::{
    ArrivalProcess, GoalPatch, InputStream, Scenario, ScenarioScript, ScriptEvent, TaskId,
};
use alert::workload::{Goal, Objective};
use proptest::prelude::*;

/// A stressful compound script whose phases cover every event class.
fn compound_script(seed: u64) -> Scenario {
    Scenario::compound_stress(seed)
}

#[test]
fn scripted_scenario_survives_json_bit_exactly() {
    // A scripted scenario serialized, restored and re-serialized is
    // byte-identical — and realizes to a bit-identical environment.
    let scenario = compound_script(40);
    let json = serde_json::to_string_pretty(&scenario).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(scenario, back);
    assert_eq!(json, serde_json::to_string_pretty(&back).unwrap());

    let platform = Platform::cpu1();
    let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
    let stream = InputStream::generate(TaskId::Img2, 150, 9);
    let a = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 9).unwrap();
    let b = EpisodeEnv::build(&platform, &back, &stream, &goal, 9).unwrap();
    assert_eq!(a.realizations(), b.realizations());
}

#[test]
fn session_spec_with_scripted_scenario_roundtrips() {
    let spec = SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.4), 0.9),
        scenario: Scenario::cap_storm(),
        n_inputs: 80,
        seed: Some(5),
        policy: Some("ALERT".into()),
    };
    let json = serde_json::to_string(&spec).unwrap();
    let back: SessionSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

proptest! {
    /// Same seed ⇒ bit-identical `EnvRealization` sequence no matter
    /// which scheme consumes the environment — the realization is built
    /// once from (scenario, stream, goal, seed) and running a scheme
    /// over it mutates nothing, including through cap/goal phase
    /// boundaries (library scenarios 3..10 all script phase changes).
    #[test]
    fn frozen_env_is_scheme_independent(
        seed in 0i64..500,
        scenario_idx in 0usize..12,
        n in 60usize..140,
    ) {
        let seed = seed as u64;
        let scenario = &Scenario::library(7)[scenario_idx];
        let platform = Platform::cpu1();
        let family = alert::models::ModelFamily::image_classification();
        let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
        let stream = InputStream::generate(TaskId::Img2, n, seed);
        // Span-aware build: the library's FloorRaise scenario expresses
        // its floor relative to the family's quality range.
        let span = alert::workload::quality_span(&family, &platform);

        let env_a =
            EpisodeEnv::build_scoped(&platform, scenario, &stream, &goal, seed, Some(span))
                .unwrap();
        let mut alert = AlertScheduler::standard(&family, &platform, goal).unwrap();
        let ep_alert = run_episode(&mut alert, &env_a, &family, &stream, &goal).unwrap();
        prop_assert_eq!(ep_alert.records.len(), n);

        let env_b =
            EpisodeEnv::build_scoped(&platform, scenario, &stream, &goal, seed, Some(span))
                .unwrap();
        let mut sys = SysOnly::new(&family, &platform, goal);
        let _ = run_episode(&mut sys, &env_b, &family, &stream, &goal).unwrap();

        // Bit-identical conditions for both schemes, after both ran.
        prop_assert_eq!(env_a.realizations(), env_b.realizations());
    }
}

#[test]
fn alert_tracks_a_goal_flip_mid_stream() {
    // Under GoalFlip the deadline tightens to 0.24 s for the middle
    // third; ALERT must meet the tightened deadlines too (Sys-only's
    // pinned model also fits — the point here is the *adaptive* scheme
    // never blows the flipped phase).
    let platform = Platform::cpu1();
    let family = alert::models::ModelFamily::image_classification();
    let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
    let stream = InputStream::generate(TaskId::Img2, 240, 11);
    let scenario = Scenario::goal_flip();
    let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 11).unwrap();
    let mut s = AlertScheduler::standard(&family, &platform, goal).unwrap();
    let ep = run_episode(&mut s, &env, &family, &stream, &goal).unwrap();

    let flipped: Vec<_> = ep
        .records
        .iter()
        .filter(|r| (r.deadline.get() - 0.24).abs() < 1e-9)
        .collect();
    assert!(flipped.len() > 40, "flip phase: {} inputs", flipped.len());
    let misses = flipped
        .iter()
        .filter(|r| r.latency.get() > r.deadline.get() * (1.0 + 1e-9))
        .count();
    assert!(
        (misses as f64) < flipped.len() as f64 * 0.1,
        "{misses}/{} misses inside the tightened phase",
        flipped.len()
    );
}

#[test]
fn cap_ceiling_is_invisible_in_records_but_physical_in_energy() {
    // A scripted full-episode cap ceiling at the range minimum: records
    // keep reporting the caps the scheduler programmed, while the
    // realized latencies follow the clamped cap (observed slowdown ≫ 1
    // for a scheme predicting at high caps).
    let platform = Platform::cpu1();
    let family = alert::models::ModelFamily::image_classification();
    let goal = Goal::minimize_energy(Seconds(0.8), 0.85);
    let stream = InputStream::generate(TaskId::Img2, 100, 3);
    let capped = Scenario::from_script(
        "FloorCap",
        ScenarioScript::new().with(ScriptEvent::CapStep { at: 0.0, frac: 0.0 }),
    );
    let env = EpisodeEnv::build(&platform, &capped, &stream, &goal, 3).unwrap();
    let free = EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 3).unwrap();

    // App-only always requests the default (maximum) cap.
    let run = |env: &EpisodeEnv| {
        let mut s = alert::sched::AppOnly::new(&family, &platform);
        run_episode(&mut s, env, &family, &stream, &goal).unwrap()
    };
    let ep_capped = run(&env);
    let ep_free = run(&free);
    let max_cap = platform.default_cap();
    assert!(ep_capped.records.iter().all(|r| r.cap == max_cap));
    // Same programmed cap, but the physical clamp slows execution and
    // cuts the drawn power.
    assert!(
        ep_capped.summary.avg_latency.get() > ep_free.summary.avg_latency.get() * 1.5,
        "clamped {} vs free {}",
        ep_capped.summary.avg_latency,
        ep_free.summary.avg_latency
    );
    assert!(ep_capped.summary.avg_energy < ep_free.summary.avg_energy);
}

#[test]
fn runtime_sessions_replay_scripted_scenarios_deterministically() {
    // The runtime path (SessionSpec → open → drain) realizes scripted
    // scenarios exactly like the one-shot harness, including checkpoint
    // restore across a goal-change boundary.
    let spec = SessionSpec {
        goal: Goal::minimize_error(
            Seconds(0.4),
            alert::stats::units::Watts(25.0) * Seconds(0.4),
        ),
        scenario: compound_script(21),
        n_inputs: 90,
        seed: Some(77),
        policy: Some("ALERT".into()),
    };
    assert_eq!(spec.goal.objective, Objective::MinimizeError);

    let mut rt = Runtime::builder().build().unwrap();
    let id = rt.session(spec.clone()).open().unwrap();
    rt.run_to_completion(id).unwrap();
    let reference = rt.close(id).unwrap();

    // Stop halfway — inside the scripted phase sequence — snapshot,
    // migrate, finish: bit-identical to the uninterrupted run.
    let mut rt1 = Runtime::builder().build().unwrap();
    let id1 = rt1.session(spec).open().unwrap();
    for _ in 0..45 {
        rt1.submit(id1).unwrap();
    }
    let snap = rt1.snapshot_session(id1).unwrap();
    let mut rt2 = Runtime::builder().build().unwrap();
    let id2 = rt2.restore_session(&snap).unwrap();
    rt2.run_to_completion(id2).unwrap();
    let resumed = rt2.close(id2).unwrap();
    assert_eq!(reference.records, resumed.records);
}

#[test]
fn runtime_rejects_invalid_scripts_loudly() {
    let mut rt = Runtime::builder().build().unwrap();
    let bad = SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.4), 0.9),
        scenario: Scenario::from_script(
            "Bad",
            ScenarioScript::new().with(ScriptEvent::GoalChange {
                at: 0.5,
                patch: GoalPatch::deadline(-1.0),
            }),
        ),
        n_inputs: 20,
        seed: Some(1),
        policy: None,
    };
    let err = rt.session(bad).open().unwrap_err();
    assert!(err.to_string().contains("deadline_scale"), "{err}");
}

#[test]
fn arrival_processes_keep_schemes_comparable() {
    // Arrival switches reshape the dispatch grid, but two builds of the
    // same scenario still agree bit-exactly (the Poisson draws come from
    // a dedicated frozen stream).
    let platform = Platform::cpu1();
    let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
    let stream = InputStream::generate(TaskId::Img2, 120, 13);
    let scenario = Scenario::from_script(
        "SwitchingArrivals",
        ScenarioScript::new()
            .with_arrival(ArrivalProcess::Bursty {
                burst: 5,
                spread: 0.2,
            })
            .with(ScriptEvent::ArrivalChange {
                at: 0.5,
                process: ArrivalProcess::Poisson { rate_scale: 1.5 },
            }),
    );
    let a = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 13).unwrap();
    let b = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 13).unwrap();
    assert_eq!(a.realizations(), b.realizations());
    // Dispatch times are strictly non-decreasing across the switch.
    for i in 1..a.len() {
        assert!(a.realization(i).dispatch_time >= a.realization(i - 1).dispatch_time);
    }
}

#[test]
fn scripted_floor_raise_binds_in_episode_accounting() {
    // Sys-only pins the fastest traditional model (quality 0.855). With
    // a base floor of 0.85 it passes; when the script raises the floor
    // to 0.90 mid-stream, the records carry the effective floor and the
    // episode is disqualified — even though the base goal alone would
    // judge it compliant.
    let platform = Platform::cpu1();
    let family = alert::models::ModelFamily::image_classification();
    let goal = Goal::minimize_energy(Seconds(0.5), 0.85);
    let stream = InputStream::generate(TaskId::Img2, 120, 5);
    let run = |scenario: &Scenario| {
        let env = EpisodeEnv::build(&platform, scenario, &stream, &goal, 5).unwrap();
        let mut s = SysOnly::new(&family, &platform, goal);
        run_episode(&mut s, &env, &family, &stream, &goal).unwrap()
    };
    let steady = run(&Scenario::default_env());
    assert!(steady.summary.quality_floor_met);

    let raised = Scenario::from_script(
        "FloorRaise",
        ScenarioScript::new().with(ScriptEvent::GoalChange {
            at: 0.4,
            patch: GoalPatch {
                min_quality: Some(0.90),
                ..Default::default()
            },
        }),
    );
    let flipped = run(&raised);
    assert!(
        flipped.records.iter().any(|r| r.min_quality == Some(0.90)),
        "records must carry the raised floor"
    );
    assert!(
        !flipped.summary.quality_floor_met,
        "the scripted floor must bind in the summary"
    );
    assert!(flipped.summary.disqualified());
}

#[test]
fn relative_floor_raise_binds_for_the_image_family() {
    // The library's FloorRaise scenario expresses its floor as 85% of the
    // family's quality range. For the image family that lands around
    // 0.92 — above Sys-only's pinned 0.855 model, so the raise must
    // disqualify it even though the base 0.85 floor is satisfied.
    let platform = Platform::cpu1();
    let family = alert::models::ModelFamily::image_classification();
    let span = alert::workload::quality_span(&family, &platform);
    let goal = Goal::minimize_energy(Seconds(0.5), 0.85);
    let stream = InputStream::generate(TaskId::Img2, 120, 5);
    let scenario = Scenario::floor_raise();
    let env =
        EpisodeEnv::build_scoped(&platform, &scenario, &stream, &goal, 5, Some(span)).unwrap();
    assert_eq!(env.goal_of(0).min_quality, Some(0.85));
    let raised = env.goal_of(env.len() - 1).min_quality.unwrap();
    assert!((raised - span.floor_at(0.85)).abs() < 1e-12);
    assert!(raised > 0.9, "image floor raise lands at {raised}");

    let mut s = SysOnly::new(&family, &platform, goal);
    let ep = run_episode(&mut s, &env, &family, &stream, &goal).unwrap();
    assert!(
        !ep.summary.quality_floor_met,
        "the relative raise must bind"
    );
    assert!(ep.summary.disqualified());
}

#[test]
fn relative_floor_raise_binds_for_the_sentence_family() {
    // The SAME named scenario, realized for the sentence-prediction
    // family, resolves to a negative-perplexity floor inside that
    // family's range — no per-family retuning.
    let platform = Platform::cpu1();
    let family = alert::models::ModelFamily::sentence_prediction();
    let span = alert::workload::quality_span(&family, &platform);
    assert!(span.hi < 0.0, "perplexity scores are negative");
    let goal = Goal::minimize_energy(Seconds(0.2), span.lo);
    let stream = InputStream::generate(TaskId::Nlp1, 200, 5);
    let scenario = Scenario::floor_raise();
    let env =
        EpisodeEnv::build_scoped(&platform, &scenario, &stream, &goal, 5, Some(span)).unwrap();
    assert_eq!(env.goal_of(0).min_quality, Some(span.lo));
    let raised = env.goal_of(env.len() - 1).min_quality.unwrap();
    assert!((raised - span.floor_at(0.85)).abs() < 1e-12);
    assert!(
        span.lo < raised && raised <= span.hi,
        "raised NLP floor {raised} must sit inside [{}, {}]",
        span.lo,
        span.hi
    );
    // The raise binds against a scheme pinned to the weakest candidate.
    let mut s = SysOnly::new(&family, &platform, goal);
    let ep = run_episode(&mut s, &env, &family, &stream, &goal).unwrap();
    assert!(
        !ep.summary.quality_floor_met,
        "the raised perplexity floor must bind"
    );
}
