//! Serving front-end integration: queue-bound shed behavior, frozen
//! storm determinism across admission policies, trace-replayed storms,
//! and degraded-floor billing (an admission-time `GoalPatch` downgrade
//! becomes the *effective* goal the episode's records carry and are
//! judged against).

use alert::sched::prelude::*;
use alert::stats::units::Seconds;
use alert::workload::{quality_span, EpisodeSummary, TraceFit, TraceSource, TraceStep};
use proptest::prelude::*;

fn runtime(workers: usize) -> ShardedRuntime {
    Runtime::builder()
        .seed(7)
        .build_sharded(workers)
        .expect("builtin policies resolve")
}

fn config() -> ServingConfig {
    ServingConfig::new(Goal::minimize_energy(Seconds(0.4), 0.9))
}

fn periodic_storm(n: usize, gap: f64, seed: u64) -> Vec<RequestArrival> {
    generate_storm(
        &StormSpec {
            arrival: ArrivalProcess::Periodic,
            n_requests: n,
            mean_gap: Seconds(gap),
            seed,
        },
        None,
    )
    .expect("valid storm")
}

/// Queue-full shedding is ordered and per-shard: with two shards of
/// capacity 1 and arrivals far faster than service, each shard admits
/// exactly its first request and drop-tails every later arrival routed
/// to it while that request is still in flight.
#[test]
fn queue_full_sheds_later_arrivals_per_shard() {
    let mut rt = runtime(2);
    let mut cfg = config();
    cfg.queue_capacity = 1;
    let storm = periodic_storm(10, 1e-4, 2020);
    let report = serve(&mut rt, &cfg, &storm, &mut DropTail).expect("serving runs");
    for o in &report.outcomes {
        assert_eq!(o.shard, o.index % 2, "round-robin routing");
        let expected = if o.index < 2 {
            AdmissionVerdict::Admitted
        } else {
            AdmissionVerdict::Shed
        };
        assert_eq!(
            o.verdict, expected,
            "request {} on shard {}: first arrival per shard is admitted, \
             the rest are shed in order",
            o.index, o.shard
        );
    }
    assert_eq!(report.admitted(), 2);
    assert_eq!(report.shed(), 8);
}

/// A zero-capacity queue sheds everything under both bounded policies,
/// while always-admit (which deliberately ignores the bound) still
/// serves.
#[test]
fn zero_capacity_shard_sheds_under_bounded_policies() {
    let storm = periodic_storm(6, 0.05, 2020);
    let mut cfg = config();
    cfg.queue_capacity = 0;

    let mut rt = runtime(2);
    let report = serve(&mut rt, &cfg, &storm, &mut DropTail).expect("serving runs");
    assert_eq!(report.shed(), 6);
    assert_eq!(report.goodput(), 0.0);

    let mut rt = runtime(2);
    let mut alert_policy = admission_policy("ALERT", &rt).expect("known policy");
    let report = serve(&mut rt, &cfg, &storm, &mut alert_policy).expect("serving runs");
    assert_eq!(report.shed(), 6, "the queue bound binds before belief");

    let mut rt = runtime(2);
    let report = serve(&mut rt, &cfg, &storm, &mut AlwaysAdmit).expect("serving runs");
    assert_eq!(report.shed(), 0);
    assert!(report.goodput() > 0.0);
}

/// A storm generated from a recorded trace replays the recorded
/// inter-arrivals verbatim, and serving it twice (fresh runtime and
/// policy each time) is bit-identical.
#[test]
fn trace_replayed_storm_serves_bit_identically() {
    let steps: Vec<TraceStep> = (0..10)
        .map(|i| TraceStep {
            inter_arrival: Seconds(0.08 + 0.037 * (i % 4) as f64),
            scale: 1.0,
        })
        .collect();
    let src = TraceSource::new("serving-storm", steps.clone());
    let spec = StormSpec {
        arrival: ArrivalProcess::Trace {
            fit: TraceFit::Loop,
        },
        n_requests: 20,
        mean_gap: Seconds(0.1),
        seed: 2020,
    };

    let run = || {
        let storm = generate_storm(&spec, Some(&src)).expect("valid storm");
        // The storm replays the recorded gaps bit for bit (looped onto
        // the horizon).
        let mut t: f64 = 0.0;
        for r in &storm {
            assert_eq!(r.at.get().to_bits(), t.to_bits(), "request {}", r.index);
            t += steps[r.index % steps.len()].inter_arrival.get();
        }
        let mut rt = runtime(2);
        let mut policy = admission_policy("ALERT", &rt).expect("known policy");
        serve(&mut rt, &config(), &storm, &mut policy).expect("serving runs")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "trace storm replay diverged"
    );
    assert_eq!(a.outcomes, b.outcomes);
}

/// Degraded admission is billed against the degraded floor (the
/// satellite fix): the patch lands in the session's goal *before* it
/// opens, so every record carries the degraded floor as its effective
/// goal and the episode summary judges against it — not the original.
#[test]
fn degraded_requests_are_billed_against_the_degraded_floor() {
    // A goal whose full-quality form is infeasible outright (the floor
    // admits only slow candidates, the deadline is below their latency)
    // but whose degraded form is comfortably feasible: every admitted
    // request must come out Degraded.
    let mut rt = runtime(2);
    let span = quality_span(rt.family(), rt.platform());
    let goal = Goal::minimize_energy(Seconds(0.25), 0.93);
    let mut cfg = config();
    cfg.goal = goal;
    let mut policy = admission_policy("ALERT", &rt).expect("known policy");
    let storm = periodic_storm(8, 2.0, 2020);
    let report = serve(&mut rt, &cfg, &storm, &mut policy).expect("serving runs");

    let degraded_floor = span.floor_at(0.25);
    assert!(
        degraded_floor < 0.93,
        "degraded floor {degraded_floor} must sit below the original"
    );
    assert!(report.degraded() > 0, "this goal must force degradation");
    for o in report.outcomes.iter() {
        if o.verdict == AdmissionVerdict::Degraded {
            assert_eq!(
                o.effective_min_quality,
                Some(degraded_floor),
                "request {}: the effective floor is the degraded one",
                o.index
            );
        }
    }

    // The same mechanism, observed directly on the records: a patched
    // goal opens the session, its records carry the degraded floor, and
    // the summary — even when folded under the *original* goal — bills
    // against the floor in force at dispatch.
    let patch = GoalPatch::floor_frac(0.25);
    let mut degraded_goal = goal;
    patch.apply(&mut degraded_goal, Some(span));
    let mut rt = runtime(1);
    let id = rt
        .session(SessionSpec {
            goal: degraded_goal,
            scenario: Scenario::default_env(),
            n_inputs: 8,
            seed: Some(11),
            policy: None,
        })
        .open()
        .expect("session opens");
    rt.run_to_completion(id).expect("episode runs");
    let episode = rt.close(id).expect("session open");
    for r in &episode.records {
        assert_eq!(
            r.min_quality,
            Some(degraded_floor),
            "input {}: records carry the degraded floor as the effective goal",
            r.index
        );
    }
    let billed = EpisodeSummary::from_records(&episode.records, &goal);
    assert_eq!(
        billed.quality_floor_met, episode.summary.quality_floor_met,
        "billing against the original goal must still judge by the \
         per-record (degraded) floors in force"
    );
}

proptest! {
    /// Shed-vs-degrade determinism: the same seed produces the
    /// bit-identical storm for every admission policy (identical
    /// arrival times and per-request inputs), every policy's full
    /// outcome log replays bit-identically run over run, and the three
    /// policies face the identical request sequence. One of the three
    /// policies is double-run per case (the others are cross-checked on
    /// arrivals) to keep the vendored 96-case shim fast.
    #[test]
    fn same_seed_is_bit_identical_across_policies_and_runs(
        seed in 0i64..64,
        n in 8usize..14,
        gap_kind in 0usize..3,
        workers in 1usize..4,
        replayed in 0usize..3,
    ) {
        let gap = [0.05, 0.2, 0.6][gap_kind];
        let arrival = match gap_kind {
            0 => ArrivalProcess::Poisson { rate_scale: 1.0 },
            1 => ArrivalProcess::Bursty { burst: 3, spread: 0.2 },
            _ => ArrivalProcess::Periodic,
        };
        let spec = StormSpec {
            arrival,
            n_requests: n,
            mean_gap: Seconds(gap),
            seed: seed as u64,
        };
        let names = ["Always-admit", "Drop-tail", "ALERT"];
        let run = |name: &str| {
            let storm = generate_storm(&spec, None).expect("valid storm");
            let mut rt = runtime(workers);
            let mut policy = admission_policy(name, &rt).expect("known policy");
            serve(&mut rt, &config(), &storm, &mut policy).expect("serving runs")
        };
        let reports: Vec<ServingReport> = names.iter().map(|name| run(name)).collect();
        // Replay one policy end to end: storm generation, runtime, and
        // admission must reproduce the outcome log bit for bit.
        let again = run(names[replayed]);
        prop_assert_eq!(
            again.fingerprint(),
            reports[replayed].fingerprint(),
            "policy {} diverged across runs", names[replayed]
        );
        // Every policy faced the identical storm: same arrivals, same
        // shard routing, request by request.
        for r in &reports[1..] {
            prop_assert_eq!(r.offered(), reports[0].offered());
            for (x, y) in r.outcomes.iter().zip(&reports[0].outcomes) {
                prop_assert_eq!(x.index, y.index);
                prop_assert_eq!(x.arrival.get().to_bits(), y.arrival.get().to_bits());
                prop_assert_eq!(x.shard, y.shard);
            }
        }
    }
}
