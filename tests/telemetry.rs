//! Telemetry non-perturbation: the observability layer must be
//! invisible to every value the repository guarantees bit-identity for.
//!
//! * Scheme × scenario-library episodes are bit-identical with
//!   telemetry off, sampled, and full (property test over seeds).
//! * The serial ≡ parallel drain identity holds with full telemetry
//!   enabled, and the decision-telemetry streams themselves match
//!   per-session between the two drains.
//! * A trace captured with telemetry enabled is byte-identical to one
//!   captured with telemetry off.
//! * Serving fingerprints are unchanged when the admission policy is
//!   wrapped in `AdmissionTelemetry`.
//! * A deliberate CapStorm deadline miss is explainable end-to-end from
//!   a flight-recorder dump: belief at decision time, candidates
//!   considered, the selected configuration, predicted vs realized
//!   latency.

use alert::sched::prelude::*;
use alert::sched::runtime::EpisodeEvent;
use alert::sched::telemetry::{AdmissionTelemetry, TelemetryEvent};
use alert::sched::{AlertAdmission, Episode, TraceRecorder};
use alert::stats::units::Seconds;
use alert::workload::{Scenario, SessionId};
use proptest::prelude::*;
use std::sync::mpsc;

/// The scheme names exercised against the scenario library. Oracle
/// schemes are included: they are spec-built through the registry like
/// everything else and must be exactly as indifferent to telemetry.
const SCHEMES: &[&str] = &[
    "ALERT",
    "ALERT-Any",
    "App-only",
    "Sys-only",
    "No-coord",
    "Oracle",
];

fn episode(
    policy: &str,
    scenario: &Scenario,
    telemetry: Option<TelemetryConfig>,
    seed: u64,
    n_inputs: usize,
) -> Episode {
    let mut builder = Runtime::builder().seed(seed).policy(policy);
    if let Some(cfg) = telemetry {
        // Enabled telemetry always has live sinks attached — a config
        // with no consumer would not exercise the recording path.
        builder = builder
            .telemetry(cfg)
            .sink(MetricsCollector::new())
            .sink(FlightRecorder::with_capacity(8));
    }
    let mut rt = builder.build().expect("builtin policy resolves");
    let id = rt
        .session(SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.4), 0.9),
            scenario: scenario.clone(),
            n_inputs,
            seed: Some(seed),
            policy: None,
        })
        .open()
        .expect("session opens");
    rt.run_to_completion(id).expect("session runs");
    rt.close(id).expect("session closes")
}

/// Asserts one scheme × scenario cell is bit-identical across
/// telemetry off, sampled 1-in-3, and full.
fn assert_cell_unperturbed(scheme: &str, scenario: &Scenario, seed: u64) {
    let off = episode(scheme, scenario, None, seed, 16);
    for cfg in [TelemetryConfig::Sampled(3), TelemetryConfig::Full] {
        let on = episode(scheme, scenario, Some(cfg), seed, 16);
        assert_eq!(
            off.records,
            on.records,
            "{} × {} diverged under {:?}",
            scheme,
            scenario.name(),
            cfg
        );
        // `overhead` is measured CPU time — metrology, not value-path
        // data — so it differs bitwise between ANY two runs, telemetry
        // or not. Everything else must match exactly.
        let mut off_summary = off.summary.clone();
        off_summary.overhead = Seconds(0.0);
        let mut on_summary = on.summary.clone();
        on_summary.overhead = Seconds(0.0);
        assert_eq!(
            off_summary,
            on_summary,
            "{} × {} summary diverged under {:?}",
            scheme,
            scenario.name(),
            cfg
        );
    }
}

/// Exhaustive: EVERY scheme × scenario-library cell is bit-identical
/// with telemetry off, sampled, and full.
#[test]
fn telemetry_never_perturbs_any_scheme_scenario_cell() {
    for scenario in Scenario::library(42) {
        for &scheme in SCHEMES {
            assert_cell_unperturbed(scheme, &scenario, 42);
        }
    }
}

proptest! {
    /// Property flavor of the exhaustive sweep: random seeds landing on
    /// random cells stay bit-identical too.
    #[test]
    fn telemetry_never_perturbs_random_cells(
        seed in 1usize..10_000,
        cell in (0usize..SCHEMES.len(), 0usize..12),
    ) {
        let seed = seed as u64;
        let scenarios = Scenario::library(seed);
        let scenario = &scenarios[cell.1 % scenarios.len()];
        assert_cell_unperturbed(SCHEMES[cell.0], scenario, seed);
    }
}

/// Collects the decision-telemetry stream per session from a drained
/// runtime's event channel. `trace.cost` is zeroed: it is the measured
/// CPU time of the decision itself, which — like `EpisodeSummary::
/// overhead` — legitimately differs bitwise between any two runs.
fn decision_streams(
    rx: mpsc::Receiver<EpisodeEvent>,
) -> std::collections::BTreeMap<SessionId, Vec<alert::sched::telemetry::DecisionEvent>> {
    let mut streams = std::collections::BTreeMap::new();
    for event in rx.iter() {
        if let EpisodeEvent::Telemetry {
            event: TelemetryEvent::Decision(mut d),
        } = event
        {
            d.trace.cost = Seconds(0.0);
            streams.entry(d.session).or_insert_with(Vec::new).push(d);
        }
    }
    streams
}

/// The serial ≡ parallel bit-identity holds with full telemetry on, and
/// the telemetry streams themselves agree per session.
#[test]
fn serial_parallel_identity_holds_with_full_telemetry() {
    let build = |tx: mpsc::Sender<EpisodeEvent>| {
        let mut rt = Runtime::builder()
            .seed(11)
            .telemetry(TelemetryConfig::Full)
            .sink(tx)
            .build()
            .expect("builtin policy resolves");
        for i in 0..6u64 {
            rt.session(SessionSpec {
                goal: Goal::minimize_energy(Seconds(0.35 + 0.01 * (i % 3) as f64), 0.9),
                scenario: Scenario::memory_env(40 + i),
                n_inputs: 12 + (i as usize % 3) * 4,
                seed: Some(40 + i),
                policy: None,
            })
            .open()
            .expect("session opens");
        }
        rt
    };

    let (tx, rx) = mpsc::channel();
    let mut serial = build(tx);
    let reference = serial.drain_round_robin().expect("serial drain");
    drop(serial);
    let reference_streams = decision_streams(rx);

    let (tx, rx) = mpsc::channel();
    let mut parallel = build(tx);
    let episodes = parallel.drain_parallel(3).expect("parallel drain");
    drop(parallel);
    let parallel_streams = decision_streams(rx);

    assert_eq!(reference.len(), episodes.len());
    for ((id, a), (rid, b)) in episodes.iter().zip(&reference) {
        assert_eq!(id, rid);
        assert_eq!(a.records, b.records, "parallel drain diverged on {id}");
    }
    assert_eq!(
        reference_streams.len(),
        6,
        "every session must emit decision telemetry under Full"
    );
    assert_eq!(
        parallel_streams, reference_streams,
        "telemetry streams must be bit-identical serial vs parallel"
    );
    for (id, stream) in &reference_streams {
        let indices: Vec<usize> = stream.iter().map(|d| d.index).collect();
        assert_eq!(
            indices,
            (0..stream.len()).collect::<Vec<_>>(),
            "{id}: decision telemetry must arrive in index order"
        );
    }
}

/// A trace captured with telemetry enabled is identical to one captured
/// with telemetry off: the recorder ignores telemetry events, so the
/// capture ≡ replay guarantee is untouched.
#[test]
fn captured_traces_are_identical_with_and_without_telemetry() {
    let capture = |cfg: Option<TelemetryConfig>| {
        let recorder = TraceRecorder::new("telemetry-test", Some(5));
        let mut builder = Runtime::builder().seed(5).sink(recorder.clone());
        if let Some(cfg) = cfg {
            builder = builder.telemetry(cfg).sink(MetricsCollector::new());
        }
        let mut rt = builder.build().expect("builtin policy resolves");
        for i in 0..3u64 {
            rt.session(SessionSpec {
                goal: Goal::minimize_energy(Seconds(0.4), 0.9),
                scenario: Scenario::compute_env(60 + i),
                n_inputs: 10,
                seed: Some(60 + i),
                policy: None,
            })
            .open()
            .expect("session opens");
        }
        rt.drain_round_robin().expect("drain");
        recorder.snapshot()
    };
    let without = capture(None);
    let with = capture(Some(TelemetryConfig::Full));
    assert_eq!(without, with, "telemetry leaked into the captured trace");
    assert!(!with.records().is_empty());
}

/// Serving fingerprints are unchanged when the ALERT admission policy
/// is decorated with `AdmissionTelemetry`, and the decorator's verdict
/// counts agree with the report.
#[test]
fn serving_fingerprint_unchanged_under_admission_telemetry() {
    let storm = generate_storm(
        &StormSpec {
            arrival: ArrivalProcess::Periodic,
            n_requests: 24,
            mean_gap: Seconds(0.05),
            seed: 2020,
        },
        None,
    )
    .expect("valid storm");
    let cfg = ServingConfig::new(Goal::minimize_energy(Seconds(0.4), 0.9));

    let bare = {
        let mut rt = Runtime::builder().seed(7).build_sharded(2).expect("builds");
        let mut policy = admission_policy("ALERT", &rt).expect("known policy");
        serve(&mut rt, &cfg, &storm, &mut policy).expect("serving runs")
    };

    let (tx, rx) = mpsc::channel();
    let decorated = {
        let mut rt = Runtime::builder().seed(7).build_sharded(2).expect("builds");
        let inner = AlertAdmission::for_runtime(
            &rt,
            GoalPatch::floor_frac(alert::sched::serving::DEFAULT_DEGRADE_FRAC),
            alert::sched::serving::DEFAULT_MISS_THRESHOLD,
        )
        .expect("policy builds");
        let mut policy = AdmissionTelemetry::new(inner, tx);
        let report = serve(&mut rt, &cfg, &storm, &mut policy).expect("serving runs");
        let counts = policy.counts();
        // The report's `admitted()` spans full-quality AND degraded
        // service; the decorator tallies the two verdicts separately.
        assert_eq!(counts.admitted + counts.degraded, report.admitted() as u64);
        assert_eq!(counts.degraded, report.degraded() as u64);
        assert_eq!(counts.shed, report.shed() as u64);
        report
    };

    assert_eq!(
        bare.fingerprint(),
        decorated.fingerprint(),
        "AdmissionTelemetry perturbed the serving fingerprint"
    );
    assert_eq!(bare.outcomes, decorated.outcomes);

    // One admission event per request, each carrying the belief that
    // justified a non-admit verdict.
    let events: Vec<_> = rx
        .iter()
        .filter_map(|e| match e {
            EpisodeEvent::Telemetry {
                event: TelemetryEvent::Admission(a),
            } => Some(a),
            _ => None,
        })
        .collect();
    assert_eq!(events.len(), storm.len());
    for a in &events {
        assert!(
            a.belief_mean.is_some(),
            "ALERT admission telemetry must carry its belief"
        );
        if a.verdict != AdmissionVerdict::Admitted {
            assert!(
                a.constraint.is_some(),
                "non-admit verdicts must name the failing constraint"
            );
        }
    }
}

/// A deliberate CapStorm deadline miss is explainable end-to-end from a
/// flight-recorder dump: the retained entry carries the belief the
/// controller held at decision time, the candidate counts it weighed,
/// what it selected, what it predicted, and what actually happened.
#[test]
fn cap_storm_miss_is_explainable_from_the_flight_recorder() {
    let recorder = FlightRecorder::with_capacity(16);
    let mut rt = Runtime::builder()
        .seed(9)
        .policy("ALERT")
        .telemetry(TelemetryConfig::Full)
        .sink(recorder.clone())
        .build()
        .expect("builtin policy resolves");
    // A tight deadline under the CapStorm scenario: the scripted power
    // ceiling slams down mid-stream, so some in-flight decision's
    // realized latency lands past its deadline before the belief
    // catches up.
    let id = rt
        .session(SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.12), 0.85),
            scenario: Scenario::cap_storm(),
            n_inputs: 60,
            seed: Some(9),
            policy: None,
        })
        .open()
        .expect("session opens");
    rt.run_to_completion(id).expect("session runs");
    let episode = rt.close(id).expect("session closes");

    let missed: Vec<_> = episode
        .records
        .iter()
        .filter(|r| r.latency.get() > r.deadline.get())
        .collect();
    assert!(
        !missed.is_empty(),
        "this CapStorm cell must produce at least one deliberate miss"
    );

    let entry = recorder
        .last_miss(id)
        .expect("the recorder must retain the most recent miss");
    let record = missed
        .iter()
        .rev()
        .find(|r| r.index == entry.event.index)
        .expect("last_miss must point at a genuinely missed input");

    // The causal chain, end to end: belief at decision time...
    assert!(entry.event.trace.belief_mean > 0.0);
    assert!(entry.event.trace.belief_std >= 0.0);
    // ...candidates considered (and what pruning left live)...
    assert!(entry.event.trace.candidates > 0);
    assert!(entry.event.trace.live <= entry.event.trace.candidates);
    // ...the selected configuration with its prediction...
    assert!(entry.event.trace.estimates.mean_latency.get() > 0.0);
    // ...and the realized outcome, bitwise equal to the episode record.
    assert_eq!(
        entry.event.realized_latency.get().to_bits(),
        record.latency.get().to_bits()
    );
    assert_eq!(
        entry.event.deadline.get().to_bits(),
        record.deadline.get().to_bits()
    );
    assert!(entry.event.missed);
    // The prediction undershot the realization — that is *why* the
    // deadline was missed rather than the input being shed up front.
    assert!(
        entry.event.trace.estimates.mean_latency.get() < entry.event.realized_latency.get(),
        "a missed deadline implies the realized latency overran the prediction"
    );

    // The dump holds the last N decisions in virtual-time order,
    // closing with the final decision of the stream.
    let dump = recorder.dump_session(id);
    assert_eq!(dump.len(), 16);
    assert!(dump.windows(2).all(|w| w[0].at <= w[1].at));
    assert_eq!(dump.last().expect("non-empty").event.index, 59);
}

/// Deterministic sampling yields exactly the `index % k == 0` subset of
/// the full decision stream.
#[test]
fn sampled_stream_is_the_modular_subset_of_full() {
    let run = |cfg: TelemetryConfig| {
        let (tx, rx) = mpsc::channel();
        let mut rt = Runtime::builder()
            .seed(3)
            .telemetry(cfg)
            .sink(tx)
            .build()
            .expect("builtin policy resolves");
        let id = rt
            .session(SessionSpec {
                goal: Goal::minimize_energy(Seconds(0.4), 0.9),
                scenario: Scenario::default_env(),
                n_inputs: 20,
                seed: Some(3),
                policy: None,
            })
            .open()
            .expect("session opens");
        rt.run_to_completion(id).expect("session runs");
        rt.close(id).expect("session closes");
        drop(rt);
        decision_streams(rx).remove(&id).unwrap_or_default()
    };
    let full = run(TelemetryConfig::Full);
    let sampled = run(TelemetryConfig::Sampled(4));
    assert_eq!(full.len(), 20);
    assert_eq!(sampled.len(), 5);
    let expected: Vec<_> = full.into_iter().filter(|d| d.index % 4 == 0).collect();
    assert_eq!(sampled, expected);
}
