//! Offline shim of `rand` 0.8: the subset this workspace uses
//! (see `vendor/README.md`).
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and **stable across platforms and releases of this
//! repository** (the real `StdRng` explicitly reserves the right to
//! change algorithms; this one must not, because every experiment seed
//! in the repo derives its streams from it).

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits: uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; step back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // 53-bit fraction on [0, 1] (both endpoints reachable).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding — the shim's stable `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(0..6);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
