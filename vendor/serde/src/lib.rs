//! Offline shim of `serde`: the subset this workspace uses, backed by a
//! concrete JSON-like value tree instead of serde's visitor machinery
//! (see `vendor/README.md` for why these shims exist).
//!
//! [`Serialize`] converts a value *to* a [`Value`]; [`Deserialize`]
//! reconstructs it *from* one. `serde_json` (the sibling shim) renders and
//! parses the `Value` tree. The derive macros come from `serde_derive`
//! and target exactly these traits. Conventions match real serde's JSON
//! behaviour where the workspace can observe it: newtype structs are
//! transparent, enums are externally tagged, maps become objects, and
//! non-finite floats serialize as `null`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// Objects are ordered maps so output is deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON-shaped value tree — the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also produced when parsing `-3`).
    I64(i64),
    /// Unsigned integers beyond `i64`, and ordinary counts.
    U64(u64),
    /// Floating-point numbers; non-finite values render as `null`.
    F64(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// The number as `f64`, if this is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) => Some(*v as i64),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus a breadcrumb of field contexts.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Prefixes a field/variant breadcrumb (used by derived impls).
    pub fn context(mut self, at: &str) -> Self {
        self.message = format!("{at}: {}", self.message);
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion to the shim's [`Value`] tree (serde's `Serialize` stand-in).
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the shim's [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------- primitives

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::new(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}
ser_float!(f32, f64);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::new(concat!("expected unsigned for ", stringify!($t))))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::new(concat!("expected integer for ", stringify!($t))))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, Error> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| Error::new("array length mismatch"))
            }
            _ => Err(Error::new("expected fixed-length array")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 2 => Ok((A::from_value(&a[0])?, B::from_value(&a[1])?)),
            _ => Err(Error::new("expected 2-array for tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == 3 => Ok((
                A::from_value(&a[0])?,
                B::from_value(&a[1])?,
                C::from_value(&a[2])?,
            )),
            _ => Err(Error::new("expected 3-array for tuple")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::new("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
