//! Offline shim of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! against the value-tree data model of the sibling `serde` shim (see
//! `vendor/README.md` for why these exist).
//!
//! Supported item shapes — exactly what this workspace uses:
//!
//! * named-field structs,
//! * tuple structs (single-field ones serialize transparently, like real
//!   serde newtype structs; `#[serde(transparent)]` is accepted and
//!   redundant),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   serde default: `"Variant"`, `{"Variant": value}`,
//!   `{"Variant": [..]}`, `{"Variant": {..}}`).
//!
//! Two field-level attributes are honoured, matching the real serde
//! semantics this workspace relies on:
//!
//! * `#[serde(default)]` — a missing (or `null`) key deserializes to
//!   `Default::default()` instead of erroring, so old documents parse
//!   after a struct grows a field;
//! * `#[serde(skip_serializing_if = "...")]` — the field is omitted
//!   from the output when it serializes to `null` (the shim's data
//!   model makes "skips as `None`" and "serializes to `null`"
//!   coincide), so new optional fields don't perturb old byte layouts.
//!
//! Generic items are rejected with a compile error rather than silently
//! mis-serialized; other `#[serde(...)]` attributes are ignored. The
//! macro is written against `proc_macro` alone (no syn/quote): it walks
//! the token stream, extracts the item skeleton, and emits the impl as
//! source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of a derive input item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One named field and its honoured serde attributes.
struct Field {
    name: String,
    /// `#[serde(default)]`: missing/null keys become `Default::default()`.
    default: bool,
    /// `#[serde(skip_serializing_if = "...")]`: omit null-valued fields.
    skip_null: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

/// Consumes leading attributes (`#[...]`) and a visibility marker
/// (`pub`, `pub(...)`) from `toks[*i]`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if let Some(TokenTree::Group(_)) = toks.get(*i) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde shim: expected item name, found {t}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported (derive on `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream()).len();
                Item::TupleStruct { name, arity }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            t => panic!("serde shim: unsupported struct body for `{name}`: {t:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream());
                Item::Enum { name, variants }
            }
            t => panic!("serde shim: expected enum body for `{name}`, found {t:?}"),
        },
        k => panic!("serde shim: cannot derive for `{k}`"),
    }
}

/// Splits a token stream on top-level commas. Commas inside `<...>` do
/// not split (parens/brackets/braces arrive as single `Group` trees and
/// need no tracking). Returns the non-empty chunks.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Scans a field chunk's leading attributes for the honoured
/// `#[serde(...)]` markers. Only attribute groups whose first token is
/// the bare identifier `serde` count — doc comments mentioning
/// "default" stay inert.
fn scan_serde_attrs(chunk: &[TokenTree]) -> (bool, bool) {
    let (mut default, mut skip_null) = (false, false);
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        i += 1;
        let Some(TokenTree::Group(g)) = chunk.get(i) else {
            break;
        };
        i += 1;
        let toks: Vec<TokenTree> = g.stream().into_iter().collect();
        let (Some(TokenTree::Ident(head)), Some(TokenTree::Group(inner))) =
            (toks.first(), toks.get(1))
        else {
            continue;
        };
        if head.to_string() != "serde" {
            continue;
        }
        for t in inner.stream() {
            if let TokenTree::Ident(word) = t {
                match word.to_string().as_str() {
                    "default" => default = true,
                    "skip_serializing_if" => skip_null = true,
                    _ => {}
                }
            }
        }
    }
    (default, skip_null)
}

/// Extracts fields from the body of a named-field struct (or struct
/// variant): for each top-level-comma chunk, the identifier before `:`
/// plus its honoured serde attributes.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let (default, skip_null) = scan_serde_attrs(&chunk);
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde shim: expected field name, found {t}"),
            };
            Field {
                name,
                default,
                skip_null,
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match &chunk[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde shim: expected variant name, found {t}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                Some(t) => panic!("serde shim: unsupported variant body: {t}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ------------------------------------------------------------- generation

/// One `insert` statement for a named field: unconditional, or gated on
/// the value being non-null for `skip_serializing_if` fields.
fn field_insert(map: &str, expr: &str, f: &Field) -> String {
    let n = &f.name;
    if f.skip_null {
        format!(
            "{{ let __v = ::serde::Serialize::to_value(&{expr}); \
             if !matches!(__v, ::serde::Value::Null) {{ \
             {map}.insert(\"{n}\".to_string(), __v); }} }}\n"
        )
    } else {
        format!("{map}.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&{expr}));\n")
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&field_insert("__m", &format!("self.{}", f.name), f));
            }
            b.push_str("::serde::Value::Object(__m)");
            (name, b)
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let parts: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(vec![{}])", parts.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                        let inner = if *k == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let parts: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", parts.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{vn}\".to_string(), {inner}); \
                             ::serde::Value::Object(__m) }}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = String::from("let mut __i = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&field_insert("__i", &f.name, f));
                        }
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{vn}\".to_string(), ::serde::Value::Object(__i)); \
                             ::serde::Value::Object(__m) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// One field initializer reading from map variable `map`: `default`
/// fields fall back to `Default::default()` when the key is missing (or
/// null — the shim's data model conflates the two), everything else
/// errors on a missing key as before.
fn field_init(owner: &str, map: &str, f: &Field) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match {map}.get(\"{n}\") {{\n\
             ::std::option::Option::None | ::std::option::Option::Some(::serde::Value::Null) => \
             ::std::default::Default::default(),\n\
             ::std::option::Option::Some(__fv) => ::serde::Deserialize::from_value(__fv)\
             .map_err(|e| e.context(\"{owner}.{n}\"))?,\n}},\n"
        )
    } else {
        format!(
            "{n}: ::serde::Deserialize::from_value(\
             {map}.get(\"{n}\").unwrap_or(&::serde::Value::Null))\
             .map_err(|e| e.context(\"{owner}.{n}\"))?,\n"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_init(name, "__m", f));
            }
            (
                name,
                format!(
                    "match __v {{\n\
                     ::serde::Value::Object(__m) => Ok({name} {{\n{inits}}}),\n\
                     _ => Err(::serde::Error::new(\"expected object for {name}\")),\n}}"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let parts: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            (
                name,
                format!(
                    "match __v {{\n\
                     ::serde::Value::Array(__a) if __a.len() == {arity} => \
                     Ok({name}({})),\n\
                     _ => Err(::serde::Error::new(\"expected {arity}-array for {name}\")),\n}}",
                    parts.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantKind::Tuple(k) => {
                        let parts: Vec<String> = (0..*k)
                            .map(|j| format!("::serde::Deserialize::from_value(&__a[{j}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __val {{\n\
                             ::serde::Value::Array(__a) if __a.len() == {k} => \
                             Ok({name}::{vn}({})),\n\
                             _ => Err(::serde::Error::new(\"expected {k}-array for {name}::{vn}\")),\n}},\n",
                            parts.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        let owner = format!("{name}::{vn}");
                        for f in fields {
                            inits.push_str(&field_init(&owner, "__m2", f));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __val {{\n\
                             ::serde::Value::Object(__m2) => Ok({name}::{vn} {{\n{inits}}}),\n\
                             _ => Err(::serde::Error::new(\"expected object for {name}::{vn}\")),\n}},\n"
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     _ => Err(::serde::Error::new(\"unknown variant of {name}\")),\n}},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                     let (__k, __val) = __m.iter().next().expect(\"len checked\");\n\
                     match __k.as_str() {{\n{data_arms}\
                     _ => Err(::serde::Error::new(\"unknown variant of {name}\")),\n}}\n}},\n\
                     _ => Err(::serde::Error::new(\"expected variant encoding for {name}\")),\n}}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
