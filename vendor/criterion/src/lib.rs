//! Offline shim of `criterion`: wall-clock micro-benchmarks without the
//! statistical machinery (see `vendor/README.md`).
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a fixed measurement window; mean ns/iter is
//! printed in a criterion-like format. Good enough to compare orders of
//! magnitude and track regressions by eye; not a statistics suite.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is equivalent).
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(600);

/// The benchmark driver.
pub struct Criterion {
    /// Requested sample count (accepted for API compatibility; the shim
    /// times a window rather than counting samples).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&id.0);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested sample count (accepted, unused by the shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Times `f`: brief warm-up, then as many iterations as fit the
    /// measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_until = Instant::now() + WARMUP;
        let mut iters: u64 = 0;
        while Instant::now() < warm_until {
            black_box(f());
            iters += 1;
        }
        // Estimate batch size so each batch is ~1/20 of the window.
        let batch = (iters / 3).max(1);
        let mut total_ns: f64 = 0.0;
        let mut total_iters: u64 = 0;
        let measure_until = Instant::now() + MEASURE;
        while Instant::now() < measure_until {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.result = Some((total_ns, total_iters));
    }

    fn report(&self, id: &str) {
        match self.result {
            Some((ns, iters)) if iters > 0 => {
                let per = ns / iters as f64;
                println!("{id:<50} {:>12.1} ns/iter  ({iters} iters)", per);
            }
            _ => println!("{id:<50} (no measurement)"),
        }
    }
}

/// Collects benchmark functions into a runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
