//! Offline shim of `serde_json`: renders and parses the value tree of the
//! sibling `serde` shim (see `vendor/README.md`).
//!
//! Provides the workspace's used surface: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`Value`], [`Map`]
//! and the flat-object [`json!`] macro.

pub use serde::{Map, Value};

/// Serialization/deserialization error.
pub type Error = serde::Error;

/// Converts any [`serde::Serialize`] value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to a compact JSON string. Infallible for this shim's data
/// model, but keeps the real crate's `Result` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value)
}

/// Builds a [`Value::Object`] from `"key": value` pairs. Values may be
/// any `serde::Serialize` expression; unlike real serde_json the
/// expression is taken by reference, and nesting is done by composing
/// `json!` calls rather than inline literals.
#[macro_export]
macro_rules! json {
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($k.to_string(), $crate::to_value(&$v)); )*
        $crate::Value::Object(__m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($v:expr) => { $crate::to_value(&$v) };
}

// -------------------------------------------------------------- rendering

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::new("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_literal("null", Value::Null),
            b't' => self.eat_literal("true", Value::Bool(true)),
            b'f' => self.eat_literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']' in array")),
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut m = Map::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    m.insert(key, self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::new("expected ',' or '}' in object")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| Error::new("bad UTF-8"))?);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        let integral = !text.contains(['.', 'e', 'E']);
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        let x: f64 = from_str("2.25").unwrap();
        assert_eq!(x, 2.25);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1.0f64, 2.0, 3.5];
        let s = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(v, back);
        let opt: Option<f64> = from_str("null").unwrap();
        assert!(opt.is_none());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1.0, "b": "x"});
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":\"x\"}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quote\"\tπ";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": 1.0});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"k\": 1"));
    }
}
