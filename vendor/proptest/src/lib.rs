//! Offline shim of `proptest`: deterministic random-case testing without
//! shrinking (see `vendor/README.md`).
//!
//! The [`proptest!`] macro expands each property into a plain `#[test]`
//! that samples [`CASES`] inputs from the declared strategies using a
//! generator seeded from the test's name — fully deterministic, no
//! persistence files. Failures report the case number via the panic
//! location; there is no shrinking, so keep properties simple.

/// Number of random cases per property.
pub const CASES: usize = 96;

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw on `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw on `[0, 1]`.
    pub fn closed_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

/// A value generator. Mirrors proptest's `Strategy` in name only: it
/// samples, it does not shrink.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.closed_unit_f64() * (self.end() - self.start())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec` equivalent.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                self.size.start + (rng.next_u64() as usize) % (self.size.end - self.size.start)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// `prop_assert!`: plain `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vecs_respect_size(xs in collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_compose(p in (0.0f64..1.0, 5.0f64..6.0)) {
            prop_assert!(p.0 < 1.0 && p.1 >= 5.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
