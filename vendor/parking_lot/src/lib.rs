//! Offline shim of `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, delegating to `std::sync` (see `vendor/README.md`).
//! A poisoned std lock means a panic already happened on another thread;
//! matching parking_lot semantics, the data is handed out anyway.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_other_thread_panic() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison std lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
