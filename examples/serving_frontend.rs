//! The serving front-end in one page: a frozen request storm replayed
//! against the sharded runtime under three admission policies.
//!
//! An offered-load generator (Poisson arrivals here) produces a *storm*
//! — a pre-materialized, seeded request sequence, so every policy faces
//! the bit-identical arrivals. Each request is routed round-robin to a
//! shard with a bounded queue; an [`AdmissionPolicy`] then decides per
//! request:
//!
//! * **admit** — run at full quality,
//! * **degrade** — admit under a `GoalPatch`-downgraded quality floor
//!   (ALERT only: when the controller's belief says full quality will
//!   miss the deadline but a degraded run will make it), or
//! * **shed** — reject up front (when even the degraded form is
//!   predicted to miss anyway, or the queue is full).
//!
//! Always-admit and FIFO/drop-tail are the baselines. Under overload,
//! ALERT's belief-driven admission turns queue collapse (everything
//! admitted, everything late) into useful goodput.
//!
//! Run with: `cargo run --release --example serving_frontend`

use alert::sched::prelude::*;
use alert::stats::units::Seconds;

fn main() {
    // An energy-minimizing goal with a 400 ms deadline and a 0.9
    // quality floor, served on two shards.
    let config = ServingConfig::new(Goal::minimize_energy(Seconds(0.4), 0.9));

    // A storm at roughly 2x the sustainable rate: ~1 s of service per
    // request (6 inputs) across 2 shards vs a 500 ms mean gap.
    let spec = StormSpec {
        arrival: ArrivalProcess::Poisson { rate_scale: 1.0 },
        n_requests: 80,
        mean_gap: Seconds(0.5),
        seed: 2020,
    };

    println!(
        "{:>14} {:>8} {:>9} {:>6} {:>9} {:>10}",
        "policy", "admitted", "degraded", "shed", "goodput", "miss(adm)"
    );
    for name in ["Always-admit", "Drop-tail", "ALERT"] {
        // Fresh storm, runtime, and policy per run: the storm replays
        // bit-identically, so the comparison is exact.
        let storm = generate_storm(&spec, None).expect("valid storm");
        let mut rt = Runtime::builder()
            .seed(7)
            .build_sharded(2)
            .expect("builtin policies resolve");
        let mut policy = admission_policy(name, &rt).expect("known policy");
        let report = serve(&mut rt, &config, &storm, &mut policy).expect("serving runs");
        println!(
            "{:>14} {:>8} {:>9} {:>6} {:>9.3} {:>10.3}",
            name,
            report.admitted(),
            report.degraded(),
            report.shed(),
            report.goodput(),
            report.miss_rate_admitted(),
        );
    }

    // The same decisions, request by request, for the ALERT policy:
    // each outcome records the verdict, the effective quality floor in
    // force (degraded if a patch was applied at admission), and the
    // predicted miss probability behind a shed.
    let storm = generate_storm(&spec, None).expect("valid storm");
    let mut rt = Runtime::builder()
        .seed(7)
        .build_sharded(2)
        .expect("builtin policies resolve");
    let mut policy = admission_policy("ALERT", &rt).expect("known policy");
    let report = serve(&mut rt, &config, &storm, &mut policy).expect("serving runs");
    println!("\nfirst ten ALERT verdicts:");
    for o in report.outcomes.iter().take(10) {
        println!(
            "  request {:>2} @ {:>6.3}s on shard {}: {:?} (floor {:?})",
            o.index,
            o.arrival.get(),
            o.shard,
            o.verdict,
            o.effective_min_quality,
        );
    }
    println!("\nstorm fingerprint: {:016x}", report.fingerprint());
}
