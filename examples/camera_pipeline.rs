//! A motion-tracking camera pipeline (the paper's §1 motivating example).
//!
//! Frames arrive at a fixed rate; each must be classified before the next
//! one lands (deadline = camera period). The pipeline's accuracy
//! requirement changes at runtime — when the scene is flagged "critical"
//! the accuracy floor rises from 88% to 94% and the energy objective takes
//! the back seat (paper §1: "the power budget and the accuracy requirement
//! ... may switch among different settings depending on what type of
//! events are currently sensed").
//!
//! This example shows dynamic *goal* changes on top of environment
//! changes: a compute-hungry co-runner occupies the middle third of the
//! episode. When the goal flips, the runtime announces the new
//! requirement via `Scheduler::sync_goal` — the learned estimator state
//! (ξ slowdown belief, φ idle ratio) stays in place, so no re-learning
//! transient is paid at the phase boundary. (The session harness does
//! exactly this for scripted `GoalChange` events; driving the scheduler
//! manually here makes the mechanism visible.)
//!
//! Run with: `cargo run --release --example camera_pipeline`

use alert::models::ModelFamily;
use alert::platform::Platform;
use alert::sched::{AlertScheduler, EpisodeEnv, Feedback, InputContext, Scheduler};
use alert::stats::units::Seconds;
use alert::workload::{Goal, InputStream, Scenario, TaskId};

fn main() {
    let platform = Platform::cpu2();
    let family = ModelFamily::image_classification();
    let n = 600;
    let fps_period = Seconds(0.250);

    let relaxed = Goal::minimize_energy(fps_period, 0.88);
    let critical = Goal::minimize_energy(fps_period, 0.94);

    let stream = InputStream::generate(TaskId::Img2, n, 1234);
    let scenario = Scenario::scripted_memory_window(fps_period * 200.0, fps_period * 400.0);
    let env = EpisodeEnv::build(&platform, &scenario, &stream, &relaxed, 1234).expect("valid");

    // Drive the scheduler manually so the goal can flip mid-stream:
    // "critical" phase covers inputs 300..450 (overlapping the
    // contention window 200..400 — the hardest combination).
    let mut alert =
        AlertScheduler::standard(&family, &platform, relaxed).expect("paper family fits");
    let mut switches = 0usize;
    let mut last_model = String::new();
    let mut phase_stats: Vec<(String, f64, f64, usize)> = Vec::new();
    let mut acc_sum = 0.0;
    let mut energy_sum = 0.0;
    let mut count = 0usize;
    let mut violations = 0usize;

    let phase_of = |i: usize| -> (&'static str, Goal) {
        if (300..450).contains(&i) {
            ("critical", critical)
        } else {
            ("relaxed", relaxed)
        }
    };

    let mut current_phase = "relaxed";
    for i in 0..n {
        let (phase, goal) = phase_of(i);
        if phase != current_phase {
            phase_stats.push((
                current_phase.to_string(),
                acc_sum / count.max(1) as f64,
                energy_sum / count.max(1) as f64,
                violations,
            ));
            acc_sum = 0.0;
            energy_sum = 0.0;
            count = 0;
            violations = 0;
            current_phase = phase;
        }
        // Announce the requirement in force (paper §3.1: "the required
        // constraints" may change dynamically). Same-valued syncs are
        // free; on a flip the controller simply retargets — the learned
        // estimators (ξ, φ, overhead reserve) carry over untouched.
        alert.sync_goal(&goal);
        let ctx = InputContext {
            index: i,
            deadline: goal.deadline,
            period: env.period(i),
            group: None,
        };

        let d = alert.decide(&ctx);
        let profile = &family.models()[d.model];
        let result = env
            .realize(i, profile, d.cap, d.stop)
            .expect("feasible cap");
        let quality = result.quality_by(ctx.deadline, profile.fail_quality);
        let energy = env.period_energy(i, profile, d.cap, &result);
        if profile.name != last_model {
            switches += 1;
            last_model = profile.name.clone();
        }
        let idle_power = (result.latency < env.period(i)).then(|| env.idle_draw(i, d.cap));
        alert.observe(&Feedback {
            index: i,
            decision: d,
            result: result.clone(),
            quality,
            energy,
            idle_power,
            deadline: ctx.deadline,
        });
        acc_sum += quality;
        energy_sum += energy.get();
        count += 1;
        if result.latency > ctx.deadline || quality < goal.min_quality.unwrap() {
            violations += 1;
        }
    }
    phase_stats.push((
        current_phase.to_string(),
        acc_sum / count.max(1) as f64,
        energy_sum / count.max(1) as f64,
        violations,
    ));

    println!("camera pipeline: {n} frames @ {fps_period} period, contention frames 200-400,");
    println!("accuracy floor 88% -> 94% (frames 300-450) -> 88%\n");
    println!(
        "{:<10} {:>12} {:>12} {:>11}",
        "phase", "avg acc %", "avg J/frame", "violations"
    );
    for (phase, acc, e, v) in &phase_stats {
        println!("{:<10} {:>12.2} {:>12.2} {:>11}", phase, acc * 100.0, e, v);
    }
    println!("\nmodel switches across the episode: {switches}");
    println!("(ALERT raises model size / power for the critical phase, then relaxes.)");
}
