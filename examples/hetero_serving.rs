//! Heterogeneous serving: one runtime, a CPU *and* a GPU backend, one
//! shared power envelope.
//!
//! The runtime below owns a CPU+GPU node: device 0 is the Core i7,
//! device 1 the RTX 2080, and a node-level 230 W budget is split across
//! them proportional to each backend's maximum draw (~38 W / ~192 W).
//! Every scheduler decision is a (device, model, power) triple, so
//! placement is part of the same per-input optimization as model and
//! DVFS choice — the paper's single-platform controller generalized to
//! a fleet node.
//!
//! The scenario is the library's `HeteroServing` row: memory-contention
//! waves on the node, a mid-episode GPU clock throttle, and a cap crash
//! targeted at the GPU only. Watch the placement shift as the GPU
//! degrades and recovers.
//!
//! Run with: `cargo run --release --example hetero_serving`

use alert::platform::PlatformId;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::stats::units::{Seconds, Watts};
use alert::workload::{Goal, Scenario};

fn main() {
    // 1. A runtime spanning both backends under one shared budget.
    let mut rt = Runtime::builder()
        .platform(PlatformId::Cpu1)
        .extra_backend(PlatformId::Gpu)
        .shared_budget(Watts(230.0))
        .seed(2020)
        .build()
        .expect("builtin policies resolve");
    let node: Vec<String> = rt.node().iter().map(|p| p.id().to_string()).collect();
    println!(
        "node backends: {} (shared budget 230 W)\n",
        node.join(" + ")
    );

    // 2. One session per scheme on the heterogeneous scenario — same
    //    goal, same seed, so every scheme faces identical conditions.
    let spec = |policy: &str| SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.3), 0.9),
        scenario: Scenario::hetero_serving(7),
        n_inputs: 400,
        seed: Some(99),
        policy: Some(policy.to_string()),
    };
    let schemes = ["ALERT", "Sys-only", "No-coord", "Oracle"];
    let ids: Vec<_> = schemes
        .iter()
        .map(|s| (s, rt.session(spec(s)).open().expect("policy registered")))
        .collect();

    // 3. Drain and report per-device placement next to the usual
    //    energy/quality numbers.
    println!(
        "{:<9} {:>7} {:>7} | {:>10} {:>7} {:>6}",
        "scheme", "cpu", "gpu", "energy(J)", "acc", "miss"
    );
    for (scheme, id) in ids {
        rt.run_to_completion(id).expect("episode runs");
        let ep = rt.close(id).expect("session open");
        let gpu = ep.records.iter().filter(|r| r.device == 1).count();
        let cpu = ep.records.len() - gpu;
        println!(
            "{:<9} {:>7} {:>7} | {:>10.2} {:>6.1}% {:>5.1}%",
            scheme,
            cpu,
            gpu,
            ep.summary.avg_energy.get(),
            ep.summary.avg_quality * 100.0,
            ep.summary.deadline_miss_rate * 100.0,
        );
    }

    // 4. The placement timeline of one more ALERT run, in coarse bins:
    //    the scripted GPU throttle (35%..75% of the episode) and the
    //    device-1 cap crash (50%..80%) push work back onto the CPU.
    let id = rt.session(spec("ALERT")).open().expect("policy registered");
    rt.run_to_completion(id).expect("episode runs");
    let ep = rt.close(id).expect("session open");
    println!("\nALERT placement timeline (fraction of inputs on the GPU per 10% bin):");
    let bins = 10;
    let per = ep.records.len().div_ceil(bins);
    for (b, chunk) in ep.records.chunks(per).enumerate() {
        let gpu = chunk.iter().filter(|r| r.device == 1).count();
        let frac = gpu as f64 / chunk.len() as f64;
        let bar: String = std::iter::repeat_n('#', (frac * 30.0).round() as usize).collect();
        println!("  {:>3}%  {:<30} {:.0}%", b * 10, bar, frac * 100.0);
    }
    println!("\nPlacement, model choice, and power caps come from one decision —");
    println!("the device axis is part of the candidate space, not a router in front.");
}
