//! Plugging a custom policy into the runtime — the `PolicyRegistry`
//! showcase.
//!
//! A policy is a *named constructor*: register it once, and everything
//! downstream — sessions, experiment sweeps, `RunSpec` files — addresses
//! it by name, exactly like the nine built-in paper schemes. No harness
//! code changes.
//!
//! The custom scheme here is a tiny "greedy race-to-idle" policy: always
//! the most accurate feasible model at full power. It looks sensible (it
//! never misses a feasible deadline) but ignores the idle-energy terrain
//! of Fig. 3, so ALERT beats it on energy at equal accuracy — a compact
//! demonstration of why the paper's Eq. 9 models the *whole period*, not
//! just the inference.
//!
//! Run with: `cargo run --release --example custom_policy`

use alert::models::inference;
use alert::models::inference::StopPolicy;
use alert::models::ModelFamily;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::{Decision, Feedback, InputContext, PolicyRegistry, Scheduler};
use alert::stats::kalman::ScalarKalman;
use alert::stats::units::{Seconds, Watts};
use alert::workload::{Goal, Scenario};

/// Most accurate model whose (filtered) latency fits the deadline, always
/// at the maximum cap.
struct GreedyRaceToIdle {
    family: ModelFamily,
    cap: Watts,
    /// Profiled latencies at the max cap.
    t_prof: Vec<Seconds>,
    /// Indices ordered best-quality-first.
    by_quality: Vec<usize>,
    filter: ScalarKalman,
}

impl GreedyRaceToIdle {
    fn new(family: &ModelFamily, platform: &alert::platform::Platform) -> Self {
        let cap = platform.default_cap();
        let t_prof = family
            .models()
            .iter()
            .map(|m| inference::profile_latency(m, platform, cap).expect("feasible"))
            .collect();
        let mut by_quality: Vec<usize> = (0..family.len()).collect();
        by_quality.sort_by(|&a, &b| {
            family.models()[b]
                .quality
                .total_cmp(&family.models()[a].quality)
        });
        GreedyRaceToIdle {
            family: family.clone(),
            cap,
            t_prof,
            by_quality,
            filter: ScalarKalman::new(1.0, 0.1, 0.01, 0.01),
        }
    }
}

impl Scheduler for GreedyRaceToIdle {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let ratio = self.filter.estimate().max(0.1);
        let pick = self
            .by_quality
            .iter()
            .copied()
            .find(|&m| self.t_prof[m].get() * ratio <= ctx.deadline.get())
            .unwrap_or(*self.by_quality.last().expect("non-empty"));
        let stop = if self.family.models()[pick].is_anytime() {
            StopPolicy::AtTime(ctx.deadline)
        } else {
            StopPolicy::RunToCompletion
        };
        Decision {
            // Greedy is single-device: everything runs on the primary.
            device: 0,
            model: pick,
            cap: self.cap,
            stop,
        }
    }

    fn observe(&mut self, fb: &Feedback) {
        if let Some(r) = fb.result.observed_slowdown() {
            self.filter.update(r);
        }
    }
}

fn main() {
    // 1. Register the custom policy next to the nine built-ins. The
    //    closure receives the session's context (family, platform, goal,
    //    params, frozen env for oracles) and returns a fresh scheduler.
    let mut registry = PolicyRegistry::builtin();
    registry.register_fn("Greedy", |ctx| {
        Ok(Box::new(GreedyRaceToIdle::new(ctx.family, ctx.platform)) as Box<dyn Scheduler>)
    });
    println!("registered policies: {}\n", registry.names().join(", "));

    // 2. Build a runtime carrying the extended registry.
    let mut rt = Runtime::builder()
        .platform(alert::platform::PlatformId::Cpu1)
        .registry(registry)
        .build()
        .expect("policy resolves");

    // 3. Open one session per scheme — same goal, same scenario, same
    //    seed, so both face bit-identical frozen conditions — addressing
    //    the custom scheme purely by name.
    let spec = |policy: &str| SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.35), 0.90),
        scenario: Scenario::memory_env(13),
        n_inputs: 500,
        seed: Some(77),
        policy: Some(policy.to_string()),
    };
    let alert_id = rt.session(spec("ALERT")).open().expect("open ALERT");
    let greedy_id = rt.session(spec("Greedy")).open().expect("open Greedy");

    // 4. Drain both sessions concurrently (round-robin interleaving).
    let episodes = rt.drain_round_robin().expect("sessions drain");
    let by_id = |id| {
        episodes
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, ep)| ep)
            .expect("episode present")
    };
    let ep_alert = by_id(alert_id);
    let ep_greedy = by_id(greedy_id);

    println!("custom policy vs ALERT, minimize energy (deadline 350 ms, floor 90%):\n");
    for e in [ep_alert, ep_greedy] {
        println!(
            "{:<8} avg energy {:>6.2} J | acc {:>5.2}% | violations {:>4.1}%",
            e.scheme,
            e.summary.avg_energy.get(),
            e.summary.avg_quality * 100.0,
            e.summary.violation_rate() * 100.0,
        );
    }
    let saving =
        100.0 * (1.0 - ep_alert.summary.avg_energy.get() / ep_greedy.summary.avg_energy.get());
    println!("\nALERT saves {saving:.0}% energy vs the greedy race-to-idle policy");
    println!("because it coordinates model choice *and* power (paper §2.3).");
}
