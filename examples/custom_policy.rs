//! Plugging a custom policy into the harness.
//!
//! The evaluation harness accepts anything implementing
//! [`Scheduler`](alert::sched::Scheduler). This example writes a tiny
//! "greedy race-to-idle" policy — always the most accurate feasible model
//! at full power — and pits it against ALERT on the paper's minimize-
//! energy task, on identical frozen conditions.
//!
//! The greedy policy looks sensible (it never misses a feasible deadline)
//! but ignores the idle-energy terrain of Fig. 3, so ALERT beats it on
//! energy at equal accuracy — a compact demonstration of why the paper's
//! Eq. 9 models the *whole period*, not just the inference.
//!
//! Run with: `cargo run --release --example custom_policy`

use alert::models::inference;
use alert::models::ModelFamily;
use alert::platform::Platform;
use alert::sched::{
    run_episode, AlertScheduler, Decision, EpisodeEnv, Feedback, InputContext, Scheduler,
};
use alert::stats::kalman::ScalarKalman;
use alert::stats::units::{Seconds, Watts};
use alert::workload::{Goal, InputStream, Scenario, TaskId};
use alert_models::inference::StopPolicy;

/// Most accurate model whose (filtered) latency fits the deadline, always
/// at the maximum cap.
struct GreedyRaceToIdle {
    family: ModelFamily,
    cap: Watts,
    /// Profiled latencies at the max cap.
    t_prof: Vec<Seconds>,
    /// Indices ordered best-quality-first.
    by_quality: Vec<usize>,
    filter: ScalarKalman,
}

impl GreedyRaceToIdle {
    fn new(family: &ModelFamily, platform: &Platform) -> Self {
        let cap = platform.default_cap();
        let t_prof = family
            .models()
            .iter()
            .map(|m| inference::profile_latency(m, platform, cap).expect("feasible"))
            .collect();
        let mut by_quality: Vec<usize> = (0..family.len()).collect();
        by_quality.sort_by(|&a, &b| {
            family.models()[b]
                .quality
                .partial_cmp(&family.models()[a].quality)
                .expect("finite")
        });
        GreedyRaceToIdle {
            family: family.clone(),
            cap,
            t_prof,
            by_quality,
            filter: ScalarKalman::new(1.0, 0.1, 0.01, 0.01),
        }
    }
}

impl Scheduler for GreedyRaceToIdle {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let ratio = self.filter.estimate().max(0.1);
        let pick = self
            .by_quality
            .iter()
            .copied()
            .find(|&m| self.t_prof[m].get() * ratio <= ctx.deadline.get())
            .unwrap_or(*self.by_quality.last().expect("non-empty"));
        let stop = if self.family.models()[pick].is_anytime() {
            StopPolicy::AtTime(ctx.deadline)
        } else {
            StopPolicy::RunToCompletion
        };
        Decision {
            model: pick,
            cap: self.cap,
            stop,
        }
    }

    fn observe(&mut self, fb: &Feedback) {
        if let Some(r) = fb.result.observed_slowdown() {
            self.filter.update(r);
        }
    }
}

fn main() {
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();
    let goal = Goal::minimize_energy(Seconds(0.35), 0.90);
    let stream = InputStream::generate(TaskId::Img2, 500, 77);
    let scenario = Scenario::memory_env(13);
    let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 77);

    let mut greedy = GreedyRaceToIdle::new(&family, &platform);
    let ep_greedy = run_episode(&mut greedy, &env, &family, &stream, &goal);
    let mut alert = AlertScheduler::standard(&family, &platform, goal);
    let ep_alert = run_episode(&mut alert, &env, &family, &stream, &goal);

    println!("custom policy vs ALERT, minimize energy (deadline 350 ms, floor 90%):\n");
    for e in [&ep_alert, &ep_greedy] {
        println!(
            "{:<8} avg energy {:>6.2} J | acc {:>5.2}% | violations {:>4.1}%",
            e.scheme,
            e.summary.avg_energy.get(),
            e.summary.avg_quality * 100.0,
            e.summary.violation_rate() * 100.0,
        );
    }
    let saving = 100.0 * (1.0 - ep_alert.summary.avg_energy / ep_greedy.summary.avg_energy);
    println!("\nALERT saves {saving:.0}% energy vs the greedy race-to-idle policy");
    println!("because it coordinates model choice *and* power (paper §2.3).");
}
