//! Quickstart: run ALERT end to end in ~40 lines.
//!
//! Builds a session runtime on the simulated laptop platform with the
//! paper's image-classification candidate family (Sparse ResNets + a
//! Depth-Nest anytime network), asks ALERT to minimize energy under a
//! latency deadline and an accuracy floor, and prints what it achieved
//! against the App-only baseline — both schemes running as concurrent
//! sessions over identical frozen conditions.
//!
//! Run with: `cargo run --release --example quickstart`

use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::FamilyKind;
use alert::stats::units::Seconds;
use alert::workload::{Goal, Scenario};

fn main() {
    // 1. A runtime: platform + candidate family + default policy.
    let mut rt = Runtime::builder()
        .platform(alert::platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .policy("ALERT")
        .build()
        .expect("builtin policy");

    // 2. State the goal: minimize energy, hold 90% top-5 accuracy, meet a
    //    300 ms deadline per frame; 500 camera frames with a
    //    memory-hungry co-runner that starts and stops (the paper's
    //    "Memory" environment).
    let spec = |policy: Option<&str>| SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.300), 0.90),
        scenario: Scenario::memory_env(7),
        n_inputs: 500,
        seed: Some(42),
        policy: policy.map(String::from),
    };

    // 3. Two concurrent sessions on bit-identical conditions: ALERT (the
    //    runtime default) and the App-only baseline by name.
    let alert_id = rt.session(spec(None)).open().expect("open");
    let app_id = rt.session(spec(Some("App-only"))).open().expect("open");

    // 4. Drain and compare.
    let episodes = rt.drain_round_robin().expect("drain");
    let ep = &episodes.iter().find(|(id, _)| *id == alert_id).unwrap().1;
    let ep_app = &episodes.iter().find(|(id, _)| *id == app_id).unwrap().1;
    for e in [ep, ep_app] {
        println!(
            "{:<10} avg energy {:>6.2} J | avg top-5 acc {:>5.2}% | deadline misses {:>4.1}% | violations {:>4.1}%",
            e.scheme,
            e.summary.avg_energy.get(),
            e.summary.avg_quality * 100.0,
            e.summary.deadline_miss_rate * 100.0,
            e.summary.violation_rate() * 100.0,
        );
    }
    let saved = 100.0 * (1.0 - ep.summary.avg_energy.get() / ep_app.summary.avg_energy.get());
    println!("\nALERT saved {saved:.0}% energy at the same accuracy floor.");
    println!("(One-shot episodes are still available via `alert::sched::run_episode`.)");
}
