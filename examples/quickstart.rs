//! Quickstart: run ALERT end to end in ~40 lines.
//!
//! Builds the paper's image-classification candidate family (Sparse
//! ResNets + a Depth-Nest anytime network) on the simulated laptop
//! platform, asks ALERT to minimize energy under a latency deadline and an
//! accuracy floor, and prints what it achieved against the App-only
//! baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use alert::models::ModelFamily;
use alert::platform::Platform;
use alert::sched::{run_episode, AlertScheduler, AppOnly, EpisodeEnv};
use alert::stats::units::Seconds;
use alert::workload::{Goal, InputStream, Scenario, TaskId};

fn main() {
    // 1. Pick a platform and a DNN candidate family.
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();

    // 2. State the goal: minimize energy, hold 90% top-5 accuracy, meet a
    //    300 ms deadline per frame.
    let goal = Goal::minimize_energy(Seconds(0.300), 0.90);

    // 3. A stream of 500 camera frames, with a memory-hungry co-runner
    //    that starts and stops (the paper's "Memory" environment).
    let stream = InputStream::generate(TaskId::Img2, 500, 42);
    let scenario = Scenario::memory_env(7);
    let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 42);

    // 4. Run ALERT and the App-only baseline on identical conditions.
    let mut alert = AlertScheduler::standard(&family, &platform, goal);
    let ep = run_episode(&mut alert, &env, &family, &stream, &goal);
    let mut app_only = AppOnly::new(&family, &platform);
    let ep_app = run_episode(&mut app_only, &env, &family, &stream, &goal);

    // 5. Compare.
    for e in [&ep, &ep_app] {
        println!(
            "{:<10} avg energy {:>6.2} J | avg top-5 acc {:>5.2}% | deadline misses {:>4.1}% | violations {:>4.1}%",
            e.scheme,
            e.summary.avg_energy.get(),
            e.summary.avg_quality * 100.0,
            e.summary.deadline_miss_rate * 100.0,
            e.summary.violation_rate() * 100.0,
        );
    }
    let saved = 100.0 * (1.0 - ep.summary.avg_energy / ep_app.summary.avg_energy);
    println!("\nALERT saved {saved:.0}% energy at the same accuracy floor.");
    println!(
        "Final slowdown belief: ξ = {:.3} (σ = {:.3}) after {} inputs.",
        alert.controller().slowdown().mean(),
        alert.controller().slowdown().std_dev(),
        alert.controller().decisions(),
    );
}
