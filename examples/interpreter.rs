//! Simultaneous interpretation (the paper's §1 NLP motivating example):
//! word-level sentence prediction where all words of a sentence share one
//! sentence-wide deadline (§3.2 step 2).
//!
//! Demonstrates the shared-budget mechanics: slow words shrink the
//! deadlines of the words after them, and ALERT compensates by switching
//! to faster RNNs (or earlier anytime stages) mid-sentence.
//!
//! Run with: `cargo run --release --example interpreter`

use alert::platform::Platform;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::{EpisodeEnv, FamilyKind};
use alert::stats::units::{Seconds, Watts};
use alert::workload::{Goal, InputStream, Scenario, TaskId};
use std::sync::Arc;

fn main() {
    let platform = Platform::cpu1();

    // Per-word budget of 60 ms: a 20-word sentence gets 1.2 s, inside the
    // 2-4 s window simultaneous interpretation tolerates (paper §1).
    let per_word = Seconds(0.060);
    let goal = Goal::minimize_error(per_word, Watts(25.0) * per_word);

    // One frozen environment shared by both schemes: the session
    // builder's `.on(stream, env)` step exists exactly for such
    // comparisons.
    let stream = InputStream::generate(TaskId::Nlp1, 1500, 99);
    let scenario = Scenario::compute_env(3);
    let mut rt = Runtime::builder()
        .platform(platform.id())
        .family(FamilyKind::Sentence)
        .build()
        .expect("builtin policy");
    let env =
        Arc::new(EpisodeEnv::build(rt.platform(), &scenario, &stream, &goal, 99).expect("valid"));

    let alert_id = rt
        .session(SessionSpec::external(goal))
        .policy("ALERT")
        .on(stream.clone(), env.clone())
        .open()
        .expect("open ALERT");
    let sys_id = rt
        .session(SessionSpec::external(goal))
        .policy("Sys-only")
        .on(stream.clone(), env)
        .open()
        .expect("open Sys-only");
    let episodes = rt.drain_round_robin().expect("drain");
    let ep = &episodes.iter().find(|(id, _)| *id == alert_id).unwrap().1;
    let ep_sys = &episodes.iter().find(|(id, _)| *id == sys_id).unwrap().1;

    // Count sentences and sentence-level deadline performance.
    let sentences = stream
        .inputs()
        .iter()
        .filter(|i| i.group.map(|g| g.is_last()).unwrap_or(false))
        .count();
    println!(
        "{} words in {} sentences, compute contention on/off, 60 ms/word budget\n",
        stream.len(),
        sentences
    );
    for e in [&ep, &ep_sys] {
        println!(
            "{:<10} avg perplexity {:>7.1} | word-deadline misses {:>5.2}% | avg energy {:>5.2} J/word",
            e.scheme,
            -e.summary.avg_quality,
            e.summary.deadline_miss_rate * 100.0,
            e.summary.avg_energy.get(),
        );
    }

    // Show the shared-budget dynamics on one long sentence: find the
    // longest sentence and print the per-word deadlines ALERT faced.
    let longest = stream
        .inputs()
        .iter()
        .enumerate()
        .filter_map(|(i, inp)| inp.group.map(|g| (i, g)))
        .max_by_key(|(_, g)| g.group_len)
        .expect("grouped stream");
    let start = longest.0 - longest.1.member_idx;
    let len = longest.1.group_len;
    println!("\nlongest sentence ({len} words) under ALERT — per-word deadlines adapt:");
    print!("  deadlines (ms):");
    for r in &ep.records[start..start + len.min(14)] {
        print!(" {:>5.1}", r.deadline.get() * 1e3);
    }
    if len > 14 {
        print!(" ...");
    }
    println!();
    print!("  models        :");
    for r in &ep.records[start..start + len.min(14)] {
        let short = r.model.rsplit('_').next().unwrap_or(&r.model);
        print!(" {short:>5}");
    }
    if len > 14 {
        print!(" ...");
    }
    println!();
    println!("\n(slow words shrink later deadlines; ALERT downshifts models mid-sentence.)");
}
