//! Capture a live serving run into a trace file, then replay it — once
//! verbatim and once under a *counterfactual* power-cap script.
//!
//! The flow every production postmortem wants:
//!
//! 1. a [`TraceRecorder`] sink captures a scripted "incident" run
//!    (bursty arrivals + input drift) into the versioned line-delimited
//!    trace format;
//! 2. the trace file is loaded back and its recorded inter-arrival/scale
//!    sequence becomes a first-class scenario via
//!    `ArrivalProcess::Trace` — replay is **bit-identical** to the
//!    capture;
//! 3. the same traffic is re-run under a hidden cap crash the original
//!    run never experienced ("what if the rack had been power-capped
//!    during that burst?") — arrivals stay recorded, conditions change.
//!
//! Run with: `cargo run --release --example trace_replay`

use alert::sched::capture::TraceRecorder;
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::FamilyKind;
use alert::stats::units::Seconds;
use alert::workload::{Goal, Scenario, ScenarioScript, ScriptEvent, TraceFit, WorkloadTrace};

fn main() {
    let seed = 2026;
    let n_inputs = 300;
    let goal = Goal::minimize_energy(Seconds(0.35), 0.90);

    // 1. Capture: a bursty, drifting "incident afternoon", recorded
    //    straight off the runtime's event sink.
    let incident = Scenario::compound_stress(seed);
    let recorder = TraceRecorder::new(incident.name(), Some(seed));
    let mut rt = Runtime::builder()
        .platform(alert::platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .sink(recorder.clone())
        .build()
        .expect("builtin policy");
    let id = rt
        .session(SessionSpec {
            goal,
            scenario: incident,
            n_inputs,
            seed: Some(seed),
            policy: Some("ALERT".into()),
        })
        .open()
        .expect("open");
    rt.run_to_completion(id).expect("serve");
    let captured_ep = rt.close(id).expect("close");

    let path = std::env::temp_dir().join(format!("alert-incident-{}.jsonl", std::process::id()));
    recorder.save(&path).expect("write trace");
    println!(
        "captured {} inputs from '{}' into {}",
        recorder.len(),
        recorder.snapshot().header().source,
        path.display()
    );

    // 2. Replay verbatim: the trace file alone reproduces the recorded
    //    arrival/scale sequence bit-exactly.
    let trace = WorkloadTrace::load(&path).expect("trace loads");
    let source = trace.replay_source(id.0).expect("session recorded");
    let serve = |scenario: Scenario| {
        let mut rt = Runtime::builder()
            .platform(alert::platform::PlatformId::Cpu1)
            .family(FamilyKind::Image)
            .seed(seed)
            .build()
            .expect("builtin policy");
        let sid = rt
            .session(SessionSpec {
                goal,
                scenario,
                n_inputs,
                seed: Some(seed),
                policy: Some("ALERT".into()),
            })
            .open()
            .expect("open");
        rt.run_to_completion(sid).expect("serve");
        rt.close(sid).expect("close")
    };
    let replay_ep = serve(Scenario::replay(
        "IncidentReplay",
        source.clone(),
        TraceFit::Truncate,
    ));
    for (r, orig) in replay_ep.records.iter().zip(trace.session_records(id.0)) {
        assert_eq!(r.period.get().to_bits(), orig.inter_arrival.get().to_bits());
        assert_eq!(r.scale.to_bits(), orig.scale.to_bits());
    }
    println!("replay reproduced every inter-arrival and input scale bit-exactly");

    // 3. Counterfactual: the same traffic, but the rack gets power-capped
    //    to 30% of its range for the middle of the episode.
    let counterfactual_ep = serve(Scenario::replay_under(
        "IncidentUnderCapCrash",
        source,
        TraceFit::Truncate,
        ScenarioScript::new()
            .with(ScriptEvent::CapStep { at: 0.3, frac: 0.3 })
            .with(ScriptEvent::CapStep { at: 0.8, frac: 1.0 }),
    ));

    println!(
        "\n{:<24} {:>10} {:>12} {:>10}",
        "run", "misses %", "energy J", "quality"
    );
    for (name, ep) in [
        ("captured incident", &captured_ep),
        ("verbatim replay", &replay_ep),
        ("replay + cap crash", &counterfactual_ep),
    ] {
        println!(
            "{:<24} {:>10.2} {:>12.2} {:>10.4}",
            name,
            ep.summary.deadline_miss_rate * 100.0,
            ep.summary.avg_energy.get(),
            ep.summary.avg_quality
        );
    }
    println!(
        "\n(The counterfactual kept the recorded arrivals — only the hidden cap\n\
         ceiling changed, which is exactly what 'would we have survived a power\n\
         cap during that incident?' needs to measure.)"
    );
    let _ = std::fs::remove_file(&path);
}
