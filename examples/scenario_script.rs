//! Author a custom compound scenario with the scenario-script DSL.
//!
//! The named library (`Scenario::library`) covers the paper's three
//! environments plus seven dynamic-stress scenarios — but scenarios are
//! just data. This example scripts a bespoke "afternoon in production"
//! timeline: a memory-hungry batch job lands mid-episode, the datacenter
//! power-caps the box to 40% of its range, the product team tightens the
//! deadline, sentence lengths drift longer, and arrivals turn bursty —
//! then everything recovers. The same script runs through the session
//! runtime against two schemes on bit-identical frozen conditions, and
//! round-trips through JSON (so scenarios can live in config files).
//!
//! Run with: `cargo run --release --example scenario_script`

use alert::platform::contention::{ContentionKind, PhaseSchedule};
use alert::sched::runtime::{Runtime, SessionSpec};
use alert::sched::FamilyKind;
use alert::stats::units::Seconds;
use alert::workload::{ArrivalProcess, Goal, GoalPatch, Scenario, ScenarioScript, ScriptEvent};

fn main() {
    // 1. Script the timeline. Contention schedules are wall-clock
    //    seconds; every other mark is a fraction of the episode horizon,
    //    so the same script fits any stream length or deadline.
    let script = ScenarioScript::new()
        // A batch job occupies the middle half of the afternoon.
        .with(ScriptEvent::Contention {
            kind: ContentionKind::Memory,
            schedule: PhaseSchedule::Windows(vec![(Seconds(30.0), Seconds(90.0))]),
        })
        // The rack is power-capped to 40% of the feasible range, then
        // restored (frac 1.0 lifts the ceiling).
        .with(ScriptEvent::CapStep {
            at: 0.35,
            frac: 0.4,
        })
        .with(ScriptEvent::CapStep {
            at: 0.70,
            frac: 1.0,
        })
        // Product tightens the deadline by 25% for the busy stretch.
        .with(ScriptEvent::GoalChange {
            at: 0.40,
            patch: GoalPatch::deadline(0.75),
        })
        .with(ScriptEvent::GoalChange {
            at: 0.80,
            patch: GoalPatch::deadline(1.0 / 0.75),
        })
        // Inputs grow 40% heavier over the middle of the episode.
        .with(ScriptEvent::DriftRamp {
            from: 0.30,
            to: 0.70,
            peak: 1.4,
        })
        // Arrivals turn bursty during the rush, then relax.
        .with(ScriptEvent::ArrivalChange {
            at: 0.45,
            process: ArrivalProcess::Bursty {
                burst: 4,
                spread: 0.3,
            },
        })
        .with(ScriptEvent::ArrivalChange {
            at: 0.85,
            process: ArrivalProcess::Periodic,
        });
    let scenario = Scenario::from_script("AfternoonInProduction", script);

    // 2. Scenarios are plain data: ship them in config files.
    let json = serde_json::to_string_pretty(&scenario).expect("serialize");
    let restored: Scenario = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(scenario, restored);
    println!(
        "scenario '{}' round-trips through {} bytes of JSON\n",
        restored.name(),
        json.len()
    );

    // 3. Serve it: two schemes, same spec, bit-identical frozen
    //    conditions (same seed ⇒ same realization).
    let mut rt = Runtime::builder()
        .platform(alert::platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .build()
        .expect("builtin policy");
    let spec = |policy: &str| SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.300), 0.90),
        scenario: restored.clone(),
        n_inputs: 400,
        seed: Some(2026),
        policy: Some(policy.to_string()),
    };
    let alert_id = rt.session(spec("ALERT")).open().expect("open");
    let noco_id = rt.session(spec("No-coord")).open().expect("open");
    let episodes = rt.drain_round_robin().expect("drain");

    for (id, ep) in &episodes {
        println!(
            "{:<10} avg energy {:>6.2} J | avg top-5 acc {:>5.2}% | deadline misses {:>4.1}%",
            ep.scheme,
            ep.summary.avg_energy.get(),
            ep.summary.avg_quality * 100.0,
            ep.summary.deadline_miss_rate * 100.0,
        );
        assert!(*id == alert_id || *id == noco_id);
    }
    println!("\n(Every phase change — contention, cap, goal, drift, arrivals — hit both");
    println!(" schemes at the same dispatch times: the environment is frozen per seed.)");
}
