//! # ALERT — Accurate Learning for Energy and Timeliness
//!
//! A full Rust reproduction of *ALERT: Accurate Learning for Energy and
//! Timeliness* (Wan et al., USENIX ATC 2020): a runtime scheduler that
//! jointly selects a DNN model and a system power setting for every
//! inference input, meeting two of {latency, accuracy, energy} as
//! constraints while optimizing the third.
//!
//! This façade crate re-exports the workspace:
//!
//! * [`stats`] — normal distribution, Kalman filters, summaries.
//! * [`platform`] — simulated hardware: power capping, DVFS, contention.
//! * [`models`] — the DNN model zoo and inference simulator.
//! * [`workload`] — tasks, input streams, constraint grids, scenarios.
//! * [`core`] — the ALERT controller itself (paper Eqs. 1–13).
//! * [`sched`] — baselines, oracles, the experiment harness.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

pub use alert_core as core;
pub use alert_models as models;
pub use alert_platform as platform;
pub use alert_sched as sched;
pub use alert_stats as stats;
pub use alert_workload as workload;

/// A convenience prelude importing the most common types.
pub mod prelude {
    pub use alert_stats::units::{Joules, Seconds, Watts};
}
