//! Soundness proofs-by-property for the selection fast lane: the pruned,
//! memoized, cached decision path must be **bit-identical** to the
//! reference full enumeration for randomized tables, beliefs, goals,
//! probability modes, group boundaries, and snapshot/restore cuts.

use alert_core::alert::{AlertController, AlertParams, Observation, OverheadPolicy};
use alert_core::lane::{CandidateLane, LaneScratch};
use alert_core::select::select_with_period;
use alert_core::{CandidateModel, ConfigTable, Goal, ProbabilityMode, Selection, StagePoint};
use alert_stats::normal::Normal;
use alert_stats::units::{Joules, Seconds, Watts};
use proptest::prelude::*;

/// Deterministic value pool: every structural choice below is derived
/// from these uniform draws, so each proptest case is one table/belief
/// configuration.
struct Pool {
    vals: Vec<f64>,
    cursor: usize,
}

impl Pool {
    fn new(vals: Vec<f64>) -> Self {
        Pool { vals, cursor: 0 }
    }

    /// Next uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        let v = self.vals[self.cursor % self.vals.len()];
        self.cursor += 1;
        v
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    fn index(&mut self, n: usize) -> usize {
        ((self.unit() * n as f64) as usize).min(n - 1)
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// A randomized candidate table: 1–4 models (traditional and anytime),
/// 1–4 power settings, saturating cap responses with deliberate exact
/// latency ties (the dominance filter's bread and butter) and occasional
/// near-ties (its adversary).
fn random_table(pool: &mut Pool) -> ConfigTable {
    let n_models = 1 + pool.index(4);
    let n_powers = 1 + pool.index(4);
    let mut models = Vec::new();
    let mut t_prof = Vec::new();
    let mut p_run = Vec::new();
    // Ascending caps.
    let mut caps = Vec::new();
    let mut cap = pool.range(5.0, 20.0);
    for _ in 0..n_powers {
        caps.push(Watts(cap));
        cap += pool.range(2.0, 20.0);
    }
    for m in 0..n_models {
        let anytime = pool.chance(0.4);
        let fail = pool.range(0.0, 0.2);
        if anytime {
            let n_stages = 2 + pool.index(3);
            let mut stages = Vec::new();
            let mut frac = pool.range(0.2, 0.5);
            let mut q = fail + pool.range(0.05, 0.3);
            for s in 0..n_stages {
                let last = s == n_stages - 1;
                stages.push(StagePoint {
                    frac: if last { 1.0 } else { frac },
                    quality: q,
                });
                frac += pool.range(0.05, 0.4 / n_stages as f64);
                q += pool.range(0.01, 0.1);
            }
            models.push(CandidateModel::anytime(format!("any{m}"), stages, fail));
        } else {
            let q = fail + pool.range(0.1, 0.8);
            models.push(CandidateModel::traditional(format!("trad{m}"), q, fail));
        }
        // Latency row: decreasing in cap, but with a saturation point
        // after which extra cap buys *exactly* nothing (ties), and a
        // small chance of a near-tie one ulp-ish apart.
        let base = pool.range(0.01, 0.4);
        let saturate_from = pool.index(n_powers);
        let mut row_t = Vec::new();
        let mut row_p = Vec::new();
        let mut t = base;
        for j in 0..n_powers {
            if j > saturate_from {
                if pool.chance(0.2) {
                    t *= 1.0 - 1e-12; // near-tie: must NOT be pruned
                } // else exact tie: prunable
            } else if j > 0 {
                t *= pool.range(0.5, 0.95);
            }
            row_t.push(Seconds(t));
            // Run power near the cap, sometimes saturated as well.
            let draw = caps[j]
                .get()
                .min(pool.range(0.6, 1.0) * caps[n_powers - 1].get());
            row_p.push(Watts(draw.max(1.0)));
        }
        t_prof.push(row_t);
        p_run.push(row_p);
    }
    ConfigTable::new(models, caps, t_prof, p_run).expect("generated table is valid")
}

fn random_goal(pool: &mut Pool) -> Goal {
    let deadline = Seconds(pool.range(0.005, 0.6));
    let mut goal = if pool.chance(0.5) {
        Goal::minimize_energy(deadline, pool.range(0.1, 0.98))
    } else {
        Goal::minimize_error(deadline, Joules(pool.range(1e-4, 30.0)))
    };
    if pool.chance(0.4) {
        // Include thresholds below ½: they must bypass pruning, not
        // break identity.
        goal = goal.with_prob_threshold(pool.range(0.05, 0.999));
    }
    goal
}

fn random_belief(pool: &mut Pool) -> Normal {
    let mean = pool.range(0.2, 3.0);
    let sd = if pool.chance(0.2) {
        0.0 // degenerate zero-variance belief
    } else {
        pool.range(0.001, 0.6)
    };
    Normal::new(mean, sd)
}

/// Bit-level equality of two selections (plain `==` would call NaN
/// mismatches unequal and ±0 equal; the claim here is *bit* identity).
fn assert_bits_equal(fast: &Selection, full: &Selection, label: &str) {
    assert_eq!(fast.candidate, full.candidate, "{label}: candidate");
    assert_eq!(fast.feasible, full.feasible, "{label}: feasible");
    let pairs = [
        (fast.deadline.get(), full.deadline.get(), "deadline"),
        (
            fast.estimates.mean_latency.get(),
            full.estimates.mean_latency.get(),
            "mean_latency",
        ),
        (
            fast.estimates.pr_deadline,
            full.estimates.pr_deadline,
            "pr_deadline",
        ),
        (
            fast.estimates.expected_quality,
            full.estimates.expected_quality,
            "expected_quality",
        ),
        (
            fast.estimates.energy.get(),
            full.estimates.energy.get(),
            "energy",
        ),
        (
            fast.estimates.energy_bound.get(),
            full.estimates.energy_bound.get(),
            "energy_bound",
        ),
    ];
    for (a, b, what) in pairs {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {what} {a} vs {b}");
    }
}

proptest! {
    /// Stage 1+2 (SoA + pruning): for arbitrary tables and decision
    /// inputs, the lane selects bit-identically to the reference
    /// enumeration.
    #[test]
    fn lane_is_bit_identical_to_full_enumeration(
        raw in proptest::collection::vec(0.0f64..1.0, 64..96),
        n_queries in 4usize..10,
    ) {
        let mut pool = Pool::new(raw);
        let table = random_table(&mut pool);
        let lane = CandidateLane::build(&table);
        let mut scratch = LaneScratch::for_lane(&lane);
        for q in 0..n_queries {
            let xi = random_belief(&mut pool);
            let idle = pool.range(0.0, 1.0);
            let goal = random_goal(&mut pool);
            let period = Seconds(pool.range(0.001, 1.0));
            let mode = if pool.chance(0.25) {
                ProbabilityMode::MeanOnly
            } else {
                ProbabilityMode::Full
            };
            let fast = lane
                .select_with_period(&mut scratch, &xi, idle, &goal, period, mode)
                .expect("valid goal");
            let full = select_with_period(&table, &xi, idle, &goal, period, mode)
                .expect("valid goal");
            assert_bits_equal(&fast, &full, &format!("query {q} ({} pruned)", lane.pruned_count()));
        }
    }

    /// The full controller path — fast lane *plus* the belief-banded
    /// decision cache — against the reference enumeration, across
    /// observation feedback, repeated decides (cache hits), group
    /// boundaries, snapshot/restore migration, and resets. The emitted
    /// selection must always equal a fresh full enumeration at the
    /// controller's current belief and the decision's effective deadline.
    #[test]
    fn controller_decisions_replay_full_enumeration(
        raw in proptest::collection::vec(0.0f64..1.0, 96..128),
        n_steps in 20usize..40,
    ) {
        let mut pool = Pool::new(raw);
        let table = random_table(&mut pool);
        let params = AlertParams {
            overhead: OverheadPolicy::None,
            mode: if pool.chance(0.25) {
                ProbabilityMode::MeanOnly
            } else {
                ProbabilityMode::Full
            },
            ..Default::default()
        };
        let mut ctl = AlertController::new(table.clone(), params).expect("valid params");
        let goal = random_goal(&mut pool);
        let period = Seconds(pool.range(0.001, 1.0));

        for step in 0..n_steps {
            // Occasionally reshape the adjuster state.
            if pool.chance(0.15) {
                ctl.begin_group(Seconds(pool.range(0.05, 1.0)), 1 + pool.index(4));
            }
            if pool.chance(0.1) {
                // Checkpoint, migrate to a fresh controller, continue.
                let snap = ctl.snapshot();
                let mut fresh = AlertController::new(table.clone(), params).expect("valid params");
                fresh.restore(&snap);
                ctl = fresh;
            }
            if pool.chance(0.05) {
                ctl.reset();
            }

            let sel = ctl.decide_with_period(&goal, period).expect("valid goal");
            // The Selection records the effective deadline the decision
            // was judged against; replaying the reference enumeration at
            // that deadline and the controller's current belief must
            // reproduce it bit for bit — whether the fast path answered
            // from the pruned enumeration or the cache.
            let reference = select_with_period(
                &table,
                &ctl.slowdown().distribution(),
                ctl.idle_ratio(),
                &goal.with_deadline(sel.deadline),
                period,
                params.mode,
            )
            .expect("valid goal");
            assert_bits_equal(&sel, &reference, &format!("step {step}"));

            // Repeat the decision without feedback (outside a group the
            // inputs are unchanged — the cache path must still match).
            if ctl.decisions() > 0 && pool.chance(0.5) {
                let again = ctl.decide_with_period(&goal, period).expect("valid goal");
                let reference2 = select_with_period(
                    &table,
                    &ctl.slowdown().distribution(),
                    ctl.idle_ratio(),
                    &goal.with_deadline(again.deadline),
                    period,
                    params.mode,
                )
                .expect("valid goal");
                assert_bits_equal(&again, &reference2, &format!("step {step} (repeat)"));
            }

            // Feed an observation so the belief moves.
            let profile = Seconds(pool.range(0.005, 0.3));
            ctl.observe(&Observation {
                latency: profile * pool.range(0.5, 2.5),
                profile_equivalent: profile,
                idle_power: pool.chance(0.7).then(|| Watts(pool.range(1.0, 10.0))),
                idle_cap: Watts(pool.range(10.0, 50.0)),
            });
        }
    }

    /// Pruning actually fires on saturated tables, and never on tables
    /// where it would be unsound to drop anything the reference could
    /// pick: spot-check by exhaustively comparing a dense goal grid.
    #[test]
    fn pruned_tables_survive_a_goal_grid(
        raw in proptest::collection::vec(0.0f64..1.0, 64..96),
    ) {
        let mut pool = Pool::new(raw);
        let table = random_table(&mut pool);
        let lane = CandidateLane::build(&table);
        let mut scratch = LaneScratch::for_lane(&lane);
        let xi = random_belief(&mut pool);
        let idle = pool.range(0.0, 1.0);
        for &deadline in &[0.004, 0.02, 0.08, 0.3] {
            for goal in [
                Goal::minimize_energy(Seconds(deadline), 0.5),
                Goal::minimize_energy(Seconds(deadline), 0.95),
                Goal::minimize_error(Seconds(deadline), Joules(1e-6)),
                Goal::minimize_error(Seconds(deadline), Joules(5.0)),
            ] {
                let fast = lane
                    .select_with_period(&mut scratch, &xi, idle, &goal, goal.deadline, ProbabilityMode::Full)
                    .expect("valid goal");
                let full = select_with_period(&table, &xi, idle, &goal, goal.deadline, ProbabilityMode::Full)
                    .expect("valid goal");
                assert_bits_equal(&fast, &full, &format!("deadline {deadline} {:?}", goal.objective));
            }
        }
    }
}

/// Deterministic (non-property) check that the controller's cache path
/// is exercised at all: repeated decides at a converged belief must hit.
#[test]
fn controller_cache_hits_on_stable_belief() {
    let models = vec![
        CandidateModel::traditional("small", 0.86, 0.005),
        CandidateModel::traditional("big", 0.95, 0.005),
    ];
    let powers = vec![Watts(20.0), Watts(45.0)];
    let t_prof = vec![
        vec![Seconds(0.040), Seconds(0.020)],
        vec![Seconds(0.200), Seconds(0.100)],
    ];
    let p_run = vec![
        vec![Watts(18.0), Watts(40.0)],
        vec![Watts(19.0), Watts(42.0)],
    ];
    let table = ConfigTable::new(models, powers, t_prof, p_run).expect("valid table");
    let mut ctl = AlertController::new(
        table,
        AlertParams {
            overhead: OverheadPolicy::None,
            ..Default::default()
        },
    )
    .expect("valid params");
    let goal = Goal::minimize_error(Seconds(0.3), Joules(20.0));
    for _ in 0..10 {
        let _ = ctl.decide(&goal).expect("valid goal");
    }
    let stats = ctl.cache_stats();
    assert_eq!(stats.hits, 9, "identical inputs must replay the cache");
    assert_eq!(stats.misses, 1);

    // A group boundary invalidates; the next decision re-enumerates.
    ctl.begin_group(Seconds(0.6), 2);
    let _ = ctl.decide(&goal).expect("valid goal");
    let stats = ctl.cache_stats();
    assert_eq!(stats.hits, 9);
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.misses, 2);
}
