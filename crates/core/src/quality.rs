//! Expected inference quality under a deadline (paper Eqs. 3, 7, 13).
//!
//! For a traditional DNN, quality is a step function of latency: the
//! model's quality if it finishes by the deadline, the fallback otherwise
//! (Eq. 3). ALERT's estimate takes the expectation over the latency
//! distribution (Eq. 7):
//!
//! ```text
//! q̂ = Pr[t ≤ T]·q + (1 − Pr[t ≤ T])·q_fail
//! ```
//!
//! For an anytime DNN the staircase of outputs generalizes this (Eq. 13):
//! the delivered output is the last stage completed by the deadline. All
//! stage completion times share the same ξ, so the event "stage k is the
//! best completed" has probability `Pr_k − Pr_{k+1}` with
//! `Pr_k = Pr[ξ·t^prof·frac_k ≤ T]` — a telescoping sum.
//!
//! The mean-only ablation (ALERT\* in paper §5.3, Fig. 10) replaces the
//! expectation with the staircase evaluated at the mean latency; its
//! failure to price tail risk is exactly what Fig. 10 measures.

use crate::config::{CandidateModel, StagePoint};
use alert_stats::normal::Normal;
use alert_stats::units::Seconds;

/// Expected quality of running `model` up to stage `target_stage`
/// (inclusive) with full-network profile `t_prof_full`, judged at
/// `deadline` (Eqs. 7/13).
///
/// # Panics
///
/// Panics if `target_stage` is out of range.
pub fn expected_quality(
    xi: &Normal,
    model: &CandidateModel,
    t_prof_full: Seconds,
    target_stage: usize,
    deadline: Seconds,
) -> f64 {
    let stages = &model.stages;
    assert!(target_stage < stages.len(), "stage out of range");
    // Pr_k for k = 0..=target.
    let mut probs = Vec::with_capacity(target_stage + 1);
    for s in &stages[..=target_stage] {
        let t_stage = t_prof_full * s.frac;
        let pr = crate::latency::deadline_probability(xi, t_stage, deadline);
        probs.push(pr);
    }
    expected_quality_from_probs(&stages[..=target_stage], model.fail_quality, &mut probs)
}

/// The Eq. 7/13 mixture given the *raw* per-stage completion
/// probabilities `probs[k] = Pr[stage k completes by the deadline]`
/// (clamped non-increasing in place, then telescoped).
///
/// This is the one implementation of the telescoping sum; both
/// [`expected_quality`] and the selection fast lane (`crate::lane`,
/// which memoizes the probabilities across sibling candidates) call it,
/// so the two paths are arithmetically identical by construction.
///
/// # Panics
///
/// Panics if `probs` is empty or its length differs from `stages`.
pub fn expected_quality_from_probs(
    stages: &[StagePoint],
    fail_quality: f64,
    probs: &mut [f64],
) -> f64 {
    assert!(!probs.is_empty(), "at least one stage required");
    assert_eq!(stages.len(), probs.len(), "stage/probability mismatch");
    let target_stage = probs.len() - 1;
    // Completion probabilities are non-increasing across stages (same ξ);
    // enforce against floating noise.
    for k in 1..probs.len() {
        if probs[k] > probs[k - 1] {
            probs[k] = probs[k - 1];
        }
    }
    let mut expected = 0.0;
    for k in 0..=target_stage {
        let pr_next = if k < target_stage { probs[k + 1] } else { 0.0 };
        expected += stages[k].quality * (probs[k] - pr_next);
    }
    expected += fail_quality * (1.0 - probs.first().copied().unwrap_or(0.0));
    expected
}

/// The ALERT\* (mean-only) quality estimate: the staircase evaluated at
/// the mean latency, with no probabilistic mixing.
///
/// # Panics
///
/// Panics if `target_stage` is out of range for `model.stages` — stage
/// indices come from the candidate table, so an out-of-range index is a
/// construction bug, not a runtime condition.
pub fn mean_only_quality(
    xi: &Normal,
    model: &CandidateModel,
    t_prof_full: Seconds,
    target_stage: usize,
    deadline: Seconds,
) -> f64 {
    let stages = &model.stages;
    assert!(target_stage < stages.len(), "stage out of range");
    mean_only_quality_over(
        stages[..=target_stage]
            .iter()
            .map(|s| (t_prof_full * s.frac, s.quality)),
        model.fail_quality,
        xi.mean(),
        deadline,
    )
}

/// The mean-only staircase walk over `(stage profile latency, stage
/// quality)` pairs — the shared kernel of [`mean_only_quality`] and the
/// fast lane's precomputed-latency path. `t_prof_full * frac` (a single
/// f64 multiply) is the caller's job; `· ξ̄` and the staircase walk happen
/// here, in the exact original order of operations.
pub fn mean_only_quality_over(
    stage_pairs: impl Iterator<Item = (Seconds, f64)>,
    fail_quality: f64,
    xi_mean: f64,
    deadline: Seconds,
) -> f64 {
    let mut q = fail_quality;
    for (t_stage, quality) in stage_pairs {
        let mean_t = t_stage.get() * xi_mean;
        if mean_t <= deadline.get() {
            q = quality;
        } else {
            break;
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StagePoint;

    fn trad() -> CandidateModel {
        CandidateModel::traditional("t", 0.95, 0.005)
    }

    fn anytime() -> CandidateModel {
        CandidateModel::anytime(
            "a",
            vec![
                StagePoint {
                    frac: 0.3,
                    quality: 0.85,
                },
                StagePoint {
                    frac: 0.6,
                    quality: 0.91,
                },
                StagePoint {
                    frac: 1.0,
                    quality: 0.94,
                },
            ],
            0.005,
        )
    }

    #[test]
    fn traditional_matches_eq7() {
        let xi = Normal::new(1.0, 0.1);
        let t = Seconds(0.1);
        let deadline = Seconds(0.105);
        let pr = crate::latency::deadline_probability(&xi, t, deadline);
        let want = pr * 0.95 + (1.0 - pr) * 0.005;
        let got = expected_quality(&xi, &trad(), t, 0, deadline);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn certain_completion_gives_full_quality() {
        let xi = Normal::new(1.0, 0.01);
        let got = expected_quality(&xi, &trad(), Seconds(0.1), 0, Seconds(1.0));
        assert!((got - 0.95).abs() < 1e-9);
    }

    #[test]
    fn certain_miss_gives_fallback() {
        let xi = Normal::new(1.0, 0.01);
        let got = expected_quality(&xi, &trad(), Seconds(0.5), 0, Seconds(0.1));
        assert!((got - 0.005).abs() < 1e-9);
    }

    #[test]
    fn anytime_telescoping_sums_to_valid_mixture() {
        let xi = Normal::new(1.0, 0.2);
        let m = anytime();
        let t = Seconds(0.1);
        // Deadline such that stage 2 is uncertain, stages 0–1 nearly sure.
        let q = expected_quality(&xi, &m, t, 2, Seconds(0.09));
        assert!(q > 0.85 && q < 0.94, "q = {q}");
        // Expectation is bounded by the extreme stage qualities.
        assert!(q >= m.fail_quality && q <= 0.94);
    }

    #[test]
    fn anytime_beats_traditional_under_high_variance() {
        // The §3.4/§3.5 argument: with a volatile environment, the anytime
        // network's early outputs floor the expectation, while a similar-
        // latency traditional DNN risks total failure.
        let t = Seconds(0.1);
        // Deadline with a little slack over the full latency: a calm
        // environment completes almost surely, a wild one does not.
        let deadline = Seconds(0.11);
        let trad_big = CandidateModel::traditional("big", 0.95, 0.005);
        let calm = Normal::new(1.0, 0.02);
        let wild = Normal::new(1.0, 0.35);
        let q_trad_calm = expected_quality(&calm, &trad_big, t, 0, deadline);
        let q_any_calm = expected_quality(&calm, &anytime(), t, 2, deadline);
        let q_trad_wild = expected_quality(&wild, &trad_big, t, 0, deadline);
        let q_any_wild = expected_quality(&wild, &anytime(), t, 2, deadline);
        // Calm: traditional's higher final quality wins or ties.
        assert!(q_trad_calm > q_any_calm - 0.01);
        // Wild: anytime wins clearly.
        assert!(
            q_any_wild > q_trad_wild + 0.05,
            "anytime {q_any_wild} vs trad {q_trad_wild}"
        );
    }

    #[test]
    fn target_stage_caps_the_staircase() {
        let xi = Normal::new(1.0, 0.01);
        let m = anytime();
        // Plenty of time, but we stop at stage 0: expected quality ≈ 0.85.
        let q = expected_quality(&xi, &m, Seconds(0.1), 0, Seconds(10.0));
        assert!((q - 0.85).abs() < 1e-6);
    }

    #[test]
    fn mean_only_ignores_variance() {
        let m = trad();
        let t = Seconds(0.1);
        let deadline = Seconds(0.105);
        // Mean latency meets the deadline → full quality, no matter σ.
        for sigma in [0.01, 0.5] {
            let xi = Normal::new(1.0, sigma);
            let q = mean_only_quality(&xi, &m, t, 0, deadline);
            assert_eq!(q, 0.95);
        }
        // Full estimator prices the risk: far below 0.95 at σ = 0.5.
        let wild = Normal::new(1.0, 0.5);
        assert!(expected_quality(&wild, &m, t, 0, deadline) < 0.6);
    }

    #[test]
    fn mean_only_staircase() {
        let m = anytime();
        let xi = Normal::new(1.0, 0.0);
        let t = Seconds(0.1);
        assert_eq!(mean_only_quality(&xi, &m, t, 2, Seconds(0.07)), 0.91);
        assert_eq!(mean_only_quality(&xi, &m, t, 2, Seconds(0.02)), 0.005);
        assert_eq!(mean_only_quality(&xi, &m, t, 2, Seconds(0.2)), 0.94);
    }

    #[test]
    #[should_panic(expected = "stage out of range")]
    fn rejects_bad_stage() {
        let xi = Normal::new(1.0, 0.1);
        let _ = expected_quality(&xi, &trad(), Seconds(0.1), 3, Seconds(0.1));
    }
}
