//! Candidate configuration tables.
//!
//! ALERT's inputs are "a set of DNN models D = {dᵢ} and a set of
//! system-resource settings expressed as different power caps P = {pⱼ}"
//! (paper §3.1), together with the offline profiles `t^prof_{i,j}` (mean
//! inference latency of model i under cap j in the nominal environment),
//! the models' qualities, and the measured run powers `p_{i,j}`.
//!
//! The controller is deliberately decoupled from how those tables are
//! produced: on real hardware they come from a profiling pass; in this
//! reproduction the simulator's deterministic latency model fills them in
//! (see `alert-sched`). Anytime DNNs additionally carry their output
//! staircase; the selection layer treats *each stage* of an anytime model
//! as a stoppable execution target.

use alert_stats::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One output point of a candidate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePoint {
    /// Cumulative fraction of the full-network latency, in `(0, 1]`.
    pub frac: f64,
    /// Quality score of this output (higher is better).
    pub quality: f64,
}

/// A candidate DNN as the controller sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateModel {
    /// Model name, used for reporting and to map selections back to
    /// executable models.
    pub name: String,
    /// Output staircase: a single `{frac: 1.0, quality}` entry for a
    /// traditional DNN, several increasing entries for an anytime DNN.
    pub stages: Vec<StagePoint>,
    /// Quality delivered when no output is ready by the deadline.
    pub fail_quality: f64,
}

impl CandidateModel {
    /// Builds a traditional (single-output) candidate.
    pub fn traditional(name: impl Into<String>, quality: f64, fail_quality: f64) -> Self {
        CandidateModel {
            name: name.into(),
            stages: vec![StagePoint { frac: 1.0, quality }],
            fail_quality,
        }
    }

    /// Builds an anytime candidate from its staircase.
    pub fn anytime(name: impl Into<String>, stages: Vec<StagePoint>, fail_quality: f64) -> Self {
        CandidateModel {
            name: name.into(),
            stages,
            fail_quality,
        }
    }

    /// `true` if the model exposes more than one output.
    pub fn is_anytime(&self) -> bool {
        self.stages.len() > 1
    }

    /// Final-output quality.
    pub fn final_quality(&self) -> f64 {
        // lint:allow(no-panic): validate() rejects empty stage lists and every construction path validates
        self.stages.last().expect("validated: non-empty").quality
    }

    /// Validates staircase invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("empty candidate name".into());
        }
        let (Some(first), Some(last)) = (self.stages.first(), self.stages.last()) else {
            return Err(format!("{}: no stages", self.name));
        };
        for w in self.stages.windows(2) {
            let [lo, hi] = w else { continue };
            if hi.frac <= lo.frac || hi.quality <= lo.quality {
                return Err(format!("{}: staircase not increasing", self.name));
            }
        }
        if (last.frac - 1.0).abs() > 1e-9 {
            return Err(format!("{}: final stage frac must be 1.0", self.name));
        }
        if first.frac <= 0.0 {
            return Err(format!("{}: first stage frac must be positive", self.name));
        }
        if self.fail_quality >= first.quality {
            return Err(format!("{}: fallback beats first output", self.name));
        }
        Ok(())
    }
}

/// A selectable execution target: model `i`, stopping after stage `k`,
/// under power setting `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// Model index into [`ConfigTable::models`].
    pub model: usize,
    /// Target stage (0-based; `stages.len() - 1` runs the full network).
    pub stage: usize,
    /// Power index into [`ConfigTable::powers`].
    pub power: usize,
}

/// The full candidate table: models × powers with profiled latency and
/// measured run power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTable {
    models: Vec<CandidateModel>,
    powers: Vec<Watts>,
    /// `t_prof[i][j]`: full-network profiled latency of model i at cap j.
    t_prof: Vec<Vec<Seconds>>,
    /// `p_run[i][j]`: measured power draw of model i running at cap j.
    p_run: Vec<Vec<Watts>>,
}

impl ConfigTable {
    /// Builds and validates a table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found — dimension
    /// mismatches, invalid candidates, or non-positive profile entries.
    /// Candidate tables are user input (profiling passes, config files),
    /// so malformed tables are a runtime condition the caller must be
    /// able to surface, not a panic.
    pub fn new(
        models: Vec<CandidateModel>,
        powers: Vec<Watts>,
        t_prof: Vec<Vec<Seconds>>,
        p_run: Vec<Vec<Watts>>,
    ) -> Result<Self, String> {
        if models.is_empty() {
            return Err("no candidate models".into());
        }
        if powers.is_empty() {
            return Err("no power settings".into());
        }
        for m in &models {
            m.validate()
                .map_err(|e| format!("invalid candidate: {e}"))?;
        }
        if t_prof.len() != models.len() {
            return Err(format!(
                "t_prof rows != models ({} vs {})",
                t_prof.len(),
                models.len()
            ));
        }
        if p_run.len() != models.len() {
            return Err(format!(
                "p_run rows != models ({} vs {})",
                p_run.len(),
                models.len()
            ));
        }
        for (i, row) in t_prof.iter().enumerate() {
            if row.len() != powers.len() {
                return Err(format!("t_prof[{i}] cols != powers"));
            }
            for (j, &t) in row.iter().enumerate() {
                if !(t.is_finite() && t.get() > 0.0) {
                    return Err(format!("t_prof[{i}][{j}] must be positive, got {t}"));
                }
            }
        }
        for (i, row) in p_run.iter().enumerate() {
            if row.len() != powers.len() {
                return Err(format!("p_run[{i}] cols != powers"));
            }
            for (j, &p) in row.iter().enumerate() {
                if !(p.is_finite() && p.get() > 0.0) {
                    return Err(format!("p_run[{i}][{j}] must be positive, got {p}"));
                }
            }
        }
        Ok(ConfigTable {
            models,
            powers,
            t_prof,
            p_run,
        })
    }

    /// The candidate models.
    pub fn models(&self) -> &[CandidateModel] {
        &self.models
    }

    /// The power settings.
    pub fn powers(&self) -> &[Watts] {
        &self.powers
    }

    /// Full-network profiled latency of model `i` at power `j`.
    pub fn t_prof(&self, i: usize, j: usize) -> Seconds {
        self.t_prof[i][j]
    }

    /// Profiled completion time of stage `k` of model `i` at power `j`.
    pub fn t_prof_stage(&self, c: Candidate) -> Seconds {
        let frac = self.models[c.model].stages[c.stage].frac;
        self.t_prof[c.model][c.power] * frac
    }

    /// Measured run power of model `i` at power `j`.
    pub fn p_run(&self, i: usize, j: usize) -> Watts {
        self.p_run[i][j]
    }

    /// The cap value of power index `j`.
    pub fn cap(&self, j: usize) -> Watts {
        self.powers[j]
    }

    /// Enumerates every `(model, stage, power)` execution target.
    pub fn candidates(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.models.iter().enumerate().flat_map(move |(i, m)| {
            (0..m.stages.len()).flat_map(move |k| {
                (0..self.powers.len()).map(move |j| Candidate {
                    model: i,
                    stage: k,
                    power: j,
                })
            })
        })
    }

    /// Total number of execution targets.
    pub fn candidate_count(&self) -> usize {
        self.models
            .iter()
            .map(|m| m.stages.len() * self.powers.len())
            .sum()
    }

    /// Index of the model with the smallest full-network latency at the
    /// highest cap (the "fastest DNN" the Sys-only baseline pins).
    pub fn fastest_model(&self) -> usize {
        let j = self.powers.len() - 1;
        (0..self.models.len())
            .min_by(|&a, &b| self.t_prof[a][j].get().total_cmp(&self.t_prof[b][j].get()))
            // lint:allow(no-panic): the model table is validated non-empty at construction
            .expect("non-empty")
    }

    /// Index of the model with the best final quality.
    pub fn most_accurate_model(&self) -> usize {
        (0..self.models.len())
            .max_by(|&a, &b| {
                self.models[a]
                    .final_quality()
                    .total_cmp(&self.models[b].final_quality())
            })
            // lint:allow(no-panic): the model table is validated non-empty at construction
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ConfigTable {
        let models = vec![
            CandidateModel::traditional("small", 0.85, 0.005),
            CandidateModel::traditional("big", 0.95, 0.005),
            CandidateModel::anytime(
                "any",
                vec![
                    StagePoint {
                        frac: 0.4,
                        quality: 0.8,
                    },
                    StagePoint {
                        frac: 1.0,
                        quality: 0.94,
                    },
                ],
                0.005,
            ),
        ];
        let powers = vec![Watts(20.0), Watts(45.0)];
        let t_prof = vec![
            vec![Seconds(0.05), Seconds(0.02)],
            vec![Seconds(0.25), Seconds(0.10)],
            vec![Seconds(0.30), Seconds(0.12)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(40.0)],
            vec![Watts(19.0), Watts(42.0)],
            vec![Watts(19.0), Watts(42.0)],
        ];
        ConfigTable::new(models, powers, t_prof, p_run).expect("valid table")
    }

    #[test]
    fn candidate_enumeration_counts_stages() {
        let t = table();
        // 1 + 1 + 2 stages, × 2 powers = 8.
        assert_eq!(t.candidate_count(), 8);
        assert_eq!(t.candidates().count(), 8);
    }

    #[test]
    fn stage_profile_scales_by_fraction() {
        let t = table();
        let c = Candidate {
            model: 2,
            stage: 0,
            power: 1,
        };
        assert!((t.t_prof_stage(c).get() - 0.4 * 0.12).abs() < 1e-15);
        let c_full = Candidate {
            model: 2,
            stage: 1,
            power: 1,
        };
        assert!((t.t_prof_stage(c_full).get() - 0.12).abs() < 1e-15);
    }

    #[test]
    fn fastest_and_most_accurate() {
        let t = table();
        assert_eq!(t.fastest_model(), 0);
        assert_eq!(t.most_accurate_model(), 1);
    }

    #[test]
    fn traditional_candidate_shape() {
        let c = CandidateModel::traditional("m", 0.9, 0.0);
        assert!(!c.is_anytime());
        assert_eq!(c.final_quality(), 0.9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_staircases() {
        let c = CandidateModel::anytime(
            "bad",
            vec![
                StagePoint {
                    frac: 0.5,
                    quality: 0.9,
                },
                StagePoint {
                    frac: 1.0,
                    quality: 0.8,
                },
            ],
            0.0,
        );
        assert!(c.validate().is_err());
        let c = CandidateModel::anytime(
            "bad2",
            vec![StagePoint {
                frac: 0.5,
                quality: 0.9,
            }],
            0.0,
        );
        assert!(c.validate().is_err());
        let c = CandidateModel::traditional("bad3", 0.5, 0.9);
        assert!(c.validate().is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("m", 0.9, 0.0)],
            vec![Watts(10.0)],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.contains("t_prof rows != models"), "{err}");
    }

    #[test]
    fn zero_latency_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("m", 0.9, 0.0)],
            vec![Watts(10.0)],
            vec![vec![Seconds(0.0)]],
            vec![vec![Watts(9.0)]],
        )
        .unwrap_err();
        assert!(err.contains("must be positive"), "{err}");
    }

    #[test]
    fn invalid_candidate_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("bad", 0.5, 0.9)],
            vec![Watts(10.0)],
            vec![vec![Seconds(0.1)]],
            vec![vec![Watts(9.0)]],
        )
        .unwrap_err();
        assert!(err.contains("invalid candidate"), "{err}");
    }
}
