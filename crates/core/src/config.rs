//! Candidate configuration tables.
//!
//! ALERT's inputs are "a set of DNN models D = {dᵢ} and a set of
//! system-resource settings expressed as different power caps P = {pⱼ}"
//! (paper §3.1), together with the offline profiles `t^prof_{i,j}` (mean
//! inference latency of model i under cap j in the nominal environment),
//! the models' qualities, and the measured run powers `p_{i,j}`.
//!
//! The controller is deliberately decoupled from how those tables are
//! produced: on real hardware they come from a profiling pass; in this
//! reproduction the simulator's deterministic latency model fills them in
//! (see `alert-sched`). Anytime DNNs additionally carry their output
//! staircase; the selection layer treats *each stage* of an anytime model
//! as a stoppable execution target.

use alert_stats::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// One output point of a candidate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePoint {
    /// Cumulative fraction of the full-network latency, in `(0, 1]`.
    pub frac: f64,
    /// Quality score of this output (higher is better).
    pub quality: f64,
}

/// A candidate DNN as the controller sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateModel {
    /// Model name, used for reporting and to map selections back to
    /// executable models.
    pub name: String,
    /// Output staircase: a single `{frac: 1.0, quality}` entry for a
    /// traditional DNN, several increasing entries for an anytime DNN.
    pub stages: Vec<StagePoint>,
    /// Quality delivered when no output is ready by the deadline.
    pub fail_quality: f64,
}

impl CandidateModel {
    /// Builds a traditional (single-output) candidate.
    pub fn traditional(name: impl Into<String>, quality: f64, fail_quality: f64) -> Self {
        CandidateModel {
            name: name.into(),
            stages: vec![StagePoint { frac: 1.0, quality }],
            fail_quality,
        }
    }

    /// Builds an anytime candidate from its staircase.
    pub fn anytime(name: impl Into<String>, stages: Vec<StagePoint>, fail_quality: f64) -> Self {
        CandidateModel {
            name: name.into(),
            stages,
            fail_quality,
        }
    }

    /// `true` if the model exposes more than one output.
    pub fn is_anytime(&self) -> bool {
        self.stages.len() > 1
    }

    /// Final-output quality.
    pub fn final_quality(&self) -> f64 {
        // lint:allow(no-panic): validate() rejects empty stage lists and every construction path validates
        self.stages.last().expect("validated: non-empty").quality
    }

    /// Validates staircase invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("empty candidate name".into());
        }
        let (Some(first), Some(last)) = (self.stages.first(), self.stages.last()) else {
            return Err(format!("{}: no stages", self.name));
        };
        for w in self.stages.windows(2) {
            let [lo, hi] = w else { continue };
            if hi.frac <= lo.frac || hi.quality <= lo.quality {
                return Err(format!("{}: staircase not increasing", self.name));
            }
        }
        if (last.frac - 1.0).abs() > 1e-9 {
            return Err(format!("{}: final stage frac must be 1.0", self.name));
        }
        if first.frac <= 0.0 {
            return Err(format!("{}: first stage frac must be positive", self.name));
        }
        if self.fail_quality >= first.quality {
            return Err(format!("{}: fallback beats first output", self.name));
        }
        Ok(())
    }
}

/// A selectable execution target: on device `d`, model `i`, stopping
/// after stage `k`, under that device's power setting `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// Device index into the table's device axis. Defaults to `0` (the
    /// single-CPU config space of the pre-placement format).
    #[serde(default)]
    pub device: usize,
    /// Model index into [`ConfigTable::models`].
    pub model: usize,
    /// Target stage (0-based; `stages.len() - 1` runs the full network).
    pub stage: usize,
    /// Power index into the device's power axis
    /// ([`ConfigTable::powers_on`]).
    pub power: usize,
}

/// One device's slice of the config space: its own power-setting axis
/// (RAPL caps on CPUs, clock-table levels on the GPU) and the per-model
/// profiled grids at those settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DeviceGrid {
    /// Human-readable device label ("CPU2", "GPU", …).
    label: String,
    powers: Vec<Watts>,
    /// `t_prof[i][j]`: full-network profiled latency of model i at cap j.
    t_prof: Vec<Vec<Seconds>>,
    /// `p_run[i][j]`: measured power draw of model i running at cap j.
    p_run: Vec<Vec<Watts>>,
}

/// The full candidate table: device × model × power with profiled
/// latency and measured run power per device grid. A single-device
/// table (built by [`ConfigTable::new`]) is exactly the paper's
/// models × powers space; [`ConfigTable::add_device`] extends the same
/// model set onto further backends for heterogeneous placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTable {
    models: Vec<CandidateModel>,
    devices: Vec<DeviceGrid>,
}

fn validate_grid(
    models: &[CandidateModel],
    powers: &[Watts],
    t_prof: &[Vec<Seconds>],
    p_run: &[Vec<Watts>],
) -> Result<(), String> {
    if powers.is_empty() {
        return Err("no power settings".into());
    }
    if t_prof.len() != models.len() {
        return Err(format!(
            "t_prof rows != models ({} vs {})",
            t_prof.len(),
            models.len()
        ));
    }
    if p_run.len() != models.len() {
        return Err(format!(
            "p_run rows != models ({} vs {})",
            p_run.len(),
            models.len()
        ));
    }
    for (i, row) in t_prof.iter().enumerate() {
        if row.len() != powers.len() {
            return Err(format!("t_prof[{i}] cols != powers"));
        }
        for (j, &t) in row.iter().enumerate() {
            if !(t.is_finite() && t.get() > 0.0) {
                return Err(format!("t_prof[{i}][{j}] must be positive, got {t}"));
            }
        }
    }
    for (i, row) in p_run.iter().enumerate() {
        if row.len() != powers.len() {
            return Err(format!("p_run[{i}] cols != powers"));
        }
        for (j, &p) in row.iter().enumerate() {
            if !(p.is_finite() && p.get() > 0.0) {
                return Err(format!("p_run[{i}][{j}] must be positive, got {p}"));
            }
        }
    }
    Ok(())
}

impl ConfigTable {
    /// Builds and validates a table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found — dimension
    /// mismatches, invalid candidates, or non-positive profile entries.
    /// Candidate tables are user input (profiling passes, config files),
    /// so malformed tables are a runtime condition the caller must be
    /// able to surface, not a panic.
    pub fn new(
        models: Vec<CandidateModel>,
        powers: Vec<Watts>,
        t_prof: Vec<Vec<Seconds>>,
        p_run: Vec<Vec<Watts>>,
    ) -> Result<Self, String> {
        if models.is_empty() {
            return Err("no candidate models".into());
        }
        for m in &models {
            m.validate()
                .map_err(|e| format!("invalid candidate: {e}"))?;
        }
        validate_grid(&models, &powers, &t_prof, &p_run)?;
        Ok(ConfigTable {
            models,
            devices: vec![DeviceGrid {
                label: "CPU".to_string(),
                powers,
                t_prof,
                p_run,
            }],
        })
    }

    /// Extends the config space with another device's grid over the same
    /// model set, returning the new device index.
    ///
    /// # Errors
    ///
    /// The same dimension/positivity problems [`ConfigTable::new`]
    /// rejects, prefixed with the device label.
    pub fn add_device(
        &mut self,
        label: impl Into<String>,
        powers: Vec<Watts>,
        t_prof: Vec<Vec<Seconds>>,
        p_run: Vec<Vec<Watts>>,
    ) -> Result<usize, String> {
        let label = label.into();
        validate_grid(&self.models, &powers, &t_prof, &p_run)
            .map_err(|e| format!("device {label}: {e}"))?;
        self.devices.push(DeviceGrid {
            label,
            powers,
            t_prof,
            p_run,
        });
        Ok(self.devices.len() - 1)
    }

    /// Renames device 0 (the [`ConfigTable::new`] grid, labeled "CPU" by
    /// default).
    pub fn set_device_label(&mut self, device: usize, label: impl Into<String>) {
        self.devices[device].label = label.into();
    }

    /// The candidate models.
    pub fn models(&self) -> &[CandidateModel] {
        &self.models
    }

    /// Number of devices in the config space.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Human-readable label of device `d`.
    pub fn device_label(&self, d: usize) -> &str {
        &self.devices[d].label
    }

    /// Device 0's grid — the single-device view the pre-placement code
    /// paths use.
    fn primary(&self) -> &DeviceGrid {
        // lint:allow(no-panic): every constructor installs device 0 and devices only grow
        &self.devices[0]
    }

    /// The power settings of device 0 (the single-device view the
    /// pre-placement code paths use).
    pub fn powers(&self) -> &[Watts] {
        &self.primary().powers
    }

    /// The power settings of device `d`.
    pub fn powers_on(&self, d: usize) -> &[Watts] {
        &self.devices[d].powers
    }

    /// Full-network profiled latency of model `i` at power `j` on
    /// device 0.
    pub fn t_prof(&self, i: usize, j: usize) -> Seconds {
        self.primary().t_prof[i][j]
    }

    /// Full-network profiled latency of model `i` at power `j` on
    /// device `d`.
    pub fn t_prof_on(&self, d: usize, i: usize, j: usize) -> Seconds {
        self.devices[d].t_prof[i][j]
    }

    /// Profiled completion time of the candidate's target stage on its
    /// device.
    pub fn t_prof_stage(&self, c: Candidate) -> Seconds {
        let frac = self.models[c.model].stages[c.stage].frac;
        self.devices[c.device].t_prof[c.model][c.power] * frac
    }

    /// Measured run power of model `i` at power `j` on device 0.
    pub fn p_run(&self, i: usize, j: usize) -> Watts {
        self.primary().p_run[i][j]
    }

    /// Measured run power of model `i` at power `j` on device `d`.
    pub fn p_run_on(&self, d: usize, i: usize, j: usize) -> Watts {
        self.devices[d].p_run[i][j]
    }

    /// The cap value of power index `j` on device 0.
    pub fn cap(&self, j: usize) -> Watts {
        self.primary().powers[j]
    }

    /// The cap value of power index `j` on device `d`.
    pub fn cap_on(&self, d: usize, j: usize) -> Watts {
        self.devices[d].powers[j]
    }

    /// Enumerates every `(device, model, stage, power)` execution target,
    /// device-major; within one device the order is exactly the
    /// pre-placement model → stage → power enumeration, so single-device
    /// tables keep the historical candidate order bit-for-bit.
    pub fn candidates(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.devices.iter().enumerate().flat_map(move |(d, dev)| {
            let n_powers = dev.powers.len();
            self.models.iter().enumerate().flat_map(move |(i, m)| {
                (0..m.stages.len()).flat_map(move |k| {
                    (0..n_powers).map(move |j| Candidate {
                        device: d,
                        model: i,
                        stage: k,
                        power: j,
                    })
                })
            })
        })
    }

    /// Total number of execution targets across all devices.
    pub fn candidate_count(&self) -> usize {
        let stages: usize = self.models.iter().map(|m| m.stages.len()).sum();
        self.devices
            .iter()
            .map(|dev| stages * dev.powers.len())
            .sum()
    }

    /// Index of the model with the smallest full-network latency at the
    /// highest cap on device 0 (the "fastest DNN" the Sys-only baseline
    /// pins).
    pub fn fastest_model(&self) -> usize {
        self.fastest_model_on(0)
    }

    /// Index of the model with the smallest full-network latency at
    /// device `d`'s highest cap.
    pub fn fastest_model_on(&self, d: usize) -> usize {
        let grid = &self.devices[d];
        let j = grid.powers.len() - 1;
        (0..self.models.len())
            .min_by(|&a, &b| grid.t_prof[a][j].get().total_cmp(&grid.t_prof[b][j].get()))
            // lint:allow(no-panic): the model table is validated non-empty at construction
            .expect("non-empty")
    }

    /// The `(device, model)` pair with the smallest full-network latency,
    /// each device judged at its own highest cap — where a
    /// latency-obsessed baseline pins a heterogeneous node. Ties resolve
    /// to the lower device index (device 0 for single-device tables, so
    /// this degenerates to [`ConfigTable::fastest_model`]).
    pub fn fastest_placement(&self) -> (usize, usize) {
        let mut best = (0, self.fastest_model_on(0));
        let primary = self.primary();
        let mut best_t = primary.t_prof[best.1][primary.powers.len() - 1];
        for d in 1..self.devices.len() {
            let m = self.fastest_model_on(d);
            let t = self.devices[d].t_prof[m][self.devices[d].powers.len() - 1];
            if t.get() < best_t.get() {
                best = (d, m);
                best_t = t;
            }
        }
        best
    }

    /// Index of the model with the best final quality.
    pub fn most_accurate_model(&self) -> usize {
        (0..self.models.len())
            .max_by(|&a, &b| {
                self.models[a]
                    .final_quality()
                    .total_cmp(&self.models[b].final_quality())
            })
            // lint:allow(no-panic): the model table is validated non-empty at construction
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ConfigTable {
        let models = vec![
            CandidateModel::traditional("small", 0.85, 0.005),
            CandidateModel::traditional("big", 0.95, 0.005),
            CandidateModel::anytime(
                "any",
                vec![
                    StagePoint {
                        frac: 0.4,
                        quality: 0.8,
                    },
                    StagePoint {
                        frac: 1.0,
                        quality: 0.94,
                    },
                ],
                0.005,
            ),
        ];
        let powers = vec![Watts(20.0), Watts(45.0)];
        let t_prof = vec![
            vec![Seconds(0.05), Seconds(0.02)],
            vec![Seconds(0.25), Seconds(0.10)],
            vec![Seconds(0.30), Seconds(0.12)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(40.0)],
            vec![Watts(19.0), Watts(42.0)],
            vec![Watts(19.0), Watts(42.0)],
        ];
        ConfigTable::new(models, powers, t_prof, p_run).expect("valid table")
    }

    #[test]
    fn candidate_enumeration_counts_stages() {
        let t = table();
        // 1 + 1 + 2 stages, × 2 powers = 8.
        assert_eq!(t.candidate_count(), 8);
        assert_eq!(t.candidates().count(), 8);
    }

    #[test]
    fn stage_profile_scales_by_fraction() {
        let t = table();
        let c = Candidate {
            device: 0,
            model: 2,
            stage: 0,
            power: 1,
        };
        assert!((t.t_prof_stage(c).get() - 0.4 * 0.12).abs() < 1e-15);
        let c_full = Candidate {
            device: 0,
            model: 2,
            stage: 1,
            power: 1,
        };
        assert!((t.t_prof_stage(c_full).get() - 0.12).abs() < 1e-15);
    }

    #[test]
    fn fastest_and_most_accurate() {
        let t = table();
        assert_eq!(t.fastest_model(), 0);
        assert_eq!(t.most_accurate_model(), 1);
    }

    #[test]
    fn traditional_candidate_shape() {
        let c = CandidateModel::traditional("m", 0.9, 0.0);
        assert!(!c.is_anytime());
        assert_eq!(c.final_quality(), 0.9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_staircases() {
        let c = CandidateModel::anytime(
            "bad",
            vec![
                StagePoint {
                    frac: 0.5,
                    quality: 0.9,
                },
                StagePoint {
                    frac: 1.0,
                    quality: 0.8,
                },
            ],
            0.0,
        );
        assert!(c.validate().is_err());
        let c = CandidateModel::anytime(
            "bad2",
            vec![StagePoint {
                frac: 0.5,
                quality: 0.9,
            }],
            0.0,
        );
        assert!(c.validate().is_err());
        let c = CandidateModel::traditional("bad3", 0.5, 0.9);
        assert!(c.validate().is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("m", 0.9, 0.0)],
            vec![Watts(10.0)],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.contains("t_prof rows != models"), "{err}");
    }

    #[test]
    fn zero_latency_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("m", 0.9, 0.0)],
            vec![Watts(10.0)],
            vec![vec![Seconds(0.0)]],
            vec![vec![Watts(9.0)]],
        )
        .unwrap_err();
        assert!(err.contains("must be positive"), "{err}");
    }

    #[test]
    fn add_device_extends_the_candidate_space_device_major() {
        let mut t = table();
        assert_eq!(t.device_count(), 1);
        let cpu_candidates: Vec<Candidate> = t.candidates().collect();
        let gpu = t
            .add_device(
                "GPU",
                vec![Watts(100.0), Watts(160.0), Watts(215.0)],
                vec![
                    vec![Seconds(0.006), Seconds(0.004), Seconds(0.003)],
                    vec![Seconds(0.030), Seconds(0.020), Seconds(0.015)],
                    vec![Seconds(0.036), Seconds(0.024), Seconds(0.018)],
                ],
                vec![
                    vec![Watts(95.0), Watts(150.0), Watts(200.0)],
                    vec![Watts(98.0), Watts(155.0), Watts(205.0)],
                    vec![Watts(98.0), Watts(155.0), Watts(205.0)],
                ],
            )
            .expect("valid grid");
        assert_eq!(gpu, 1);
        assert_eq!(t.device_count(), 2);
        assert_eq!(t.device_label(1), "GPU");
        // 4 stage-rows × (2 CPU + 3 GPU powers) = 20.
        assert_eq!(t.candidate_count(), 20);
        let all: Vec<Candidate> = t.candidates().collect();
        // Device-major: the CPU block is bit-identical to the
        // single-device enumeration, the GPU block follows.
        assert_eq!(&all[..cpu_candidates.len()], &cpu_candidates[..]);
        assert!(all[cpu_candidates.len()..].iter().all(|c| c.device == 1));
        // Per-device accessors hit the right grid.
        assert_eq!(t.cap_on(1, 2), Watts(215.0));
        assert_eq!(t.t_prof_on(1, 0, 0), Seconds(0.006));
        let c = Candidate {
            device: 1,
            model: 2,
            stage: 0,
            power: 2,
        };
        assert!((t.t_prof_stage(c).get() - 0.4 * 0.018).abs() < 1e-15);
        // The GPU hosts the fastest placement of the node.
        assert_eq!(t.fastest_placement(), (1, 0));
    }

    #[test]
    fn add_device_rejects_mismatched_grids() {
        let mut t = table();
        let err = t
            .add_device("GPU", vec![Watts(100.0)], vec![], vec![])
            .unwrap_err();
        assert!(err.contains("device GPU"), "{err}");
        assert!(err.contains("t_prof rows != models"), "{err}");
        assert_eq!(t.device_count(), 1, "failed add must not mutate");
    }

    #[test]
    fn invalid_candidate_is_rejected() {
        let err = ConfigTable::new(
            vec![CandidateModel::traditional("bad", 0.5, 0.9)],
            vec![Watts(10.0)],
            vec![vec![Seconds(0.1)]],
            vec![vec![Watts(9.0)]],
        )
        .unwrap_err();
        assert!(err.contains("invalid candidate"), "{err}");
    }
}
