//! The selection fast lane: SoA candidate precomputation, dominated-
//! candidate pruning, and the belief-banded decision cache.
//!
//! ALERT re-enumerates every `(device, model, stage, power)` execution
//! target per input (§3.2 step 4, with the device axis collapsing on
//! single-platform tables), and in this runtime that enumeration *is* the
//! throughput ceiling — the per-decision cost is almost entirely CDF and
//! inverse-CDF evaluations plus table chasing. This module rebuilds the
//! hot path in three stages, each **provably selection-identical** to the
//! reference enumeration in [`crate::select::select_with_period`]:
//!
//! 1. **Static precomputation** ([`CandidateLane`]) — per-candidate
//!    profile terms (`t^prof` stage latencies, run power, cap, staircase,
//!    quality guard) are flattened at construction into a cache-friendly
//!    structure-of-arrays, so a decision does no nested-`Vec` chasing.
//!    Stage-completion probabilities are *memoized per decision* across
//!    sibling candidates (the stage-`k` target probability of `(i, k, j)`
//!    is the same number as stage `k` of `(i, k+1, j)`'s staircase), and
//!    the `Φ⁻¹(Pr_th)` of the Eq. 12 energy bound — constant across
//!    candidates — is hoisted out of the loop
//!    ([`crate::latency::percentile_latency_with_z`]). Every reused value
//!    is produced by the *same* floating-point expression as the
//!    reference path, so sharing cannot change a bit.
//! 2. **Dominated-candidate pruning** — at build, candidates that can
//!    never win *any* of the three §4 competitions under *any* belief ξ,
//!    idle ratio φ ∈ [0, 1], period, or goal of the active family are
//!    dropped: the **saturation duplicates** real profiling tables carry
//!    (discrete GPU clock levels, power-starved plateaus — extra cap
//!    that buys no latency). A candidate `c` is pruned only when an
//!    earlier-enumerated `d` has a *bit-identical* latency chain (same
//!    staircase with bit-equal full-network latency, or an identical
//!    traditional model with bit-equal stage latency) and weakly lower
//!    run power *and* cap. Every latency-driven estimate is then
//!    bit-equal between the two — ties resolve to the earlier `d` — and
//!    the energies are round-monotone in `(p_run, cap)`, so even the
//!    *computed* f64 estimates of `d` tie-or-beat `c` in all three
//!    competitions and the winner (and its recorded [`Estimates`]) is
//!    unchanged (see [`dominates`] and DESIGN.md §6 for why anything
//!    weaker is unsound at the bit level). The 2-D Pareto frontier from
//!    [`alert_stats::hull`] over (latency, run energy) shortlists the
//!    group members that can possibly be dominated. The filter is only
//!    *applied* when the decision inputs are inside the proven envelope
//!    (`ξ̄ ≥ 0`, `φ ∈ [0, 1]`, `Pr_th ≥ ½`, so every exec-time
//!    multiplier is non-negative); otherwise the lane quietly evaluates
//!    the full set.
//! 3. **Belief-banded decision cache** ([`DecisionCache`]) — the decision
//!    inputs (ξ mean, ξ std, idle ratio, effective deadline, period,
//!    goal, mode) are quantized into a [`BeliefBand`]; while consecutive
//!    decisions stay inside the band that produced the last selection
//!    *and* the inputs revalidate exactly, enumeration is skipped and the
//!    cached [`Selection`] is returned. Selection is a pure function of
//!    those inputs, so an exact-revalidation hit **cannot** diverge from
//!    enumeration — the band is the invalidation granularity (band exit
//!    evicts), not a tolerance for reuse. Goal changes, `begin_group`,
//!    `restore`, and `reset` invalidate eagerly.
//!
//! `tests/fast_lane.rs` proves bit-identity of the whole lane against the
//! reference enumeration over randomized tables, beliefs, goals, group
//! boundaries, and snapshot/restore cuts; the `runtime` benchmark
//! re-asserts cached-vs-enumerated equality on every run.

use crate::alert::ProbabilityMode;
use crate::config::{Candidate, ConfigTable, StagePoint};
use crate::goal::{Goal, Objective};
use crate::select::{
    Estimates, SelectionAccumulator, ENERGY_GUARD_PERCENTILE, QUALITY_GUARD_FRACTION,
};
use crate::Selection;
use alert_stats::hull::{pareto_frontier, Point2};
use alert_stats::normal::{inv_phi, Normal};
use alert_stats::units::{Seconds, Watts};

/// One flattened execution target.
#[derive(Debug, Clone, Copy)]
struct LaneEntry {
    cand: Candidate,
    /// Profiled completion time of the target stage (`t^prof · frac_k`).
    t_stage: Seconds,
    p_run: Watts,
    cap: Watts,
    is_anytime: bool,
    fail_quality: f64,
    /// Final-output quality (dominance comparability check).
    top_quality: f64,
    /// Precomputed [`QUALITY_GUARD_FRACTION`] span margin.
    guard: f64,
    /// First probability-memo slot of this candidate's `(model, power)`
    /// block; the block holds one slot per staircase stage.
    slot_base: u32,
}

/// The static fast-lane tables. Built once per controller from a
/// [`ConfigTable`]; immutable afterwards (per-decision mutable state
/// lives in [`LaneScratch`]).
#[derive(Debug, Clone)]
pub struct CandidateLane {
    /// Every execution target, in exact table-enumeration order.
    entries: Vec<LaneEntry>,
    /// Indices into `entries` that survived dominance pruning, ascending.
    live: Vec<u32>,
    /// Stage-latency arena: per `(model, power)` block, the profiled
    /// completion time of every staircase stage (`t^prof_{i,j} · frac_s`,
    /// the exact product the reference path computes).
    stage_lat: Vec<Seconds>,
    /// Stage points aligned with `stage_lat`.
    stage_points: Vec<StagePoint>,
    /// Longest staircase (sizes the quality scratch buffer).
    max_stages: usize,
}

/// Reusable per-decision mutable state: the stage-probability memo and
/// the quality staging buffer. Owned by the controller so decisions
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct LaneScratch {
    probs: Vec<f64>,
    stamp: Vec<u64>,
    generation: u64,
    quality_buf: Vec<f64>,
}

impl LaneScratch {
    /// Scratch sized for `lane`.
    pub fn for_lane(lane: &CandidateLane) -> Self {
        LaneScratch {
            probs: vec![0.0; lane.stage_lat.len()],
            stamp: vec![0; lane.stage_lat.len()],
            generation: 0,
            quality_buf: vec![0.0; lane.max_stages],
        }
    }
}

impl CandidateLane {
    /// Flattens and prunes a candidate table.
    pub fn build(table: &ConfigTable) -> Self {
        let models = table.models();

        // Arena layout: (device, model, power)-major blocks of staircase
        // slots — device-major like the enumeration, so single-device
        // tables keep the historical layout bit-for-bit.
        let mut stage_lat = Vec::new();
        let mut stage_points = Vec::new();
        let mut slot_base: Vec<Vec<Vec<u32>>> = (0..table.device_count())
            .map(|d| vec![vec![0u32; table.powers_on(d).len()]; models.len()])
            .collect();
        for (d, per_model) in slot_base.iter_mut().enumerate() {
            for (i, m) in models.iter().enumerate() {
                for (j, base) in per_model[i].iter_mut().enumerate() {
                    *base = stage_lat.len() as u32;
                    let t_full = table.t_prof_on(d, i, j);
                    for s in &m.stages {
                        // The exact product `t_prof_stage` computes.
                        stage_lat.push(t_full * s.frac);
                        stage_points.push(*s);
                    }
                }
            }
        }

        // Entries in exact enumeration order (device → model → stage →
        // power).
        let mut entries = Vec::with_capacity(table.candidate_count());
        let mut t_full_of = Vec::with_capacity(table.candidate_count());
        for c in table.candidates() {
            let m = &models[c.model];
            let base = slot_base[c.device][c.model][c.power];
            entries.push(LaneEntry {
                cand: c,
                t_stage: stage_lat[base as usize + c.stage],
                p_run: table.p_run_on(c.device, c.model, c.power),
                cap: table.cap_on(c.device, c.power),
                is_anytime: m.is_anytime(),
                fail_quality: m.fail_quality,
                top_quality: m.final_quality(),
                guard: QUALITY_GUARD_FRACTION * (m.final_quality() - m.fail_quality),
                slot_base: base,
            });
            t_full_of.push(table.t_prof_on(c.device, c.model, c.power));
        }

        let live = prune(&entries, &t_full_of);
        let max_stages = models.iter().map(|m| m.stages.len()).max().unwrap_or(1);
        CandidateLane {
            entries,
            live,
            stage_lat,
            stage_points,
            max_stages,
        }
    }

    /// Total execution targets (pruned or not).
    pub fn candidate_count(&self) -> usize {
        self.entries.len()
    }

    /// Targets that survived dominance pruning.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Targets dropped as dominated.
    pub fn pruned_count(&self) -> usize {
        self.entries.len() - self.live.len()
    }

    /// Fast-lane counterpart of [`crate::select::select_with_period`]:
    /// same inputs, same output, bit for bit — enumeration runs over the
    /// pruned set (when the inputs are inside the pruning envelope) with
    /// memoized stage probabilities and a hoisted `Φ⁻¹`.
    ///
    /// # Errors
    ///
    /// Exactly the reference path's errors: goal-validation failure, or
    /// an empty candidate set.
    pub fn select_with_period(
        &self,
        scratch: &mut LaneScratch,
        xi: &Normal,
        idle_ratio: f64,
        goal: &Goal,
        period: Seconds,
        mode: ProbabilityMode,
    ) -> Result<Selection, String> {
        goal.validate().map_err(|e| format!("invalid goal: {e}"))?;

        // The dominance argument assumes non-negative effective latency
        // multipliers (ξ̄ ≥ 0 and, for the Eq. 12 bound, Φ⁻¹(Pr_th) ≥ 0)
        // and a physical idle ratio/period. Outside that envelope —
        // never reached by the estimators, but reachable through
        // hand-built snapshots — fall back to the full set.
        let pruning_sound = xi.mean() >= 0.0
            && (0.0..=1.0).contains(&idle_ratio)
            && period.is_finite()
            && period.get() >= 0.0
            && (mode == ProbabilityMode::MeanOnly
                // lint:allow(nan-unsafe-compare): exact zero-variance sentinel; a NaN std_dev fails the comparison and falls through to the sound full-set path
                || xi.std_dev() == 0.0
                || goal.prob_threshold.is_none_or(|p| p >= 0.5));

        // Hoist the Eq. 12 standard-normal quantile: constant across
        // candidates within one decision.
        let z_bound = match mode {
            ProbabilityMode::Full if xi.std_dev() > 0.0 => Some(inv_phi(
                goal.prob_threshold.unwrap_or(ENERGY_GUARD_PERCENTILE),
            )),
            _ => None,
        };

        scratch.generation = scratch.generation.wrapping_add(1);
        let LaneScratch {
            probs,
            stamp,
            generation,
            quality_buf,
        } = scratch;

        let mut acc = SelectionAccumulator::new();
        let mut offer = |e: &LaneEntry| {
            let est = self.evaluate_entry(
                e,
                probs,
                stamp,
                *generation,
                quality_buf,
                xi,
                idle_ratio,
                goal,
                period,
                mode,
                z_bound,
            );
            acc.consider(e.cand, est, e.is_anytime, e.guard, goal);
        };
        if pruning_sound {
            for &k in &self.live {
                offer(&self.entries[k as usize]);
            }
        } else {
            for e in &self.entries {
                offer(e);
            }
        }
        acc.finish(goal)
    }

    /// Per-candidate estimates, arithmetically identical to
    /// [`crate::select::evaluate`] (same leaf functions, same operand
    /// order), with stage probabilities memoized across candidates.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_entry(
        &self,
        e: &LaneEntry,
        probs: &mut [f64],
        stamp: &mut [u64],
        generation: u64,
        quality_buf: &mut [f64],
        xi: &Normal,
        idle_ratio: f64,
        goal: &Goal,
        period: Seconds,
        mode: ProbabilityMode,
        z_bound: Option<f64>,
    ) -> Estimates {
        let deadline = goal.deadline;
        let base = e.slot_base as usize;
        let n_stages = e.cand.stage + 1;

        let mean_latency = crate::latency::predict_mean(xi, e.t_stage);
        let pr_deadline = match mode {
            ProbabilityMode::Full => slot_prob(
                &self.stage_lat,
                probs,
                stamp,
                generation,
                base + e.cand.stage,
                xi,
                deadline,
            ),
            ProbabilityMode::MeanOnly => {
                if mean_latency.get() <= deadline.get() {
                    1.0
                } else {
                    0.0
                }
            }
        };
        let expected_quality = match mode {
            ProbabilityMode::Full => {
                for (s, q) in quality_buf.iter_mut().enumerate().take(n_stages) {
                    *q = slot_prob(
                        &self.stage_lat,
                        probs,
                        stamp,
                        generation,
                        base + s,
                        xi,
                        deadline,
                    );
                }
                crate::quality::expected_quality_from_probs(
                    &self.stage_points[base..base + n_stages],
                    e.fail_quality,
                    &mut quality_buf[..n_stages],
                )
            }
            ProbabilityMode::MeanOnly => crate::quality::mean_only_quality_over(
                self.stage_lat[base..base + n_stages]
                    .iter()
                    .zip(&self.stage_points[base..base + n_stages])
                    .map(|(&t, s)| (t, s.quality)),
                e.fail_quality,
                xi.mean(),
                deadline,
            ),
        };
        let energy =
            crate::energy::estimate_energy(xi, e.t_stage, e.p_run, e.cap, idle_ratio, period);
        let energy_bound = match z_bound {
            Some(z) => {
                let t_pct = crate::latency::percentile_latency_with_z(xi, e.t_stage, z);
                crate::energy::estimate_energy_at(t_pct, e.p_run, e.cap, idle_ratio, period)
            }
            None => energy,
        };
        Estimates {
            mean_latency,
            pr_deadline,
            expected_quality,
            energy,
            energy_bound,
        }
    }
}

/// Lazily computed, per-decision-memoized stage-completion probability
/// (paper Eq. 6) for one arena slot.
fn slot_prob(
    stage_lat: &[Seconds],
    probs: &mut [f64],
    stamp: &mut [u64],
    generation: u64,
    slot: usize,
    xi: &Normal,
    deadline: Seconds,
) -> f64 {
    if stamp[slot] != generation {
        probs[slot] = crate::latency::deadline_probability(xi, stage_lat[slot], deadline);
        stamp[slot] = generation;
    }
    probs[slot]
}

/// The dominance filter. Returns the surviving entry indices, ascending.
///
/// A candidate is checked only against earlier *survivors* (the dominance
/// relation is transitive, so this loses nothing), and the per-(model,
/// stage) 2-D Pareto frontier over `(t_stage, p_run·t_stage)` shortlists
/// the members that can possibly be group-dominated: frontier members
/// have no weak dominator in those two axes, which the full condition
/// requires.
fn prune(entries: &[LaneEntry], t_full_of: &[Seconds]) -> Vec<u32> {
    // Group candidates by (device, model, stage) and mark off-frontier
    // members. The device belongs in the key: dominance only compares
    // within one device's latency chain, so a GPU clock level can never
    // prune a CPU cap (their profiled latencies come from different
    // grids and the realized environments differ per device).
    let mut group_prunable = vec![false; entries.len()];
    let mut groups: std::collections::BTreeMap<(usize, usize, usize), Vec<usize>> =
        std::collections::BTreeMap::new();
    for (idx, e) in entries.iter().enumerate() {
        groups
            .entry((e.cand.device, e.cand.model, e.cand.stage))
            .or_default()
            .push(idx);
    }
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let pts: Vec<Point2> = members
            .iter()
            .map(|&idx| {
                let e = &entries[idx];
                Point2::new(e.t_stage.get(), e.p_run.get() * e.t_stage.get(), idx)
            })
            .collect();
        let frontier: std::collections::BTreeSet<usize> =
            pareto_frontier(&pts).iter().map(|p| p.idx).collect();
        for &idx in members {
            if !frontier.contains(&idx) {
                group_prunable[idx] = true;
            }
        }
    }

    let mut live: Vec<u32> = Vec::with_capacity(entries.len());
    for (idx, c) in entries.iter().enumerate() {
        let dominated = live.iter().any(|&d_idx| {
            dominates(
                &entries[d_idx as usize],
                c,
                t_full_of[d_idx as usize],
                t_full_of[idx],
                group_prunable[idx],
            )
        });
        if !dominated {
            live.push(idx as u32);
        }
    }
    live
}

/// Whether earlier-enumerated `d` dominates `c` under every belief, idle
/// ratio, period, and goal of the supported envelope — at the level of
/// the **computed f64 estimates**, not just their real-number values.
///
/// The argument has two halves (DESIGN.md §6):
///
/// * The latency inputs of every estimate chain must be **bit-identical**
///   between `d` and `c` (same-staircase pair with bit-equal full-network
///   latency, or identical traditional models with bit-equal stage
///   latency). Then the mean latency, completion probabilities, expected
///   quality, and the percentile exec time are computed from identical
///   operands and are bit-equal — ties, which every competition resolves
///   toward the earlier candidate, i.e. `d`.
/// * The remaining estimates (Eq. 9/12 energies) are then round-monotone
///   in the only differing operands: `e = p_run·t_exec + (cap·φ)·idle`
///   with `t_exec ≥ 0`, `idle`, and `φ` identical, so `p_d ≤ p_c` and
///   `cap_d ≤ cap_c` order the *computed* sums (f64 rounding is a
///   monotone function; products and sums of ordered non-negative terms
///   stay ordered).
///
/// Anything weaker — e.g. strict real-number dominance with a safety
/// margin — is NOT sound at the bit level: the reference path factors
/// its arithmetic differently per candidate, and for zero-real-slack
/// ties (or tiny multipliers `m` against large idle terms) an ulp of
/// rounding could flip a comparison and let a pruned candidate win the
/// full enumeration. We therefore prune exact saturation duplicates
/// only.
fn dominates(
    d: &LaneEntry,
    c: &LaneEntry,
    d_t_full: Seconds,
    c_t_full: Seconds,
    c_group_prunable: bool,
) -> bool {
    // Placement is part of a candidate's identity: a dominator must live
    // on the same device, because the scheduler executes the winner there
    // and the realized latency/energy depend on the device even when the
    // profiled numbers coincide.
    if d.cand.device != c.cand.device {
        return false;
    }
    let same_group = d.cand.model == c.cand.model && d.cand.stage == c.cand.stage;
    if same_group {
        if !c_group_prunable {
            return false;
        }
        // Same staircase: bit-equal full-network latency makes every
        // per-stage product `t_full · frac_s` — and with it the whole
        // probability/quality chain — bit-equal.
        if d_t_full.get().to_bits() != c_t_full.get().to_bits() {
            return false;
        }
    } else {
        // Cross-model pruning is restricted to traditional models with
        // *identical* staircases (quality, fallback) and a bit-equal
        // stage latency: their estimates then agree everywhere except
        // the energy terms, which (p_run, cap) order below.
        if d.is_anytime
            || c.is_anytime
            || d.top_quality != c.top_quality
            || d.fail_quality != c.fail_quality
            || d.t_stage.get().to_bits() != c.t_stage.get().to_bits()
        {
            return false;
        }
    }
    // Identical latency chains established; energy is round-monotone in
    // the run power and the cap (the idle window and `t_exec` are
    // bit-equal, and non-negative under the pruning envelope).
    d.p_run.get() <= c.p_run.get() && d.cap.get() <= c.cap.get()
}

/// Quantized decision-input coordinates: the invalidation granularity of
/// the [`DecisionCache`]. Two decisions in different bands never share a
/// cache entry; two decisions in the same band still revalidate exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeliefBand {
    mean: i64,
    std: i64,
    idle: i64,
    deadline: i64,
}

/// Band widths: ξ mean/σ at 0.5 %, idle ratio at 1 %, deadline at 100 µs.
const MEAN_BAND: f64 = 0.005;
const STD_BAND: f64 = 0.005;
const IDLE_BAND: f64 = 0.01;
const DEADLINE_BAND: f64 = 1e-4;

impl BeliefBand {
    /// Quantizes the belief coordinates.
    pub fn quantize(xi_mean: f64, xi_std: f64, idle_ratio: f64, deadline: Seconds) -> Self {
        BeliefBand {
            mean: (xi_mean / MEAN_BAND).floor() as i64,
            std: (xi_std / STD_BAND).floor() as i64,
            idle: (idle_ratio / IDLE_BAND).floor() as i64,
            deadline: (deadline.get() / DEADLINE_BAND).floor() as i64,
        }
    }
}

/// The exact decision inputs, compared bit-for-bit on revalidation. A
/// hit therefore replays a pure function at identical inputs — the
/// mechanism by which cached selections *cannot* diverge from
/// enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionKey {
    xi_mean: u64,
    xi_std: u64,
    idle: u64,
    deadline: u64,
    period: u64,
    mode: ProbabilityMode,
    objective: Objective,
    min_quality: Option<u64>,
    energy_budget: Option<u64>,
    prob_threshold: Option<u64>,
}

impl DecisionKey {
    /// Captures the inputs of one decision. `goal` must already carry the
    /// *effective* (adjusted) deadline.
    pub fn capture(
        xi: &Normal,
        idle_ratio: f64,
        goal: &Goal,
        period: Seconds,
        mode: ProbabilityMode,
    ) -> Self {
        DecisionKey {
            xi_mean: xi.mean().to_bits(),
            xi_std: xi.std_dev().to_bits(),
            idle: idle_ratio.to_bits(),
            deadline: goal.deadline.get().to_bits(),
            period: period.get().to_bits(),
            mode,
            objective: goal.objective,
            min_quality: goal.min_quality.map(f64::to_bits),
            energy_budget: goal.energy_budget.map(|e| e.get().to_bits()),
            prob_threshold: goal.prob_threshold.map(f64::to_bits),
        }
    }
}

/// Cache effectiveness counters (benchmark + diagnostics surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Decisions answered from the cache (exact revalidation inside the
    /// band).
    pub hits: u64,
    /// Decisions that fell through to enumeration.
    pub misses: u64,
    /// Misses caused by leaving the cached band (the band-exit
    /// invalidation event).
    pub band_exits: u64,
    /// Eager invalidations (`begin_group`, `restore`, `reset`).
    pub invalidations: u64,
}

#[derive(Debug, Clone, Copy)]
struct CachedDecision {
    band: BeliefBand,
    key: DecisionKey,
    selection: Selection,
}

/// Single-entry decision memo with band-based invalidation. See the
/// module docs.
#[derive(Debug, Clone, Default)]
pub struct DecisionCache {
    entry: Option<CachedDecision>,
    stats: CacheStats,
}

impl DecisionCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached selection when `key` revalidates inside the
    /// cached band; records hit/miss/band-exit accounting.
    pub fn lookup(&mut self, band: BeliefBand, key: &DecisionKey) -> Option<Selection> {
        match &self.entry {
            Some(cached) if cached.band == band && cached.key == *key => {
                self.stats.hits += 1;
                Some(cached.selection)
            }
            // Same band, inputs moved within it: near miss, entry kept.
            Some(cached) if cached.band == band => {
                self.stats.misses += 1;
                None
            }
            // Band exit: evict, then miss.
            Some(_) => {
                self.stats.band_exits += 1;
                self.stats.misses += 1;
                self.entry = None;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs the selection produced for `key`.
    pub fn store(&mut self, band: BeliefBand, key: DecisionKey, selection: Selection) {
        self.entry = Some(CachedDecision {
            band,
            key,
            selection,
        });
    }

    /// Eagerly drops the entry (goal/group/restore/reset events).
    pub fn invalidate(&mut self) {
        if self.entry.take().is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// Effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidateModel;
    use crate::select::select_with_period;
    use alert_stats::units::Joules;

    /// A table with deliberate cap-response saturation: the two top caps
    /// share identical profiled latencies, so the higher cap is dominated.
    fn saturated_table() -> ConfigTable {
        let models = vec![
            CandidateModel::traditional("small", 0.86, 0.005),
            CandidateModel::anytime(
                "any",
                vec![
                    StagePoint {
                        frac: 0.4,
                        quality: 0.84,
                    },
                    StagePoint {
                        frac: 1.0,
                        quality: 0.94,
                    },
                ],
                0.005,
            ),
        ];
        let powers = vec![Watts(20.0), Watts(40.0), Watts(45.0)];
        let t_prof = vec![
            vec![Seconds(0.040), Seconds(0.020), Seconds(0.020)],
            vec![Seconds(0.240), Seconds(0.120), Seconds(0.120)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(38.0), Watts(38.0)],
            vec![Watts(19.0), Watts(39.0), Watts(39.0)],
        ];
        ConfigTable::new(models, powers, t_prof, p_run).expect("valid table")
    }

    #[test]
    fn saturation_duplicates_are_pruned() {
        let t = saturated_table();
        let lane = CandidateLane::build(&t);
        // 3 stage-rows × 3 powers = 9 candidates; the 45 W copy of each
        // stage row duplicates the 40 W one (same latency, same run
        // power, higher cap) and must be dropped.
        assert_eq!(lane.candidate_count(), 9);
        assert_eq!(lane.pruned_count(), 3, "one duplicate per stage row");
    }

    #[test]
    fn pruned_lane_matches_reference_on_saturated_table() {
        let t = saturated_table();
        let lane = CandidateLane::build(&t);
        let mut scratch = LaneScratch::for_lane(&lane);
        for (mean, std) in [(1.0, 0.02), (1.6, 0.3), (0.8, 0.0)] {
            let xi = Normal::new(mean, std);
            for goal in [
                Goal::minimize_energy(Seconds(0.15), 0.9),
                Goal::minimize_error(Seconds(0.15), Joules(2.0)),
                Goal::minimize_error(Seconds(0.01), Joules(1e-7)),
            ] {
                for mode in [ProbabilityMode::Full, ProbabilityMode::MeanOnly] {
                    let fast = lane
                        .select_with_period(&mut scratch, &xi, 0.25, &goal, goal.deadline, mode)
                        .unwrap();
                    let full =
                        select_with_period(&t, &xi, 0.25, &goal, goal.deadline, mode).unwrap();
                    assert_eq!(fast, full, "mean={mean} std={std} {goal:?} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn unsound_thresholds_bypass_pruning_not_correctness() {
        let t = saturated_table();
        let lane = CandidateLane::build(&t);
        let mut scratch = LaneScratch::for_lane(&lane);
        let xi = Normal::new(1.0, 0.2);
        // Pr_th below ½ gives a negative Eq. 12 quantile — outside the
        // pruning envelope; the lane must fall back to the full set and
        // still match the reference bit for bit.
        let goal = Goal::minimize_error(Seconds(0.15), Joules(2.0)).with_prob_threshold(0.2);
        let fast = lane
            .select_with_period(
                &mut scratch,
                &xi,
                0.25,
                &goal,
                goal.deadline,
                ProbabilityMode::Full,
            )
            .unwrap();
        let full =
            select_with_period(&t, &xi, 0.25, &goal, goal.deadline, ProbabilityMode::Full).unwrap();
        assert_eq!(fast, full);
    }

    /// The saturated table extended with a GPU-like device whose grid
    /// *repeats the CPU numbers bit-for-bit* — the worst case for
    /// cross-device pruning, since every latency chain collides.
    fn two_device_table() -> ConfigTable {
        let mut t = saturated_table();
        let powers = vec![Watts(20.0), Watts(40.0), Watts(45.0)];
        let t_prof = vec![
            vec![Seconds(0.040), Seconds(0.020), Seconds(0.020)],
            vec![Seconds(0.240), Seconds(0.120), Seconds(0.120)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(38.0), Watts(38.0)],
            vec![Watts(19.0), Watts(39.0), Watts(39.0)],
        ];
        t.add_device("GPU", powers, t_prof, p_run)
            .expect("valid grid");
        t
    }

    #[test]
    fn pruning_never_crosses_devices() {
        let t = two_device_table();
        let lane = CandidateLane::build(&t);
        assert_eq!(lane.candidate_count(), 18);
        // Each device prunes its own saturation duplicate per stage row
        // (3 each) and nothing else: identical grids on another device
        // must not shadow each other.
        assert_eq!(lane.pruned_count(), 6);
    }

    #[test]
    fn two_device_lane_matches_reference() {
        let t = two_device_table();
        let lane = CandidateLane::build(&t);
        let mut scratch = LaneScratch::for_lane(&lane);
        for (mean, std) in [(1.0, 0.02), (1.6, 0.3), (0.8, 0.0)] {
            let xi = Normal::new(mean, std);
            for goal in [
                Goal::minimize_energy(Seconds(0.15), 0.9),
                Goal::minimize_error(Seconds(0.15), Joules(2.0)),
                Goal::minimize_error(Seconds(0.01), Joules(1e-7)),
            ] {
                for mode in [ProbabilityMode::Full, ProbabilityMode::MeanOnly] {
                    let fast = lane
                        .select_with_period(&mut scratch, &xi, 0.25, &goal, goal.deadline, mode)
                        .unwrap();
                    let full =
                        select_with_period(&t, &xi, 0.25, &goal, goal.deadline, mode).unwrap();
                    assert_eq!(fast, full, "mean={mean} std={std} {goal:?} {mode:?}");
                }
            }
        }
    }

    #[test]
    fn cache_hits_only_on_exact_revalidation() {
        let mut cache = DecisionCache::new();
        let xi = Normal::new(1.0, 0.1);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let key = DecisionKey::capture(&xi, 0.3, &goal, Seconds(0.2), ProbabilityMode::Full);
        let band = BeliefBand::quantize(1.0, 0.1, 0.3, Seconds(0.2));
        let sel = Selection {
            candidate: Candidate {
                device: 0,
                model: 0,
                stage: 0,
                power: 0,
            },
            estimates: Estimates {
                mean_latency: Seconds(0.01),
                pr_deadline: 1.0,
                expected_quality: 0.9,
                energy: Joules(1.0),
                energy_bound: Joules(1.1),
            },
            deadline: Seconds(0.2),
            feasible: true,
        };
        assert!(cache.lookup(band, &key).is_none());
        cache.store(band, key, sel);
        assert_eq!(cache.lookup(band, &key), Some(sel));

        // Same band, different exact belief: near miss, not a hit.
        let xi2 = Normal::new(1.0 + 1e-9, 0.1);
        let key2 = DecisionKey::capture(&xi2, 0.3, &goal, Seconds(0.2), ProbabilityMode::Full);
        let band2 = BeliefBand::quantize(xi2.mean(), 0.1, 0.3, Seconds(0.2));
        assert_eq!(band, band2, "1e-9 must not cross a 0.5% band");
        assert!(cache.lookup(band2, &key2).is_none());

        // Band exit evicts.
        cache.store(band, key, sel);
        let far_band = BeliefBand::quantize(2.0, 0.1, 0.3, Seconds(0.2));
        assert!(cache.lookup(far_band, &key).is_none());
        assert!(
            cache.lookup(band, &key).is_none(),
            "band exit must evict the entry"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.band_exits, 1);
        assert!(stats.misses >= 3);
    }

    #[test]
    fn goal_fields_partition_the_cache_key() {
        let xi = Normal::new(1.0, 0.1);
        let a = DecisionKey::capture(
            &xi,
            0.3,
            &Goal::minimize_energy(Seconds(0.2), 0.9),
            Seconds(0.2),
            ProbabilityMode::Full,
        );
        let b = DecisionKey::capture(
            &xi,
            0.3,
            &Goal::minimize_energy(Seconds(0.2), 0.91),
            Seconds(0.2),
            ProbabilityMode::Full,
        );
        let c = DecisionKey::capture(
            &xi,
            0.3,
            &Goal::minimize_error(Seconds(0.2), Joules(5.0)),
            Seconds(0.2),
            ProbabilityMode::Full,
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
