//! The ALERT controller — the paper's primary contribution.
//!
//! ALERT (Wan et al., USENIX ATC 2020) is a feedback scheduler that, for
//! every inference input, jointly picks a DNN (possibly an anytime stage)
//! and a power cap so that two of {latency, accuracy, energy} are met as
//! constraints while the third is optimized. Its pipeline per input
//! (paper §3.2):
//!
//! 1. **Measure** the previous input's latency, idle power, quality.
//! 2. **Adjust goals** — shared (sentence) deadlines shrink as earlier
//!    members consume budget; the controller's own worst-case overhead is
//!    subtracted so ALERT never causes a violation itself.
//! 3. **Estimate** — a single *global slowdown factor* ξ, tracked by an
//!    adaptive Kalman filter (Eq. 5), rescales every profiled latency;
//!    its variance feeds the probability each configuration meets the
//!    deadline (Eq. 6), the expected accuracy under the deadline
//!    (Eqs. 7/13), and the energy model (Eqs. 9/12) together with the
//!    idle-power ratio φ (Eq. 8).
//! 4. **Pick** the feasible configuration optimizing the objective
//!    (Eqs. 1/2, optionally 10/11 with a probability threshold), falling
//!    back along the latency > accuracy > power hierarchy when nothing is
//!    feasible (§4).
//!
//! Modules: [`config`] (candidate tables), [`goal`] (objectives and
//! adjustment), [`slowdown`] (ξ, Eq. 5), [`idle`] (φ, Eq. 8), [`latency`]
//! (Eq. 6), [`quality`] (Eqs. 7/13), [`energy`] (Eqs. 9/12), [`select`]
//! (Eqs. 1/2/10/11, the reference enumeration), [`lane`] (the
//! selection-identical fast lane: SoA precomputation, dominated-candidate
//! pruning, belief-banded decision cache), and [`alert`] (the feedback
//! loop).

pub mod alert;
pub mod config;
pub mod energy;
pub mod idle;
pub mod lane;
pub mod latency;
pub mod quality;
pub mod select;
pub mod slowdown;

/// Goal vocabulary ([`Goal`], [`Objective`], [`GoalAdjuster`]) lives in
/// `alert-workload` — goals are workload statements, not controller
/// state — and is re-exported here so controller code keeps its
/// `crate::goal::…` paths.
pub use alert_workload::goal;

pub use alert::{
    AlertController, AlertParams, ControllerSnapshot, DecisionTrace, Observation, ProbabilityMode,
};
pub use config::{Candidate, CandidateModel, ConfigTable, StagePoint};
pub use goal::{Goal, GoalAdjuster, Objective};
pub use lane::{CacheStats, CandidateLane, DecisionCache, LaneScratch};
pub use select::{Estimates, Selection};
pub use slowdown::SlowdownEstimator;
