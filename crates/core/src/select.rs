//! Configuration selection (paper Eqs. 1, 2, 10, 11 and §4 fallback).
//!
//! ALERT "feeds all the updated estimations of latency, accuracy, and
//! energy into Eqs. 1 and 2, and gets the desired DNN model and power-cap
//! setting" (§3.2 step 4). Selection enumerates every execution target
//! (device, model, stage, power — the device axis generalizes the paper's
//! per-platform runs to heterogeneous placement, and collapses for
//! single-device tables), computes its estimates from the current ξ and φ,
//! filters by the goal's constraints (plus the optional probability
//! threshold of Eqs. 10–11), and optimizes the objective.
//!
//! When nothing is feasible, the paper's priority hierarchy applies:
//! *latency highest, then accuracy, then power* (§4) — first the
//! non-latency constraint is dropped, then, if no configuration can even
//! meet the deadline, the one most likely to meet it is chosen.

use crate::alert::ProbabilityMode;
use crate::config::{Candidate, ConfigTable};
use crate::goal::{Goal, Objective};
use alert_stats::normal::Normal;
use alert_stats::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// The percentile used for the energy *constraint* check when the user
/// has not set an explicit `Pr_th`: two standard deviations
/// (Φ(2) ≈ 0.977).
///
/// The paper's default ranks configurations by the mean-energy estimate
/// (Eq. 9) but its probabilistic design makes ALERT "conservative in
/// volatile environments" (§1.2); checking a budget constraint against
/// the mean would let ~half of marginal inputs overshoot whenever
/// per-input noise is material (the optimizer rides the boundary by
/// construction). We therefore check constraints against the Eq. 12
/// percentile estimate at +2σ — exactly the paper's mechanism, with a
/// default threshold — while still *optimizing* the mean.
pub const ENERGY_GUARD_PERCENTILE: f64 = 0.977_249_868_051_820_8;

/// Per-candidate estimates under the current environment belief.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimates {
    /// Mean predicted latency of the execution target.
    pub mean_latency: Seconds,
    /// Probability the target completes by the deadline (Eq. 6).
    pub pr_deadline: f64,
    /// Expected delivered quality (Eqs. 7/13).
    pub expected_quality: f64,
    /// Estimated period energy (Eqs. 9/12) — the ranking value.
    pub energy: Joules,
    /// Conservative energy bound used for budget *constraint* checks
    /// (Eq. 12 at `Pr_th`, defaulting to [`ENERGY_GUARD_PERCENTILE`]).
    pub energy_bound: Joules,
}

/// The outcome of one selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen execution target.
    pub candidate: Candidate,
    /// Its estimates at selection time.
    pub estimates: Estimates,
    /// The effective deadline the selection was made against (after goal
    /// adjustment).
    pub deadline: Seconds,
    /// `false` if the fallback hierarchy had to relax constraints.
    pub feasible: bool,
}

/// Computes the estimates for one candidate.
///
/// `period` is the idle-accounting window of Eq. 9 — the input period,
/// which for grouped tasks differs from the (dynamically adjusted)
/// deadline the selection is judged against.
pub fn evaluate(
    table: &ConfigTable,
    c: Candidate,
    xi: &Normal,
    idle_ratio: f64,
    goal: &Goal,
    period: Seconds,
    mode: ProbabilityMode,
) -> Estimates {
    let t_full = table.t_prof_on(c.device, c.model, c.power);
    let t_stage = table.t_prof_stage(c);
    let model = &table.models()[c.model];
    let deadline = goal.deadline;

    let mean_latency = crate::latency::predict_mean(xi, t_stage);
    let pr_deadline = match mode {
        ProbabilityMode::Full => crate::latency::deadline_probability(xi, t_stage, deadline),
        ProbabilityMode::MeanOnly => {
            if mean_latency.get() <= deadline.get() {
                1.0
            } else {
                0.0
            }
        }
    };
    let expected_quality = match mode {
        ProbabilityMode::Full => {
            crate::quality::expected_quality(xi, model, t_full, c.stage, deadline)
        }
        ProbabilityMode::MeanOnly => {
            crate::quality::mean_only_quality(xi, model, t_full, c.stage, deadline)
        }
    };
    let p_run = table.p_run_on(c.device, c.model, c.power);
    let cap = table.cap_on(c.device, c.power);
    let energy = crate::energy::estimate_energy(xi, t_stage, p_run, cap, idle_ratio, period);
    let energy_bound = match mode {
        ProbabilityMode::Full if xi.std_dev() > 0.0 => {
            let pr = goal.prob_threshold.unwrap_or(ENERGY_GUARD_PERCENTILE);
            crate::energy::estimate_energy_percentile(
                xi, t_stage, p_run, cap, idle_ratio, period, pr,
            )
        }
        _ => energy,
    };
    Estimates {
        mean_latency,
        pr_deadline,
        expected_quality,
        energy,
        energy_bound,
    }
}

/// Whether the candidate's *latency* constraint holds.
///
/// Anytime targets are stopped at the deadline by construction, so they
/// always deliver on time; traditional targets must be expected to finish
/// (and, with a threshold set, finish with probability ≥ Pr_th).
fn latency_ok(is_anytime: bool, stage: usize, e: &Estimates, goal: &Goal) -> bool {
    if is_anytime {
        if let Some(pr) = goal.prob_threshold {
            // Even an anytime target should probably reach its *first*
            // output; the threshold is applied to the chosen stage.
            return e.pr_deadline >= pr || stage == 0;
        }
        return true;
    }
    if e.mean_latency.get() > goal.deadline.get() {
        return false;
    }
    if let Some(pr) = goal.prob_threshold {
        return e.pr_deadline >= pr;
    }
    true
}

/// Safety margin on the quality floor, as a fraction of the candidate's
/// usable quality span (final quality − fallback quality).
///
/// Like the energy guard, this prevents boundary-riding: selecting a
/// configuration whose *expected* quality equals the floor exactly means
/// the realized episode average lands below the floor about half the
/// time. A 1.5% span margin keeps the realized average reliably above.
pub const QUALITY_GUARD_FRACTION: f64 = 0.015;

/// Whether the non-latency constraint holds. The energy budget is checked
/// against the conservative bound (Eq. 12); the quality floor is checked
/// with a small guard above the expectation (Eq. 7). `quality_guard` is
/// the precomputed [`QUALITY_GUARD_FRACTION`] span margin of the
/// candidate's model.
fn other_ok(quality_guard: f64, e: &Estimates, goal: &Goal) -> bool {
    match goal.objective {
        Objective::MinimizeEnergy => {
            // lint:allow(no-panic): Goal::validate requires min_quality for MinimizeEnergy; selection only runs on validated goals
            let floor = goal.min_quality.expect("validated goal");
            e.expected_quality >= floor + quality_guard
        }
        // lint:allow(no-panic): Goal::validate requires energy_budget for MinimizeError; selection only runs on validated goals
        Objective::MinimizeError => e.energy_bound <= goal.energy_budget.expect("validated goal"),
    }
}

/// Lexicographic `a < b` over two keys, with **explicit NaN rejection**:
/// a key containing NaN is never "better", and a NaN incumbent is always
/// displaced by a NaN-free challenger. Without this, a degenerate
/// estimate (e.g. a NaN expected quality from a malformed fallback
/// quality) that lands in the running best would silently pin selection
/// to an arbitrary earlier candidate — `partial_cmp` returns `None`
/// against NaN and the old `unwrap_or(false)` kept the incumbent.
/// For NaN-free keys this is exactly the old `partial_cmp` ordering.
fn lex2_better(a: (f64, f64), b: (f64, f64)) -> bool {
    let a_nan = a.0.is_nan() || a.1.is_nan();
    let b_nan = b.0.is_nan() || b.1.is_nan();
    match (a_nan, b_nan) {
        (true, _) => false,
        (false, true) => true,
        // NaN-free keys are totally ordered, so partial_cmp is Some here;
        // is_some_and keeps the comparison panic-free without changing the
        // ordering (unlike total_cmp, which splits -0.0 from +0.0 and
        // would perturb bit-identical tie-breaks on negated-quality keys).
        (false, false) => a.partial_cmp(&b).is_some_and(|o| o.is_lt()),
    }
}

/// Three-key variant of [`lex2_better`].
fn lex3_better(a: (f64, f64, f64), b: (f64, f64, f64)) -> bool {
    let a_nan = a.0.is_nan() || a.1.is_nan() || a.2.is_nan();
    let b_nan = b.0.is_nan() || b.1.is_nan() || b.2.is_nan();
    match (a_nan, b_nan) {
        (true, _) => false,
        (false, true) => true,
        (false, false) => a.partial_cmp(&b).is_some_and(|o| o.is_lt()),
    }
}

/// Lexicographic "better" for the objective, with tie-breaks.
fn better(goal: &Goal, a: &Estimates, b: &Estimates) -> bool {
    match goal.objective {
        Objective::MinimizeEnergy => lex3_better(
            (a.energy.get(), -a.expected_quality, a.mean_latency.get()),
            (b.energy.get(), -b.expected_quality, b.mean_latency.get()),
        ),
        Objective::MinimizeError => lex3_better(
            (-a.expected_quality, a.energy.get(), a.mean_latency.get()),
            (-b.expected_quality, b.energy.get(), b.mean_latency.get()),
        ),
    }
}

/// The selection state machine shared by the reference enumeration
/// ([`select_with_period`]) and the pruned fast lane
/// ([`crate::lane::CandidateLane`]): candidates are [`SelectionAccumulator::consider`]ed
/// in table-enumeration order, the three competitions of §4 (valid /
/// deadline-only / unconditional) advance in lockstep, and
/// [`SelectionAccumulator::finish`] applies the fallback hierarchy.
/// Sharing this one implementation is what makes "fast lane ≡ full
/// enumeration" a structural property instead of a testing aspiration —
/// the lane can only differ by *which* candidates it offers, and the
/// dominance filter guarantees the pruned ones never win any competition.
pub(crate) struct SelectionAccumulator {
    best_valid: Option<(Candidate, Estimates)>,
    best_latency_only: Option<(Candidate, Estimates)>,
    best_any: Option<(Candidate, Estimates)>,
}

impl SelectionAccumulator {
    pub(crate) fn new() -> Self {
        SelectionAccumulator {
            best_valid: None,
            best_latency_only: None,
            best_any: None,
        }
    }

    /// Offers one candidate with its estimates. `is_anytime` and
    /// `quality_guard` are the candidate's model facts (the caller looks
    /// them up or has them precomputed in the lane).
    pub(crate) fn consider(
        &mut self,
        c: Candidate,
        e: Estimates,
        is_anytime: bool,
        quality_guard: f64,
        goal: &Goal,
    ) {
        let l_ok = latency_ok(is_anytime, c.stage, &e, goal);
        let o_ok = other_ok(quality_guard, &e, goal);

        if l_ok && o_ok {
            let replace = match &self.best_valid {
                None => true,
                Some((_, cur)) => better(goal, &e, cur),
            };
            if replace {
                self.best_valid = Some((c, e));
            }
        }
        if l_ok {
            // Fallback 1 (constraints relaxed in priority order: the
            // non-latency constraint is dropped first; §4): maximize
            // quality among deadline-feasible targets, tie-break energy.
            let replace = match &self.best_latency_only {
                None => true,
                Some((_, cur)) => lex2_better(
                    (-e.expected_quality, e.energy.get()),
                    (-cur.expected_quality, cur.energy.get()),
                ),
            };
            if replace {
                self.best_latency_only = Some((c, e));
            }
        }
        // Fallback 2: nothing meets the deadline — chase the highest
        // completion probability, then the lowest latency.
        let replace = match &self.best_any {
            None => true,
            Some((_, cur)) => lex2_better(
                (-e.pr_deadline, e.mean_latency.get()),
                (-cur.pr_deadline, cur.mean_latency.get()),
            ),
        };
        if replace {
            self.best_any = Some((c, e));
        }
    }

    /// Applies the §4 fallback hierarchy and produces the selection.
    ///
    /// # Errors
    ///
    /// Errors when no candidate was ever offered — an empty candidate
    /// table (impossible through [`ConfigTable::new`], but the selection
    /// layer no longer panics on it).
    pub(crate) fn finish(self, goal: &Goal) -> Result<Selection, String> {
        if let Some((candidate, estimates)) = self.best_valid {
            return Ok(Selection {
                candidate,
                estimates,
                deadline: goal.deadline,
                feasible: true,
            });
        }
        let (candidate, estimates) = self
            .best_latency_only
            .or(self.best_any)
            .ok_or_else(|| "selection over an empty candidate table".to_string())?;
        Ok(Selection {
            candidate,
            estimates,
            deadline: goal.deadline,
            feasible: false,
        })
    }
}

/// Selects the best execution target for `goal` under the belief (ξ, φ),
/// with `period` as the idle-accounting window.
///
/// # Errors
///
/// Returns the goal-validation failure message if `goal` is malformed
/// (goals are user input; an invalid one must surface to the caller
/// rather than abort the process), or an error for an empty candidate
/// table (unreachable through [`ConfigTable::new`]).
pub fn select_with_period(
    table: &ConfigTable,
    xi: &Normal,
    idle_ratio: f64,
    goal: &Goal,
    period: Seconds,
    mode: ProbabilityMode,
) -> Result<Selection, String> {
    goal.validate().map_err(|e| format!("invalid goal: {e}"))?;

    let mut acc = SelectionAccumulator::new();
    for c in table.candidates() {
        let e = evaluate(table, c, xi, idle_ratio, goal, period, mode);
        let model = &table.models()[c.model];
        let guard = QUALITY_GUARD_FRACTION * (model.final_quality() - model.fail_quality);
        acc.consider(c, e, model.is_anytime(), guard, goal);
    }
    acc.finish(goal)
}

/// [`select_with_period`] with the period defaulting to the goal deadline
/// (correct for ungrouped periodic inputs).
///
/// # Errors
///
/// Returns the goal-validation failure message if `goal` is malformed.
pub fn select(
    table: &ConfigTable,
    xi: &Normal,
    idle_ratio: f64,
    goal: &Goal,
    mode: ProbabilityMode,
) -> Result<Selection, String> {
    select_with_period(table, xi, idle_ratio, goal, goal.deadline, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CandidateModel, StagePoint};
    use alert_stats::units::Watts;

    /// Two traditional models and one 2-stage anytime across two caps.
    fn table() -> ConfigTable {
        let models = vec![
            CandidateModel::traditional("small", 0.86, 0.005),
            CandidateModel::traditional("big", 0.95, 0.005),
            CandidateModel::anytime(
                "any",
                vec![
                    StagePoint {
                        frac: 0.4,
                        quality: 0.84,
                    },
                    StagePoint {
                        frac: 1.0,
                        quality: 0.94,
                    },
                ],
                0.005,
            ),
        ];
        let powers = vec![Watts(20.0), Watts(45.0)];
        // Low cap roughly doubles latency.
        let t_prof = vec![
            vec![Seconds(0.040), Seconds(0.020)],
            vec![Seconds(0.200), Seconds(0.100)],
            vec![Seconds(0.240), Seconds(0.120)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(40.0)],
            vec![Watts(19.0), Watts(42.0)],
            vec![Watts(19.0), Watts(42.0)],
        ];
        ConfigTable::new(models, powers, t_prof, p_run).expect("valid table")
    }

    fn calm() -> Normal {
        Normal::new(1.0, 0.02)
    }

    #[test]
    fn min_error_picks_most_accurate_that_fits() {
        let t = table();
        // Plenty of time and energy: the big traditional model at some cap.
        let goal = Goal::minimize_error(Seconds(0.3), Joules(20.0));
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(s.feasible);
        assert_eq!(t.models()[s.candidate.model].name, "big");
    }

    #[test]
    fn min_error_tight_deadline_prefers_feasible_model() {
        let t = table();
        // 50 ms deadline: big\@45W (100 ms) can't; small\@45W (20 ms) and
        // anytime stage-0 (48 ms \@45W) can. Quality: anytime stage0 0.84
        // risky vs small 0.86 sure.
        let goal = Goal::minimize_error(Seconds(0.05), Joules(20.0));
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(s.feasible);
        let name = &t.models()[s.candidate.model].name;
        assert!(name == "small" || name == "any", "picked {name}");
        assert!(s.estimates.expected_quality > 0.8);
    }

    #[test]
    fn min_error_energy_budget_forces_lower_power() {
        let t = table();
        // Budget ≈ cap 20 W × deadline: high-cap configs blow it.
        let deadline = Seconds(0.3);
        let goal = Goal::minimize_error(deadline, Watts(20.0) * deadline);
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(s.feasible);
        assert_eq!(s.candidate.power, 0, "must pick the low cap");
    }

    #[test]
    fn min_energy_meets_quality_floor_cheaply() {
        let t = table();
        let goal = Goal::minimize_energy(Seconds(0.3), 0.90);
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(s.feasible);
        assert!(s.estimates.expected_quality >= 0.90);
        // "small" (0.86) cannot satisfy the floor.
        assert_ne!(t.models()[s.candidate.model].name, "small");
    }

    #[test]
    fn min_energy_low_floor_picks_cheapest() {
        let t = table();
        let goal = Goal::minimize_energy(Seconds(0.3), 0.5);
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(s.feasible);
        // Small model at some cap: by far the least energy.
        assert_eq!(t.models()[s.candidate.model].name, "small");
    }

    #[test]
    fn volatility_shifts_choice_toward_safer_configs() {
        // The §3.4 worked example: rising variance must lower the expected
        // quality of long-latency targets more than short ones.
        let t = table();
        let goal = Goal::minimize_error(Seconds(0.11), Joules(20.0));
        let calm_sel = select(
            &t,
            &Normal::new(1.0, 0.01),
            0.2,
            &goal,
            ProbabilityMode::Full,
        )
        .unwrap();
        let wild_sel = select(
            &t,
            &Normal::new(1.0, 0.30),
            0.2,
            &goal,
            ProbabilityMode::Full,
        )
        .unwrap();
        // Calm: big (100 ms \@45 W) just fits and wins on quality.
        assert_eq!(t.models()[calm_sel.candidate.model].name, "big");
        // Wild: the anytime network (graceful staircase) takes over.
        assert_eq!(t.models()[wild_sel.candidate.model].name, "any");
    }

    #[test]
    fn fallback_drops_power_constraint_before_accuracy() {
        let t = table();
        // Impossible energy budget: nothing fits; latency is satisfiable.
        let goal = Goal::minimize_error(Seconds(0.3), Joules(1e-6));
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(!s.feasible);
        // Fallback maximizes quality under the deadline.
        assert_eq!(t.models()[s.candidate.model].name, "big");
    }

    #[test]
    fn fallback_chases_probability_when_deadline_impossible() {
        let models = vec![
            CandidateModel::traditional("slow_a", 0.9, 0.0),
            CandidateModel::traditional("slow_b", 0.8, 0.0),
        ];
        let powers = vec![Watts(45.0)];
        let t_prof = vec![vec![Seconds(0.5)], vec![Seconds(0.3)]];
        let p_run = vec![vec![Watts(40.0)], vec![Watts(40.0)]];
        let t = ConfigTable::new(models, powers, t_prof, p_run).expect("valid table");
        let goal = Goal::minimize_error(Seconds(0.01), Joules(100.0));
        let s = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert!(!s.feasible);
        // The faster of the two hopeless models.
        assert_eq!(t.models()[s.candidate.model].name, "slow_b");
    }

    #[test]
    fn prob_threshold_rejects_risky_configs() {
        let t = table();
        // big\@45W has mean 100 ms vs 110 ms deadline: under σ = 0.05 its
        // completion probability is Φ(2) ≈ 0.977 — good enough to win on
        // expected quality, but below a 0.99 threshold.
        let xi = Normal::new(1.0, 0.05);
        let goal = Goal::minimize_error(Seconds(0.11), Joules(20.0));
        let unconstrained = select(&t, &xi, 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert_eq!(t.models()[unconstrained.candidate.model].name, "big");
        let thresholded = select(
            &t,
            &xi,
            0.2,
            &goal.with_prob_threshold(0.99),
            ProbabilityMode::Full,
        )
        .unwrap();
        assert_ne!(t.models()[thresholded.candidate.model].name, "big");
    }

    #[test]
    fn mean_only_overestimates_risky_quality() {
        let t = table();
        let xi = Normal::new(1.0, 0.30);
        let goal = Goal::minimize_error(Seconds(0.105), Joules(20.0));
        let c = Candidate {
            device: 0,
            model: 1,
            stage: 0,
            power: 1,
        }; // big@45W, mean 100 ms
        let full = evaluate(&t, c, &xi, 0.2, &goal, goal.deadline, ProbabilityMode::Full);
        let naive = evaluate(
            &t,
            c,
            &xi,
            0.2,
            &goal,
            goal.deadline,
            ProbabilityMode::MeanOnly,
        );
        assert_eq!(naive.expected_quality, 0.95);
        assert!(
            full.expected_quality < 0.65,
            "full = {}",
            full.expected_quality
        );
        assert_eq!(naive.pr_deadline, 1.0);
    }

    #[test]
    fn selection_is_deterministic() {
        let t = table();
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let a = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        let b = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nan_quality_estimate_cannot_pin_the_fallback() {
        // A model whose fallback quality is NaN slips through
        // `CandidateModel` validation (every comparison against NaN is
        // false) and yields a NaN expected quality — even under a
        // degenerate zero-variance ξ, where the mixture still multiplies
        // the NaN by a zero weight. The old tie-breaks compared with
        // `partial_cmp(..).unwrap_or(false)`, so once the NaN candidate
        // became the running fallback, no sane candidate could displace
        // it and selection silently returned garbage estimates.
        let models = vec![
            CandidateModel::traditional("poisoned", 0.9, f64::NAN),
            CandidateModel::traditional("sane", 0.8, 0.0),
        ];
        let powers = vec![Watts(45.0)];
        let t_prof = vec![vec![Seconds(0.040)], vec![Seconds(0.050)]];
        let p_run = vec![vec![Watts(40.0)], vec![Watts(40.0)]];
        let t = ConfigTable::new(models, powers, t_prof, p_run).expect("valid table");
        // A floor nobody can meet forces the latency-only fallback,
        // whose ranking key is the (possibly NaN) expected quality.
        let goal = Goal::minimize_energy(Seconds(0.3), 0.99);
        for xi in [Normal::new(1.0, 0.0), Normal::new(1.0, 0.05)] {
            let s = select(&t, &xi, 0.2, &goal, ProbabilityMode::Full).unwrap();
            assert!(!s.feasible);
            assert_eq!(
                t.models()[s.candidate.model].name,
                "sane",
                "NaN candidate must not win the fallback"
            );
            assert!(!s.estimates.expected_quality.is_nan());
        }
    }

    #[test]
    fn invalid_goal_is_rejected() {
        let t = table();
        let mut goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        goal.min_quality = None;
        let err = select(&t, &calm(), 0.2, &goal, ProbabilityMode::Full).unwrap_err();
        assert!(err.contains("invalid goal"), "{err}");
    }
}
