//! The DNN-idle power ratio φ (paper Eq. 8).
//!
//! Between inference inputs the system is not necessarily quiet: co-located
//! jobs keep drawing power. ALERT "continually estimates the system power
//! when DNN inference is idle" as a *ratio* φ = p_idle / p_cap, filtered by
//! a fixed-gain Kalman schedule, and uses φ·p_cap as the idle-power term of
//! the energy estimate (Eq. 9).

use alert_stats::kalman::IdlePowerFilter;
use alert_stats::units::Watts;
use serde::{Deserialize, Serialize};

/// Estimator of the idle-power ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdleRatioEstimator {
    filter: IdlePowerFilter,
}

impl IdleRatioEstimator {
    /// Creates the estimator with an initial ratio guess.
    ///
    /// # Panics
    ///
    /// Panics if `phi0` is outside `[0, 1]`.
    pub fn new(phi0: f64) -> Self {
        IdleRatioEstimator {
            filter: IdlePowerFilter::new(phi0),
        }
    }

    /// Feeds one measurement of idle power under the cap that was active.
    ///
    /// Measurements with a non-positive cap are ignored.
    pub fn observe(&mut self, idle_power: Watts, cap: Watts) {
        if cap.get() <= 0.0 || !idle_power.is_finite() {
            return;
        }
        self.filter.update(idle_power / cap);
    }

    /// Current ratio estimate φ⁽ⁿ⁾.
    pub fn ratio(&self) -> f64 {
        self.filter.ratio()
    }

    /// Predicted idle power under a hypothetical cap: φ·p_cap.
    pub fn predict_idle_power(&self, cap: Watts) -> Watts {
        cap * self.filter.ratio()
    }

    /// Number of measurements consumed.
    pub fn observations(&self) -> u64 {
        self.filter.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_observed_ratio() {
        let mut e = IdleRatioEstimator::new(0.5);
        for _ in 0..200 {
            e.observe(Watts(18.0), Watts(90.0)); // ratio 0.2
        }
        assert!((e.ratio() - 0.2).abs() < 0.01);
        assert!((e.predict_idle_power(Watts(50.0)).get() - 10.0).abs() < 0.5);
    }

    #[test]
    fn tracks_contention_raising_idle_power() {
        let mut e = IdleRatioEstimator::new(0.2);
        // Co-runner starts: idle draw jumps from 18 W to 30 W under 90 W.
        for _ in 0..50 {
            e.observe(Watts(18.0), Watts(90.0));
        }
        let before = e.ratio();
        for _ in 0..50 {
            e.observe(Watts(30.0), Watts(90.0));
        }
        assert!(e.ratio() > before + 0.05);
    }

    #[test]
    fn ignores_bad_measurements() {
        let mut e = IdleRatioEstimator::new(0.5);
        e.observe(Watts(10.0), Watts(0.0));
        e.observe(Watts(f64::NAN), Watts(50.0));
        assert_eq!(e.observations(), 0);
        assert_eq!(e.ratio(), 0.5);
    }
}
