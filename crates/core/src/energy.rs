//! Period energy estimation (paper Idea 3, Eqs. 9 and 12).
//!
//! Energy per input period splits into the inference part and the idle
//! part (waiting for the next input):
//!
//! ```text
//! e = p_run · ξ̄·t^prof  +  φ·p_cap · (T_goal − ξ̄·t^prof)      (Eq. 9)
//! ```
//!
//! The paper notes the mean suffices here because the run power is pinned
//! by the cap whether or not the deadline is met. Users wanting harder
//! energy guarantees swap the mean latency for its `Pr_th` percentile
//! (Eq. 12), which inflates the estimate and makes ALERT reject more
//! configurations.

use alert_stats::normal::Normal;
use alert_stats::units::{Joules, Seconds, Watts};

/// Mean-based period energy estimate (Eq. 9).
///
/// The idle interval is clamped at zero: an inference that overruns the
/// period leaves no idle time (the physical meter can never see negative
/// idle energy).
pub fn estimate_energy(
    xi: &Normal,
    t_prof: Seconds,
    p_run: Watts,
    cap: Watts,
    idle_ratio: f64,
    period: Seconds,
) -> Joules {
    let t_mean = t_prof * xi.mean();
    estimate_energy_at(t_mean, p_run, cap, idle_ratio, period)
}

/// Percentile-based period energy estimate (Eq. 12): uses the `pr`
/// worst-case latency instead of the mean.
pub fn estimate_energy_percentile(
    xi: &Normal,
    t_prof: Seconds,
    p_run: Watts,
    cap: Watts,
    idle_ratio: f64,
    period: Seconds,
    pr: f64,
) -> Joules {
    let t_pct = crate::latency::percentile_latency(xi, t_prof, pr);
    estimate_energy_at(t_pct, p_run, cap, idle_ratio, period)
}

/// Shared kernel of Eqs. 9/12: run energy plus clamped idle energy at an
/// already-resolved execution time. The public entry points above feed it
/// the mean (`ξ̄·t^prof`) or percentile latency; the selection fast lane
/// (`crate::lane`) feeds it a percentile latency computed with a hoisted
/// `Φ⁻¹` ([`crate::latency::percentile_latency_with_z`]) — all three
/// paths share this exact arithmetic, so they cannot diverge.
pub fn estimate_energy_at(
    t_exec: Seconds,
    p_run: Watts,
    cap: Watts,
    idle_ratio: f64,
    period: Seconds,
) -> Joules {
    debug_assert!((0.0..=1.0).contains(&idle_ratio), "ratio must be in [0,1]");
    let idle_time = Seconds((period - t_exec).get().max(0.0));
    p_run * t_exec + (cap * idle_ratio) * idle_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_eq9_by_hand() {
        // ξ̄ = 1.2, t_prof = 0.05 → exec 0.06 s; run 40 W → 2.4 J.
        // Idle: φ = 0.25, cap 50 W → 12.5 W over (0.1 − 0.06) = 0.04 s → 0.5 J.
        let xi = Normal::new(1.2, 0.1);
        let e = estimate_energy(
            &xi,
            Seconds(0.05),
            Watts(40.0),
            Watts(50.0),
            0.25,
            Seconds(0.1),
        );
        assert!((e.get() - 2.9).abs() < 1e-12, "e = {e}");
    }

    #[test]
    fn overrun_has_no_idle_term() {
        let xi = Normal::new(2.0, 0.1);
        // exec = 0.2 s > period 0.1 s.
        let e = estimate_energy(
            &xi,
            Seconds(0.1),
            Watts(40.0),
            Watts(50.0),
            0.25,
            Seconds(0.1),
        );
        assert!((e.get() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_estimate_is_more_pessimistic() {
        let xi = Normal::new(1.0, 0.2);
        let args = (Seconds(0.05), Watts(40.0), Watts(50.0), 0.2, Seconds(0.2));
        let mean = estimate_energy(&xi, args.0, args.1, args.2, args.3, args.4);
        let p95 = estimate_energy_percentile(&xi, args.0, args.1, args.2, args.3, args.4, 0.95);
        // Longer assumed run time at higher power than idle → more energy.
        assert!(p95 > mean, "p95 {p95} vs mean {mean}");
        let p99 = estimate_energy_percentile(&xi, args.0, args.1, args.2, args.3, args.4, 0.99);
        assert!(p99 > p95);
    }

    #[test]
    fn mid_cap_can_be_the_most_expensive() {
        // The Fig. 3 terrain, as the *estimator* sees it: with latencies
        // shaped like the CPU2 DVFS response, the period energy is
        // non-monotone in the cap — cheapest at the bottom, most expensive
        // mid-range, with racing (high cap) beating mid-pacing. No greedy
        // heuristic over the cap axis can navigate this (paper §2.1).
        let xi = Normal::new(1.0, 0.01);
        let period = Seconds(0.3);
        let phi = 0.2;
        let e40 = estimate_energy(&xi, Seconds(0.28), Watts(40.0), Watts(40.0), phi, period);
        let e64 = estimate_energy(&xi, Seconds(0.22), Watts(64.0), Watts(64.0), phi, period);
        let e95 = estimate_energy(&xi, Seconds(0.10), Watts(95.0), Watts(95.0), phi, period);
        assert!(e40 < e95, "bottom cap must be cheapest: {e40} vs {e95}");
        assert!(e95 < e64, "racing must beat mid-pacing: {e95} vs {e64}");
    }

    #[test]
    fn zero_variance_percentile_equals_mean() {
        let xi = Normal::new(1.5, 0.0);
        let args = (Seconds(0.05), Watts(40.0), Watts(50.0), 0.2, Seconds(0.2));
        let mean = estimate_energy(&xi, args.0, args.1, args.2, args.3, args.4);
        let pct = estimate_energy_percentile(&xi, args.0, args.1, args.2, args.3, args.4, 0.9);
        assert!((mean.get() - pct.get()).abs() < 1e-12);
    }
}
