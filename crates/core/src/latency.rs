//! Latency prediction and deadline probability (paper Eq. 6).
//!
//! Given ξ ~ N(μ, σ²) and a profiled latency `t^prof`, the predicted
//! latency is the scaled random variable ξ·t^prof, and the probability of
//! meeting a deadline is its CDF at the deadline:
//!
//! ```text
//! Pr_{i,j} = Pr[ξ·t^prof_{i,j} ≤ T_goal] = CDF(μ·t^prof, σ·t^prof, T_goal)
//! ```

use alert_stats::normal::Normal;
use alert_stats::units::Seconds;

/// Mean predicted latency `μ · t^prof`.
pub fn predict_mean(xi: &Normal, t_prof: Seconds) -> Seconds {
    t_prof * xi.mean()
}

/// The latency distribution ξ·t^prof as a [`Normal`].
///
/// # Panics
///
/// Panics if `t_prof` is not positive.
pub fn latency_distribution(xi: &Normal, t_prof: Seconds) -> Normal {
    assert!(
        t_prof.is_finite() && t_prof.get() > 0.0,
        "t_prof must be positive, got {t_prof}"
    );
    xi.scaled(t_prof.get())
}

/// Probability that an execution with profile `t_prof` finishes by
/// `deadline` (paper Eq. 6).
pub fn deadline_probability(xi: &Normal, t_prof: Seconds, deadline: Seconds) -> f64 {
    latency_distribution(xi, t_prof).cdf(deadline.get())
}

/// The `Pr_th`-percentile latency `CDF⁻¹(ξ·t^prof, Pr_th)` used by the
/// pessimistic energy bound (paper Eq. 12).
///
/// # Panics
///
/// Panics if `pr` is outside `(0, 1)` for a non-degenerate distribution.
pub fn percentile_latency(xi: &Normal, t_prof: Seconds, pr: f64) -> Seconds {
    Seconds(latency_distribution(xi, t_prof).quantile(pr))
}

/// [`percentile_latency`] with the standard-normal quantile `z = Φ⁻¹(Pr_th)`
/// precomputed by the caller.
///
/// The selection loop evaluates the Eq. 12 bound for *every* candidate at
/// the *same* threshold, so the fast lane hoists the (expensive) `Φ⁻¹`
/// out of the loop. Bit-identical to `percentile_latency(xi, t_prof,
/// pr)` when `z == inv_phi(pr)` and `σ > 0`: the quantile of the scaled
/// distribution is exactly `(μ·t) + (σ·t)·z`, which is the expression
/// below (f64 multiplication is commutative at the bit level, so operand
/// order cannot diverge).
pub fn percentile_latency_with_z(xi: &Normal, t_prof: Seconds, z: f64) -> Seconds {
    debug_assert!(
        t_prof.is_finite() && t_prof.get() > 0.0,
        "t_prof must be positive, got {t_prof}"
    );
    Seconds(xi.mean() * t_prof.get() + xi.std_dev() * t_prof.get() * z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_scales_profile() {
        let xi = Normal::new(1.4, 0.1);
        assert!((predict_mean(&xi, Seconds(0.05)).get() - 0.07).abs() < 1e-15);
    }

    #[test]
    fn probability_is_half_at_mean() {
        let xi = Normal::new(1.2, 0.2);
        let t = Seconds(0.1);
        let pr = deadline_probability(&xi, t, Seconds(0.12));
        assert!((pr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_monotone_in_deadline() {
        let xi = Normal::new(1.0, 0.15);
        let t = Seconds(0.1);
        let mut prev = 0.0;
        for d in [0.05, 0.08, 0.1, 0.12, 0.2] {
            let pr = deadline_probability(&xi, t, Seconds(d));
            assert!(pr >= prev);
            prev = pr;
        }
    }

    #[test]
    fn shorter_profiles_more_likely_to_meet() {
        // The §3.4 conservatism example: under high variance the slower
        // configuration loses more completion probability.
        let calm = Normal::new(1.0, 0.02);
        let wild = Normal::new(1.0, 0.25);
        let deadline = Seconds(0.115);
        let small = Seconds(0.08);
        let large = Seconds(0.11);
        let drop_small = deadline_probability(&calm, small, deadline)
            - deadline_probability(&wild, small, deadline);
        let drop_large = deadline_probability(&calm, large, deadline)
            - deadline_probability(&wild, large, deadline);
        assert!(
            drop_large > drop_small,
            "large model must lose more: {drop_large} vs {drop_small}"
        );
    }

    #[test]
    fn percentile_latency_inverts_probability() {
        let xi = Normal::new(1.3, 0.1);
        let t = Seconds(0.2);
        let p95 = percentile_latency(&xi, t, 0.95);
        let pr = deadline_probability(&xi, t, p95);
        assert!((pr - 0.95).abs() < 1e-9);
        // Higher thresholds give more pessimistic (larger) latencies.
        assert!(percentile_latency(&xi, t, 0.99) > p95);
    }

    #[test]
    fn percentile_latency_with_hoisted_z_is_bit_identical() {
        use alert_stats::normal::inv_phi;
        for &(mu, sigma) in &[(1.0, 0.1), (1.7, 0.35), (0.4, 0.02)] {
            let xi = Normal::new(mu, sigma);
            for &pr in &[0.5, 0.9, 0.977_249_868_051_820_8, 0.999] {
                let z = inv_phi(pr);
                for &t in &[0.004, 0.05, 0.31] {
                    let a = percentile_latency(&xi, Seconds(t), pr);
                    let b = percentile_latency_with_z(&xi, Seconds(t), z);
                    assert_eq!(
                        a.get().to_bits(),
                        b.get().to_bits(),
                        "mu={mu} pr={pr} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_variance_gives_step_probability() {
        let xi = Normal::new(1.0, 0.0);
        let t = Seconds(0.1);
        assert_eq!(deadline_probability(&xi, t, Seconds(0.09)), 0.0);
        assert_eq!(deadline_probability(&xi, t, Seconds(0.11)), 1.0);
    }

    #[test]
    #[should_panic(expected = "t_prof must be positive")]
    fn rejects_bad_profile() {
        let _ = latency_distribution(&Normal::new(1.0, 0.1), Seconds(0.0));
    }
}
