//! The ALERT feedback loop (paper §3.2).
//!
//! [`AlertController`] owns the candidate table and the two online
//! estimators (ξ and φ) and exposes the per-input cycle:
//!
//! * [`AlertController::decide`] — steps 2–4: adjust the goal (shared
//!   deadlines, overhead compensation), estimate every configuration from
//!   the current belief, pick the best feasible one;
//! * [`AlertController::observe`] — step 1 for the *next* input: feed the
//!   measured latency (as a slowdown sample), the idle power, and the
//!   consumed group budget back into the estimators.
//!
//! The controller is deliberately platform- and model-agnostic: it sees
//! only the profile tables. `alert-sched` wires it to the simulator.

use crate::config::{Candidate, ConfigTable};
use crate::goal::{Goal, GoalAdjuster};
use crate::idle::IdleRatioEstimator;
use crate::lane::{BeliefBand, CacheStats, CandidateLane, DecisionCache, DecisionKey, LaneScratch};
use crate::select::{Estimates, Selection};
use crate::slowdown::SlowdownEstimator;
use alert_stats::cputime::DecisionStopwatch;
use alert_stats::kalman::AdaptiveKalmanParams;
use alert_stats::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// How estimates incorporate uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbabilityMode {
    /// The paper's design: full expectations over ξ's distribution.
    Full,
    /// The ALERT\* ablation (§5.3, Fig. 10): means only.
    MeanOnly,
}

/// How the controller reserves time for its own overhead (§3.2 step 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OverheadPolicy {
    /// No compensation.
    None,
    /// Reserve a fixed time out of every deadline (deterministic; the
    /// default for reproducible experiments).
    Fixed(Seconds),
    /// Measure the controller's own decision time and reserve the worst
    /// case observed (the paper's behaviour).
    ///
    /// Decisions are metered on the **thread-CPU clock**
    /// ([`alert_stats::cputime`]) where available, falling back to the
    /// wall clock elsewhere: the wall clock charges the controller for
    /// scheduler preemption and lock waits, which on an oversubscribed
    /// host inflated the measured "overhead" ~7× and fed that noise
    /// straight back into deadlines. Residual nondeterminism (cache
    /// state, frequency scaling) remains — see DESIGN.md §5.
    Measured,
}

/// A decision-cost stopwatch, delegating to the sanctioned meter
/// ([`alert_stats::cputime::DecisionStopwatch`]: thread-CPU clock when
/// the platform has one, wall clock otherwise). The controller itself
/// never touches ambient wall time — the fallback lives inside the
/// metering module, where `alert-lint`'s `no-wall-clock` rule permits
/// it.
struct DecisionClock {
    inner: DecisionStopwatch,
}

impl DecisionClock {
    fn start() -> Self {
        DecisionClock {
            inner: DecisionStopwatch::start(),
        }
    }

    /// Elapsed decision cost. Floored at 1 ns: a cache-hit decision can
    /// finish between two ticks of the CPU clock, and downstream
    /// accounting treats a zero cost as "no decision happened".
    fn elapsed(&self) -> Seconds {
        Seconds(self.inner.elapsed().as_secs_f64().max(1e-9))
    }
}

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertParams {
    /// Kalman constants for the slowdown filter (Eq. 5).
    pub kalman: AdaptiveKalmanParams,
    /// Probability handling ([`ProbabilityMode::Full`] = paper design).
    pub mode: ProbabilityMode,
    /// Initial idle-power ratio guess for φ (Eq. 8).
    pub initial_idle_ratio: f64,
    /// Overhead compensation policy.
    pub overhead: OverheadPolicy,
}

impl Default for AlertParams {
    fn default() -> Self {
        AlertParams {
            kalman: AdaptiveKalmanParams::default(),
            mode: ProbabilityMode::Full,
            initial_idle_ratio: 0.3,
            // 0.3 ms — roughly the measured decision cost envelope; keeps
            // experiments bit-deterministic (see `OverheadPolicy::Measured`
            // for the paper's adaptive variant).
            overhead: OverheadPolicy::Fixed(Seconds(0.0003)),
        }
    }
}

impl AlertParams {
    /// The ALERT\* ablation parameters (mean-only estimates).
    pub fn mean_only() -> Self {
        AlertParams {
            mode: ProbabilityMode::MeanOnly,
            ..Default::default()
        }
    }
}

/// Feedback from one processed input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Measured execution time of the work that ran.
    pub latency: Seconds,
    /// Profiled time of that same work (slowdown denominator).
    pub profile_equivalent: Seconds,
    /// Idle power measured while waiting for this input, if any idle
    /// period existed.
    pub idle_power: Option<Watts>,
    /// The cap that was active during the idle measurement.
    pub idle_cap: Watts,
}

/// A serializable checkpoint of an [`AlertController`]'s learned state:
/// the ξ slowdown belief (Kalman filter + innovation tracker), the φ
/// idle-power ratio, the goal adjuster (overhead reserve and group
/// budget), and the decision counters.
///
/// Snapshots exist so long-lived *sessions* can be checkpointed and
/// migrated between runtimes: a controller restored from a snapshot
/// continues the episode exactly where the original left off (the
/// candidate table and parameters are rebuilt from the policy, not
/// stored — they are configuration, not learned state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// The ξ estimator state (Eq. 5 filter + innovation dispersion).
    pub xi: SlowdownEstimator,
    /// The φ idle-power ratio estimator state (Eq. 8 filter).
    pub idle: IdleRatioEstimator,
    /// Goal adjustment state: overhead reserve, group budget.
    pub adjuster: GoalAdjuster,
    /// Decisions made so far.
    pub decisions: u64,
    /// Measured cost of the most recent decision (thread-CPU clock where
    /// available).
    pub last_decision_cost: Seconds,
}

/// The full causal record of one decision, captured *after* the
/// selection is made (strictly off the value path: nothing downstream
/// of [`AlertController::decide_with_period`] reads it back).
///
/// This is what the telemetry layer's decision events and the flight
/// recorder are built from: the belief the controller held, the lane it
/// searched (or the cache entry it replayed), what it picked and what
/// it predicted. Like the decision cache, it is *not* learned state —
/// snapshots do not carry it, and restore/reset clear it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// `true` when the decision was replayed from the belief-banded
    /// cache instead of a fresh lane search.
    pub cache_hit: bool,
    /// ξ belief mean at decision time.
    pub belief_mean: f64,
    /// ξ belief standard deviation at decision time.
    pub belief_std: f64,
    /// φ idle-power ratio at decision time.
    pub idle_ratio: f64,
    /// The deadline actually decided against (after goal adjustment:
    /// group budget, overhead reserve).
    pub effective_deadline: Seconds,
    /// Total execution targets in the candidate lane.
    pub candidates: usize,
    /// Targets surviving static pruning (the ones actually scored).
    pub live: usize,
    /// The chosen execution target.
    pub selected: Candidate,
    /// The winner's estimates at selection time (predicted latency,
    /// deadline probability, quality, energy).
    pub estimates: Estimates,
    /// `false` if the fallback hierarchy had to relax constraints.
    pub feasible: bool,
    /// Metered cost of this decision (thread-CPU clock).
    pub cost: Seconds,
}

/// The ALERT runtime controller.
#[derive(Debug, Clone)]
pub struct AlertController {
    table: ConfigTable,
    /// The selection fast lane (SoA + pruning), built once from `table`.
    lane: CandidateLane,
    /// Reusable per-decision scratch (probability memo, quality buffer).
    scratch: LaneScratch,
    /// Belief-banded decision memo. *Not* learned state: snapshots do not
    /// carry it, restore/reset rebuild it cold (see `ControllerSnapshot`).
    cache: DecisionCache,
    params: AlertParams,
    xi: SlowdownEstimator,
    idle: IdleRatioEstimator,
    adjuster: GoalAdjuster,
    decisions: u64,
    last_decision_cost: Seconds,
    /// Causal record of the most recent decision. Pure observability —
    /// never read on the decision path; cleared by restore/reset.
    last_trace: Option<DecisionTrace>,
}

impl AlertController {
    /// Creates a controller over a candidate table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter — the Kalman
    /// constants (paper §3.4) and the initial idle ratio (Eq. 8) arrive
    /// from user configuration (`RunSpec` files), so bad values must
    /// surface to the caller instead of aborting the process.
    pub fn new(table: ConfigTable, params: AlertParams) -> Result<Self, String> {
        if !(params.initial_idle_ratio.is_finite()
            && (0.0..=1.0).contains(&params.initial_idle_ratio))
        {
            return Err(format!(
                "initial_idle_ratio must be a ratio in [0,1], got {}",
                params.initial_idle_ratio
            ));
        }
        if let OverheadPolicy::Fixed(t) = params.overhead {
            if !(t.is_finite() && t.get() >= 0.0) {
                return Err(format!("fixed overhead reserve must be >= 0, got {t}"));
            }
        }
        let mut adjuster = GoalAdjuster::new();
        if let OverheadPolicy::Fixed(t) = params.overhead {
            adjuster.record_overhead(t);
        }
        let lane = CandidateLane::build(&table);
        let scratch = LaneScratch::for_lane(&lane);
        Ok(AlertController {
            table,
            lane,
            scratch,
            cache: DecisionCache::new(),
            xi: SlowdownEstimator::with_params(params.kalman)?,
            idle: IdleRatioEstimator::new(params.initial_idle_ratio),
            adjuster,
            params,
            decisions: 0,
            last_decision_cost: Seconds::ZERO,
            last_trace: None,
        })
    }

    /// Announces a group (sentence) of `members` inputs sharing
    /// `deadline` of total budget (paper §3.2 step 2). Invalidates the
    /// decision cache: group membership reshapes effective deadlines.
    pub fn begin_group(&mut self, deadline: Seconds, members: usize) {
        self.adjuster.begin_group(deadline, members);
        self.cache.invalidate();
    }

    /// Steps 2–4: picks the execution target for the next input, using the
    /// goal deadline as the idle-accounting period (ungrouped inputs).
    ///
    /// # Errors
    ///
    /// Returns the goal-validation failure message if `goal` is malformed.
    pub fn decide(&mut self, goal: &Goal) -> Result<Selection, String> {
        self.decide_with_period(goal, goal.deadline)
    }

    /// Steps 2–4 with an explicit input `period` — for grouped tasks the
    /// energy window (word period) differs from the dynamically adjusted
    /// deadline.
    ///
    /// # Errors
    ///
    /// Returns the goal-validation failure message if `goal` is malformed.
    pub fn decide_with_period(
        &mut self,
        goal: &Goal,
        period: Seconds,
    ) -> Result<Selection, String> {
        let clock = DecisionClock::start();
        let effective = self.adjuster.next_deadline(goal.deadline);
        let adjusted = goal.with_deadline(effective);
        let xi = self.xi.distribution();
        let idle_ratio = self.idle.ratio();
        let band = BeliefBand::quantize(xi.mean(), xi.std_dev(), idle_ratio, effective);
        let key = DecisionKey::capture(&xi, idle_ratio, &adjusted, period, self.params.mode);
        let (sel, cache_hit) = match self.cache.lookup(band, &key) {
            // Selection is a pure function of the key; an exact
            // revalidation inside the band replays it verbatim.
            Some(sel) => (sel, true),
            None => {
                let sel = self.lane.select_with_period(
                    &mut self.scratch,
                    &xi,
                    idle_ratio,
                    &adjusted,
                    period,
                    self.params.mode,
                )?;
                self.cache.store(band, key, sel);
                (sel, false)
            }
        };
        let cost = clock.elapsed();
        self.last_decision_cost = cost;
        if matches!(self.params.overhead, OverheadPolicy::Measured) {
            self.adjuster.record_overhead(cost);
        }
        self.decisions += 1;
        // Recorded after the selection is final: the trace is pure
        // observability, nothing on the decision path reads it.
        self.last_trace = Some(DecisionTrace {
            cache_hit,
            belief_mean: xi.mean(),
            belief_std: xi.std_dev(),
            idle_ratio,
            effective_deadline: effective,
            candidates: self.lane.candidate_count(),
            live: self.lane.live_count(),
            selected: sel.candidate,
            estimates: sel.estimates,
            feasible: sel.feasible,
            cost,
        });
        Ok(sel)
    }

    /// Step 1 (for the next input): feeds measurements back.
    pub fn observe(&mut self, obs: &Observation) {
        self.xi.observe(obs.latency, obs.profile_equivalent);
        self.adjuster.consume(obs.latency);
        if let Some(p) = obs.idle_power {
            self.idle.observe(p, obs.idle_cap);
        }
    }

    /// The candidate table.
    pub fn table(&self) -> &ConfigTable {
        &self.table
    }

    /// The slowdown estimator (diagnostics; Fig. 11 data).
    pub fn slowdown(&self) -> &SlowdownEstimator {
        &self.xi
    }

    /// Current idle-power ratio estimate φ.
    pub fn idle_ratio(&self) -> f64 {
        self.idle.ratio()
    }

    /// The selection fast lane (diagnostics: candidate/pruning counts).
    pub fn lane(&self) -> &CandidateLane {
        &self.lane
    }

    /// Decision-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cost of the most recent decision, metered on the thread-CPU clock
    /// where available (wall clock otherwise — see
    /// [`OverheadPolicy::Measured`]).
    pub fn last_decision_cost(&self) -> Seconds {
        self.last_decision_cost
    }

    /// Total decisions made.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Causal record of the most recent decision, if one was made since
    /// construction/restore/reset (pure observability: see
    /// [`DecisionTrace`]).
    pub fn last_trace(&self) -> Option<DecisionTrace> {
        self.last_trace
    }

    /// The parameters in force.
    pub fn params(&self) -> &AlertParams {
        &self.params
    }

    /// Captures the full estimator state for checkpoint/migration.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            xi: self.xi.clone(),
            idle: self.idle.clone(),
            adjuster: self.adjuster.clone(),
            decisions: self.decisions,
            last_decision_cost: self.last_decision_cost,
        }
    }

    /// Restores estimator state from a snapshot. The candidate table and
    /// parameters are untouched: a snapshot only carries *learned* state,
    /// so it can be applied to a freshly built controller of the same
    /// policy (the migration path). The decision cache is a pure memo
    /// over that state — it is not carried, just invalidated and rebuilt
    /// on the next decision (a cold cache cannot change any selection).
    pub fn restore(&mut self, snapshot: &ControllerSnapshot) {
        self.xi = snapshot.xi.clone();
        self.idle = snapshot.idle.clone();
        self.adjuster = snapshot.adjuster.clone();
        self.decisions = snapshot.decisions;
        self.last_decision_cost = snapshot.last_decision_cost;
        self.cache.invalidate();
        self.last_trace = None;
    }

    /// Resets estimators and goal adjustment (new episode).
    pub fn reset(&mut self) {
        self.xi.reset();
        self.idle = IdleRatioEstimator::new(self.params.initial_idle_ratio);
        self.adjuster = GoalAdjuster::new();
        if let OverheadPolicy::Fixed(t) = self.params.overhead {
            self.adjuster.record_overhead(t);
        }
        self.decisions = 0;
        self.last_decision_cost = Seconds::ZERO;
        self.cache.invalidate();
        self.last_trace = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CandidateModel, StagePoint};
    use alert_stats::units::Joules;

    fn table() -> ConfigTable {
        let models = vec![
            CandidateModel::traditional("small", 0.86, 0.005),
            CandidateModel::traditional("big", 0.95, 0.005),
            CandidateModel::anytime(
                "any",
                vec![
                    StagePoint {
                        frac: 0.4,
                        quality: 0.84,
                    },
                    StagePoint {
                        frac: 1.0,
                        quality: 0.94,
                    },
                ],
                0.005,
            ),
        ];
        let powers = vec![Watts(20.0), Watts(45.0)];
        let t_prof = vec![
            vec![Seconds(0.040), Seconds(0.020)],
            vec![Seconds(0.200), Seconds(0.100)],
            vec![Seconds(0.240), Seconds(0.120)],
        ];
        let p_run = vec![
            vec![Watts(18.0), Watts(40.0)],
            vec![Watts(19.0), Watts(42.0)],
            vec![Watts(19.0), Watts(42.0)],
        ];
        ConfigTable::new(models, powers, t_prof, p_run).expect("valid table")
    }

    #[test]
    fn controller_reacts_to_contention_within_few_inputs() {
        let mut ctl = AlertController::new(table(), AlertParams::default()).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        // Quiescent phase: the big model fits the 120 ms deadline.
        let mut sel = ctl.decide(&goal).unwrap();
        for _ in 0..30 {
            let t_prof = ctl.table().t_prof_stage(sel.candidate);
            ctl.observe(&Observation {
                latency: t_prof, // environment at profile speed
                profile_equivalent: t_prof,
                idle_power: Some(Watts(6.0)),
                idle_cap: ctl.table().cap(sel.candidate.power),
            });
            sel = ctl.decide(&goal).unwrap();
        }
        assert_eq!(ctl.table().models()[sel.candidate.model].name, "big");
        // Contention: everything suddenly 1.8x slower.
        for _ in 0..4 {
            let t_prof = ctl.table().t_prof_stage(sel.candidate);
            ctl.observe(&Observation {
                latency: t_prof * 1.8,
                profile_equivalent: t_prof,
                idle_power: Some(Watts(12.0)),
                idle_cap: ctl.table().cap(sel.candidate.power),
            });
            sel = ctl.decide(&goal).unwrap();
        }
        // big@45W now means 180 ms >> 120 ms: must have switched away.
        assert_ne!(
            ctl.table().models()[sel.candidate.model].name,
            "big",
            "controller failed to react to the slowdown"
        );
        assert!(ctl.slowdown().mean() > 1.5);
    }

    #[test]
    fn fixed_overhead_is_reserved_from_deadlines() {
        let params = AlertParams {
            overhead: OverheadPolicy::Fixed(Seconds(0.01)),
            ..Default::default()
        };
        let mut ctl = AlertController::new(table(), params).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let sel = ctl.decide(&goal).unwrap();
        assert!((sel.deadline.get() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn measured_overhead_grows_reserve() {
        let params = AlertParams {
            overhead: OverheadPolicy::Measured,
            ..Default::default()
        };
        let mut ctl = AlertController::new(table(), params).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let first = ctl.decide(&goal).unwrap();
        // First decision sees the full deadline (no overhead yet).
        assert_eq!(first.deadline, Seconds(0.12));
        let _second = ctl.decide(&goal).unwrap();
        assert!(ctl.last_decision_cost().get() > 0.0);
    }

    #[test]
    fn group_budget_tightens_after_slow_member() {
        let mut ctl = AlertController::new(
            table(),
            AlertParams {
                overhead: OverheadPolicy::None,
                ..Default::default()
            },
        )
        .unwrap();
        let goal = Goal::minimize_error(Seconds(9.9), Joules(20.0));
        ctl.begin_group(Seconds(0.4), 2);
        let first = ctl.decide(&goal).unwrap();
        assert!((first.deadline.get() - 0.2).abs() < 1e-12);
        // The first member blows most of the budget.
        ctl.observe(&Observation {
            latency: Seconds(0.3),
            profile_equivalent: Seconds(0.3),
            idle_power: None,
            idle_cap: Watts(45.0),
        });
        let second = ctl.decide(&goal).unwrap();
        assert!(
            (second.deadline.get() - 0.1).abs() < 1e-9,
            "{}",
            second.deadline
        );
    }

    #[test]
    fn reset_restores_initial_belief() {
        let mut ctl = AlertController::new(table(), AlertParams::default()).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let _ = ctl.decide(&goal).unwrap();
        ctl.observe(&Observation {
            latency: Seconds(0.5),
            profile_equivalent: Seconds(0.1),
            idle_power: Some(Watts(20.0)),
            idle_cap: Watts(45.0),
        });
        assert!(ctl.slowdown().mean() > 2.0);
        ctl.reset();
        assert_eq!(ctl.slowdown().mean(), 1.0);
        assert_eq!(ctl.decisions(), 0);
        assert_eq!(ctl.idle_ratio(), 0.3);
    }

    #[test]
    fn mean_only_params_select_ablation_mode() {
        let p = AlertParams::mean_only();
        assert_eq!(p.mode, ProbabilityMode::MeanOnly);
    }

    #[test]
    fn fixed_overhead_exceeding_deadline_never_goes_negative() {
        let params = AlertParams {
            overhead: OverheadPolicy::Fixed(Seconds(0.5)),
            ..Default::default()
        };
        let mut ctl = AlertController::new(table(), params).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        for _ in 0..3 {
            let sel = ctl.decide(&goal).unwrap();
            assert!(sel.deadline.get() > 0.0, "deadline {}", sel.deadline);
        }
    }

    #[test]
    fn measured_overhead_never_yields_negative_deadline() {
        // Even with an absurdly tight goal, the measured-overhead reserve
        // must clamp at the epsilon floor, not push deadlines negative.
        let params = AlertParams {
            overhead: OverheadPolicy::Measured,
            ..Default::default()
        };
        let mut ctl = AlertController::new(table(), params).unwrap();
        let goal = Goal::minimize_error(Seconds(1e-7), Joules(20.0));
        for _ in 0..20 {
            let sel = ctl.decide(&goal).unwrap();
            assert!(sel.deadline.get() > 0.0, "deadline {}", sel.deadline);
            let t_prof = ctl.table().t_prof_stage(sel.candidate);
            ctl.observe(&Observation {
                latency: t_prof,
                profile_equivalent: t_prof,
                idle_power: None,
                idle_cap: ctl.table().cap(sel.candidate.power),
            });
        }
    }

    #[test]
    fn snapshot_restore_roundtrips_learned_state() {
        let mut ctl = AlertController::new(table(), AlertParams::default()).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let mut sel = ctl.decide(&goal).unwrap();
        for _ in 0..25 {
            let t_prof = ctl.table().t_prof_stage(sel.candidate);
            ctl.observe(&Observation {
                latency: t_prof * 1.4,
                profile_equivalent: t_prof,
                idle_power: Some(Watts(9.0)),
                idle_cap: ctl.table().cap(sel.candidate.power),
            });
            sel = ctl.decide(&goal).unwrap();
        }
        let snap = ctl.snapshot();

        // A fresh controller restored from the snapshot behaves
        // identically from here on.
        let mut restored = AlertController::new(table(), AlertParams::default()).unwrap();
        restored.restore(&snap);
        assert_eq!(restored.slowdown().mean(), ctl.slowdown().mean());
        assert_eq!(restored.idle_ratio(), ctl.idle_ratio());
        assert_eq!(restored.decisions(), ctl.decisions());
        let a = ctl.decide(&goal).unwrap();
        let b = restored.decide(&goal).unwrap();
        assert_eq!(a.candidate, b.candidate);
        assert_eq!(a.deadline, b.deadline);
    }

    #[test]
    fn last_trace_records_the_decision_causally() {
        let mut ctl = AlertController::new(table(), AlertParams::default()).unwrap();
        assert!(ctl.last_trace().is_none(), "no decision yet, no trace");
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let sel = ctl.decide(&goal).unwrap();
        let trace = ctl.last_trace().expect("decision leaves a trace");
        assert!(!trace.cache_hit, "first decision cannot hit the cache");
        assert_eq!(trace.selected, sel.candidate);
        assert_eq!(trace.estimates, sel.estimates);
        assert_eq!(trace.feasible, sel.feasible);
        assert_eq!(trace.candidates, ctl.lane().candidate_count());
        assert_eq!(trace.live, ctl.lane().live_count());
        assert_eq!(trace.belief_mean, ctl.slowdown().mean());
        assert!(trace.cost.get() > 0.0);
        // A repeat under the same belief replays from the cache, and the
        // trace says so.
        let again = ctl.decide(&goal).unwrap();
        let trace2 = ctl.last_trace().unwrap();
        assert!(trace2.cache_hit);
        assert_eq!(again.candidate, sel.candidate);
        // Reset and restore both clear the trace.
        ctl.reset();
        assert!(ctl.last_trace().is_none());
        let _ = ctl.decide(&goal).unwrap();
        let snap = ctl.snapshot();
        let mut other = AlertController::new(table(), AlertParams::default()).unwrap();
        let _ = other.decide(&goal).unwrap();
        other.restore(&snap);
        assert!(other.last_trace().is_none());
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut ctl = AlertController::new(table(), AlertParams::default()).unwrap();
        let goal = Goal::minimize_error(Seconds(0.12), Joules(20.0));
        let _ = ctl.decide(&goal).unwrap();
        ctl.observe(&Observation {
            latency: Seconds(0.15),
            profile_equivalent: Seconds(0.1),
            idle_power: Some(Watts(7.0)),
            idle_cap: Watts(45.0),
        });
        ctl.begin_group(Seconds(0.4), 3);
        let snap = ctl.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ControllerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
