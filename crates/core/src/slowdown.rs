//! The global slowdown factor ξ (paper §3.3 Idea 1, §3.4 Eq. 5).
//!
//! ξ is "a random variable relating the current runtime environment to a
//! nominal profiling environment": after each input, the ratio of observed
//! latency to profiled latency — *whatever* model and power setting were
//! used — feeds one adaptive Kalman filter. The mean rescales the entire
//! profile table; the variance measures volatility. This single scalar is
//! what lets ALERT predict all |D|×|P| configurations from the history of
//! whichever few were recently run.

use alert_stats::kalman::{AdaptiveKalman, AdaptiveKalmanParams};
use alert_stats::normal::Normal;
use alert_stats::units::Seconds;
use serde::{Deserialize, Serialize};

/// Smoothing factor of the innovation-dispersion tracker.
const INNOVATION_EWMA_BETA: f64 = 0.85;

/// Initial innovation variance (σ = 10%): conservative until real
/// observations arrive.
const INNOVATION_VAR0: f64 = 0.01;

/// Estimator of the global slowdown factor.
///
/// The *mean* comes from the paper's adaptive Kalman filter (Eq. 5)
/// verbatim. For the *spread*, the filter's state variance alone
/// under-represents the per-input dispersion the probabilistic estimates
/// (Eqs. 6/7/12) must price — the filter smooths with gain `K < 1`, so
/// its re-estimated process noise scales with `(K·y)²`, not `y²`. We
/// therefore also track the raw innovation second moment with an EWMA and
/// use the *wider* of the two as σ — the same innovation-based adaptation
/// family as the paper's reference (Akhlaghi et al.), applied to the
/// predictive spread instead of the process noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownEstimator {
    filter: AdaptiveKalman,
    innovation_var: f64,
}

impl SlowdownEstimator {
    /// Creates the estimator with the paper's Kalman constants.
    pub fn new() -> Self {
        // lint:allow(no-panic): paper-default constants are compile-time fixed and covered by tests; failure is unreachable
        Self::with_params(AdaptiveKalmanParams::default()).expect("paper defaults are valid")
    }

    /// Creates the estimator with explicit filter parameters (paper §3.6
    /// suggests raising `Q⁽⁰⁾` for aberrant latency distributions).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter (the
    /// parameters usually come from user configuration).
    pub fn with_params(params: AdaptiveKalmanParams) -> Result<Self, String> {
        Ok(SlowdownEstimator {
            filter: AdaptiveKalman::new(params)?,
            innovation_var: INNOVATION_VAR0,
        })
    }

    /// Feeds one observation: the measured execution time of the work that
    /// ran, and the profiled time of that same work.
    ///
    /// Returns the slowdown sample, or `None` when the observation is
    /// degenerate (no work executed) and was ignored.
    pub fn observe(&mut self, measured: Seconds, profiled: Seconds) -> Option<f64> {
        if !(measured.is_finite() && profiled.is_finite()) || profiled.get() <= 0.0 {
            return None;
        }
        let ratio = measured / profiled;
        if !(ratio.is_finite() && ratio > 0.0) {
            return None;
        }
        let innovation = ratio - self.filter.mean();
        // Winsorize at 3σ before accumulating: a single tail event (the
        // fat-tailed latency outliers of paper Fig. 4) must not inflate
        // the dispersion estimate for the next dozen inputs. Genuine
        // regime shifts still grow σ geometrically — the clamp window
        // widens each step — so reaction stays within a few inputs.
        let sigma_now = self.std_dev().max(1e-3);
        let w = innovation.clamp(-3.0 * sigma_now, 3.0 * sigma_now);
        self.innovation_var =
            INNOVATION_EWMA_BETA * self.innovation_var + (1.0 - INNOVATION_EWMA_BETA) * w * w;
        // Feed the realized dispersion back as the measurement noise: in
        // quiet phases this equals the paper's R; in noisy phases it
        // keeps the gain from chasing per-input jitter while the Q
        // adaptation still snaps the mean onto genuine regime changes.
        let r = self.filter.params().r.max(self.innovation_var);
        self.filter.update_with_noise(ratio, r);
        Some(ratio)
    }

    /// Current mean μ⁽ⁿ⁾ of ξ.
    pub fn mean(&self) -> f64 {
        self.filter.mean()
    }

    /// Current predictive standard deviation of ξ — the volatility
    /// signal: the wider of the filter's state deviation and the realized
    /// innovation dispersion.
    pub fn std_dev(&self) -> f64 {
        self.filter.variance().max(self.innovation_var).sqrt()
    }

    /// The distribution ξ ~ N(μ⁽ⁿ⁾, σ²) consumed by Eqs. 6, 7, 12.
    pub fn distribution(&self) -> Normal {
        Normal::new(self.filter.mean(), self.std_dev())
    }

    /// Number of observations consumed.
    pub fn observations(&self) -> u64 {
        self.filter.steps()
    }

    /// Resets to the initial state (new episode).
    pub fn reset(&mut self) {
        self.filter.reset();
        self.innovation_var = INNOVATION_VAR0;
    }

    /// Read-only access to the underlying filter (diagnostics).
    pub fn filter(&self) -> &AdaptiveKalman {
        &self.filter
    }

    /// The realized innovation variance tracker (diagnostics).
    pub fn innovation_variance(&self) -> f64 {
        self.innovation_var
    }
}

impl Default for SlowdownEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_nominal() {
        let s = SlowdownEstimator::new();
        assert_eq!(s.mean(), 1.0);
        assert!(s.std_dev() > 0.0);
        assert_eq!(s.observations(), 0);
    }

    #[test]
    fn tracks_contention_slowdown() {
        let mut s = SlowdownEstimator::new();
        // Environment is 1.5x slower than profiling, observed through
        // different models (different absolute latencies, same ratio).
        for i in 0..100 {
            let t_prof = Seconds(0.02 + (i % 5) as f64 * 0.03);
            let measured = t_prof * 1.5;
            let r = s.observe(measured, t_prof).unwrap();
            assert!((r - 1.5).abs() < 1e-12);
        }
        assert!((s.mean() - 1.5).abs() < 0.01);
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut s = SlowdownEstimator::new();
        assert!(s.observe(Seconds(0.1), Seconds(0.0)).is_none());
        assert!(s.observe(Seconds(f64::NAN), Seconds(0.1)).is_none());
        assert!(s.observe(Seconds(0.0), Seconds(0.1)).is_none());
        assert_eq!(s.observations(), 0);
    }

    #[test]
    fn variance_rises_when_environment_oscillates() {
        let mut s = SlowdownEstimator::new();
        for _ in 0..50 {
            s.observe(Seconds(0.1), Seconds(0.1));
        }
        let calm = s.std_dev();
        for i in 0..50 {
            let f = if i % 2 == 0 { 0.08 } else { 0.19 };
            s.observe(Seconds(f), Seconds(0.1));
        }
        assert!(s.std_dev() > calm, "volatility must raise σ");
    }

    #[test]
    fn distribution_reflects_state() {
        let mut s = SlowdownEstimator::new();
        s.observe(Seconds(0.15), Seconds(0.1));
        let d = s.distribution();
        assert!((d.mean() - s.mean()).abs() < 1e-15);
        assert!((d.std_dev() - s.std_dev()).abs() < 1e-15);
    }

    #[test]
    fn reset_clears_history() {
        let mut s = SlowdownEstimator::new();
        s.observe(Seconds(0.3), Seconds(0.1));
        s.reset();
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.observations(), 0);
    }
}
