//! Shared-deadline budget tracking (harness-side goal adjustment).
//!
//! For grouped tasks (NLP1: the words of a sentence share one sentence
//! deadline, paper §3.2 step 2) every scheme — not just ALERT — must know
//! the effective per-input deadline: the remaining group budget divided by
//! the remaining members. The harness owns this computation so all schemes
//! are treated identically; ALERT additionally reserves its own overhead
//! internally.

use alert_stats::units::Seconds;
use alert_workload::GroupPos;
use serde::{Deserialize, Serialize};

/// Tracks the remaining budget of the current group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetTracker {
    remaining: Seconds,
    members_left: usize,
    in_group: bool,
}

impl BudgetTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        BudgetTracker {
            remaining: Seconds::ZERO,
            members_left: 0,
            in_group: false,
        }
    }

    /// Computes the effective deadline of the next input and claims its
    /// slot. `per_input_deadline` is the goal's deadline (per input); a
    /// group's total budget is `per_input_deadline × group_len`, granted
    /// when its first member arrives.
    pub fn next_deadline(
        &mut self,
        per_input_deadline: Seconds,
        group: Option<GroupPos>,
    ) -> Seconds {
        match group {
            None => per_input_deadline,
            Some(g) => {
                if g.member_idx == 0 {
                    self.remaining = per_input_deadline * g.group_len as f64;
                    self.members_left = g.group_len;
                    self.in_group = true;
                }
                let left = self.members_left.max(1);
                let d = self.remaining / left as f64;
                self.members_left = self.members_left.saturating_sub(1);
                Seconds(d.get().max(1e-6))
            }
        }
    }

    /// Records the latency the dispatched input actually consumed.
    pub fn consume(&mut self, latency: Seconds) {
        if self.in_group {
            self.remaining = Seconds((self.remaining - latency).get().max(0.0));
            if self.members_left == 0 {
                self.in_group = false;
            }
        }
    }

    /// Remaining budget of the active group (zero outside groups).
    pub fn remaining(&self) -> Seconds {
        self.remaining
    }

    /// `true` while a group's budget is being consumed — i.e. at least
    /// one member's deadline has been claimed and members remain.
    ///
    /// Invariant: after claiming member `k` of an `n`-member group, the
    /// tracker is in-group iff `k < n - 1`. Checkpoint restore relies on
    /// this to detect snapshots whose tracker state was lost (a reset
    /// tracker mid-sentence would silently clamp every remaining deadline
    /// of the group to the 1 µs floor).
    pub fn in_group(&self) -> bool {
        self.in_group
    }

    /// Members of the active group still to be claimed (zero outside
    /// groups).
    pub fn members_left(&self) -> usize {
        self.members_left
    }
}

impl Default for BudgetTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(member: usize, len: usize) -> Option<GroupPos> {
        Some(GroupPos {
            group_idx: 0,
            member_idx: member,
            group_len: len,
        })
    }

    #[test]
    fn ungrouped_passthrough() {
        let mut b = BudgetTracker::new();
        assert_eq!(b.next_deadline(Seconds(0.1), None), Seconds(0.1));
        b.consume(Seconds(5.0));
        assert_eq!(b.next_deadline(Seconds(0.1), None), Seconds(0.1));
    }

    #[test]
    fn group_budget_shrinks_with_slow_members() {
        let mut b = BudgetTracker::new();
        // 4 members × 0.1 s = 0.4 s of budget.
        let d0 = b.next_deadline(Seconds(0.1), pos(0, 4));
        assert!((d0.get() - 0.1).abs() < 1e-12);
        b.consume(Seconds(0.25)); // overrun
        let d1 = b.next_deadline(Seconds(0.1), pos(1, 4));
        assert!((d1.get() - 0.05).abs() < 1e-12, "d1 = {d1}");
        b.consume(Seconds(0.05));
        let d2 = b.next_deadline(Seconds(0.1), pos(2, 4));
        assert!((d2.get() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fast_members_grow_budget() {
        let mut b = BudgetTracker::new();
        let _ = b.next_deadline(Seconds(0.1), pos(0, 2));
        b.consume(Seconds(0.02));
        let d1 = b.next_deadline(Seconds(0.1), pos(1, 2));
        assert!((d1.get() - 0.18).abs() < 1e-12);
    }

    #[test]
    fn new_group_resets_budget() {
        let mut b = BudgetTracker::new();
        let _ = b.next_deadline(Seconds(0.1), pos(0, 2));
        b.consume(Seconds(1.0)); // blow everything
        let _ = b.next_deadline(Seconds(0.1), pos(1, 2));
        b.consume(Seconds(1.0));
        // Next sentence starts fresh.
        let d = b.next_deadline(Seconds(0.1), pos(0, 3));
        assert!((d.get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn blown_budget_floors_at_epsilon() {
        let mut b = BudgetTracker::new();
        let _ = b.next_deadline(Seconds(0.1), pos(0, 3));
        b.consume(Seconds(10.0));
        let d = b.next_deadline(Seconds(0.1), pos(1, 3));
        assert!(d.get() > 0.0 && d.get() <= 1e-6);
    }

    #[test]
    fn zero_length_group_degrades_to_floor() {
        // A malformed stream could announce a zero-member group; the
        // tracker must stay positive and leave no sticky group state.
        let mut b = BudgetTracker::new();
        let d = b.next_deadline(Seconds(0.1), pos(0, 0));
        assert!(d.get() > 0.0 && d.get() <= 1e-6, "d = {d}");
        b.consume(Seconds(0.05));
        // Next, a normal ungrouped input is unaffected.
        assert_eq!(b.next_deadline(Seconds(0.1), None), Seconds(0.1));
        // And a fresh, well-formed group starts with its full budget.
        let d = b.next_deadline(Seconds(0.1), pos(0, 2));
        assert!((d.get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn deadline_fully_consumed_by_earlier_members() {
        // Earlier members consume *exactly* the whole group budget: later
        // members get the epsilon floor, never zero or negative.
        let mut b = BudgetTracker::new();
        let _ = b.next_deadline(Seconds(0.1), pos(0, 4)); // budget 0.4
        b.consume(Seconds(0.4));
        for member in 1..4 {
            let d = b.next_deadline(Seconds(0.1), pos(member, 4));
            assert!(d.get() > 0.0, "member {member} got non-positive {d}");
            assert!(d.get() <= 1e-6, "member {member} got slack {d}");
            b.consume(Seconds(0.0));
        }
    }

    #[test]
    fn remaining_is_zero_outside_groups() {
        let mut b = BudgetTracker::new();
        assert_eq!(b.remaining(), Seconds::ZERO);
        let _ = b.next_deadline(Seconds(0.1), None);
        b.consume(Seconds(0.5));
        assert_eq!(b.remaining(), Seconds::ZERO);
    }

    #[test]
    fn serde_roundtrip_preserves_mid_group_state() {
        let mut b = BudgetTracker::new();
        let _ = b.next_deadline(Seconds(0.1), pos(0, 3));
        b.consume(Seconds(0.05));
        let json = serde_json::to_string(&b).unwrap();
        let back: BudgetTracker = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        // The restored tracker continues the group identically.
        let mut b2 = back;
        assert_eq!(
            b.next_deadline(Seconds(0.1), pos(1, 3)),
            b2.next_deadline(Seconds(0.1), pos(1, 3))
        );
    }
}
