//! The episode harness: the per-input stepping engine and the one-shot
//! episode adapter.
//!
//! [`SessionEngine`] plays the role of the paper's runtime shell around
//! the scheduler for *one* stream: it computes effective deadlines
//! (shared sentence budgets), dispatches inputs, executes the chosen
//! configuration on the simulated platform, meters energy, measures idle
//! power, and accumulates the per-input records that the Table 4
//! accounting consumes. The engine is *resumable* — it advances one
//! input per [`SessionEngine::step`] call — which is what lets the
//! session runtime ([`crate::runtime`]) multiplex many concurrent
//! streams and checkpoint them mid-flight.
//!
//! [`run_episode`] is the original one-shot API, now a thin adapter:
//! drive a fresh engine to exhaustion and fold the records into an
//! [`Episode`]. Interleaved sessions and sequential episodes are
//! bit-identical by construction because both run exactly this code.

use crate::budget::BudgetTracker;
use crate::env::{EnvError, EpisodeEnv};
use crate::scheduler::{Feedback, InputContext, Scheduler};
use alert_models::ModelFamily;
use alert_stats::units::Seconds;
use alert_workload::{EpisodeSummary, Goal, InputRecord, InputStream};
use serde::{Deserialize, Serialize};

/// Errors surfaced by the stepping engine (the environment no-panic
/// path: a scheduler handing back a configuration the platform cannot
/// execute is reported, not unwrapped).
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// The scheduler picked a model whose footprint the platform cannot
    /// host.
    ModelDoesNotFit {
        /// Scheme that made the decision.
        scheme: String,
        /// Model that does not fit.
        model: String,
        /// Platform it was dispatched to.
        platform: String,
    },
    /// The environment could not realize the decision (infeasible cap).
    Env(EnvError),
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StepError::ModelDoesNotFit {
                scheme,
                model,
                platform,
            } => write!(f, "{scheme}: model {model} does not fit {platform}"),
            StepError::Env(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StepError {}

impl From<EnvError> for StepError {
    fn from(e: EnvError) -> Self {
        StepError::Env(e)
    }
}

/// The outcome of one (scheduler, episode) run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Episode {
    /// Scheme name.
    pub scheme: String,
    /// Per-input records, in order.
    pub records: Vec<InputRecord>,
    /// Aggregated summary (post-warm-up).
    pub summary: EpisodeSummary,
}

/// The resumable per-stream stepping engine: cursor, shared-deadline
/// budget, accumulated records and scheduler overhead.
///
/// All fields are serializable so a session can be checkpointed between
/// steps and resumed elsewhere (the scheduler's own state travels
/// separately, via [`Scheduler::controller_snapshot`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionEngine {
    budget: BudgetTracker,
    records: Vec<InputRecord>,
    overhead: Seconds,
    cursor: usize,
}

impl SessionEngine {
    /// A fresh engine positioned before the first input.
    pub fn new() -> Self {
        SessionEngine {
            budget: BudgetTracker::new(),
            records: Vec::new(),
            overhead: Seconds::ZERO,
            cursor: 0,
        }
    }

    /// Index of the next input to dispatch.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// `true` once every input of `stream` has been processed.
    pub fn is_finished(&self, stream: &InputStream) -> bool {
        self.cursor >= stream.len()
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[InputRecord] {
        &self.records
    }

    /// Total scheduler overhead accumulated so far (thread-CPU decision
    /// time; see [`Scheduler::last_decision_cost`]).
    pub fn overhead(&self) -> Seconds {
        self.overhead
    }

    /// The shared-deadline budget tracker (checkpoint validation: a
    /// session resumed mid-sentence must arrive with its group budget
    /// intact, see `Runtime::restore_session`).
    pub fn budget(&self) -> &BudgetTracker {
        &self.budget
    }

    /// Processes the next input of `stream` through `scheduler`: sync
    /// the scenario's effective goal → decide → execute on the frozen
    /// environment (with any scripted cap ceiling applied) → meter →
    /// observe. Returns a reference to the accumulated record (cloning
    /// is the caller's choice), or `Ok(None)` when the stream is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Fails when the scheduler picks a model that does not fit the
    /// platform or a cap the platform cannot program (scheduler bugs,
    /// reported instead of unwound). Such an error is **terminal for the
    /// session**: the scheduler was already consulted and the
    /// shared-deadline budget claimed for this input (only the cursor
    /// does not advance), so do not step the engine again — surface the
    /// error and close the session, as the runtime does.
    pub fn step(
        &mut self,
        scheduler: &mut dyn Scheduler,
        env: &EpisodeEnv,
        family: &ModelFamily,
        stream: &InputStream,
    ) -> Result<Option<&InputRecord>, StepError> {
        let i = self.cursor;
        let Some(input) = stream.inputs().get(i) else {
            return Ok(None);
        };

        // The requirement in force at this dispatch (base goal plus any
        // scripted goal changes) — synced every step so restored
        // checkpoints re-announce it deterministically.
        let goal = *env.goal_of(i);
        scheduler.sync_goal(&goal);

        let deadline = self.budget.next_deadline(goal.deadline, input.group);
        let ctx = InputContext {
            index: i,
            deadline,
            period: env.period(i),
            group: input.group,
        };
        let decision = scheduler.decide(&ctx);
        self.overhead += scheduler.last_decision_cost();

        let profile = &family.models()[decision.model];
        let device_platform = env.platform_on(decision.device);
        if !device_platform.supports_footprint(profile.footprint_gb) {
            return Err(StepError::ModelDoesNotFit {
                scheme: scheduler.name().to_string(),
                model: profile.name.clone(),
                platform: device_platform.id().to_string(),
            });
        }
        // The environment silently clamps the cap to any scripted
        // ceiling; the scheduler keeps billing against the cap it
        // *requested* and experiences the throttle as slowdown (the
        // cap-change robustness axis, §5). Records likewise report the
        // programmed cap; energy metering uses the physical one. All
        // paths go through the decision's device (`0` for every
        // single-platform scheme, making this the historical code path).
        let result = env.realize_on(decision.device, i, profile, decision.cap, decision.stop)?;
        self.cursor += 1;
        let quality = result.quality_by(deadline, profile.fail_quality);
        let energy = env.period_energy_on(decision.device, i, profile, decision.cap, &result);
        let idle_power = if result.latency < env.period(i) {
            Some(env.idle_draw_on(decision.device, i, decision.cap))
        } else {
            None
        };

        self.records.push(InputRecord {
            index: i,
            device: decision.device,
            model: profile.name.clone(),
            cap: decision.cap,
            latency: result.latency,
            deadline,
            goal_deadline: goal.deadline,
            period: env.period(i),
            scale: env.realization(i).scale,
            min_quality: goal.min_quality,
            energy_budget: goal.energy_budget,
            quality,
            energy,
            slowdown: result.observed_slowdown(),
            contention_active: env.active(i),
            warmup: i < stream.warmup_len(),
        });

        scheduler.observe(&Feedback {
            index: i,
            decision,
            quality,
            energy,
            idle_power,
            deadline,
            result: result.clone(),
        });
        self.budget.consume(result.latency);
        Ok(self.records.last())
    }

    /// Folds the accumulated records into an [`Episode`], consuming the
    /// engine (the records move, they are not cloned).
    pub fn finish(self, scheme: &str, goal: &Goal) -> Episode {
        let mut summary = EpisodeSummary::from_records(&self.records, goal);
        summary.overhead = self.overhead;
        Episode {
            scheme: scheme.to_string(),
            records: self.records,
            summary,
        }
    }
}

impl Default for SessionEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `scheduler` over the whole episode (the one-shot adapter over
/// [`SessionEngine`]).
///
/// # Errors
///
/// Fails when the scheduler picks a model or cap the platform cannot
/// execute (see [`SessionEngine::step`]).
pub fn run_episode(
    scheduler: &mut dyn Scheduler,
    env: &EpisodeEnv,
    family: &ModelFamily,
    stream: &InputStream,
    goal: &Goal,
) -> Result<Episode, StepError> {
    let mut engine = SessionEngine::new();
    while engine.step(scheduler, env, family, stream)?.is_some() {}
    Ok(engine.finish(scheduler.name(), goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::AlertScheduler;
    use crate::app_only::AppOnly;
    use crate::oracle::{Oracle, OracleStatic};
    use crate::sys_only::SysOnly;
    use alert_platform::Platform;
    use alert_stats::units::Joules;
    use alert_workload::{Scenario, TaskId};
    use std::sync::Arc;

    struct Fixture {
        env: Arc<EpisodeEnv>,
        family: ModelFamily,
        platform: Platform,
        stream: InputStream,
        goal: Goal,
    }

    fn fixture(goal: Goal, scenario: Scenario, n: usize) -> Fixture {
        let platform = Platform::cpu1();
        let family = ModelFamily::image_classification();
        let stream = InputStream::generate(TaskId::Img2, n, 5);
        let env = Arc::new(EpisodeEnv::build(&platform, &scenario, &stream, &goal, 31).unwrap());
        Fixture {
            env,
            family,
            platform,
            stream,
            goal,
        }
    }

    #[test]
    fn alert_runs_clean_episode_default_env() {
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.90),
            Scenario::default_env(),
            200,
        );
        let mut s = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let ep = run_episode(&mut s, &f.env, &f.family, &f.stream, &f.goal).unwrap();
        assert_eq!(ep.records.len(), 200);
        assert_eq!(ep.summary.measured, 180);
        assert!(
            ep.summary.violation_rate() < 0.05,
            "violations: {}",
            ep.summary.violation_rate()
        );
        assert!(ep.summary.avg_quality >= 0.90 - 0.01);
    }

    #[test]
    fn alert_energy_between_oracle_and_app_only() {
        // The headline ordering of Fig. 7 on a single setting:
        // Oracle ≤ ALERT < App-only on energy.
        let f = fixture(
            Goal::minimize_energy(Seconds(0.4), 0.90),
            Scenario::default_env(),
            250,
        );
        let run = |s: &mut dyn Scheduler| {
            run_episode(s, &f.env, &f.family, &f.stream, &f.goal)
                .unwrap()
                .summary
                .avg_energy
                .get()
        };
        let mut alert = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let mut oracle = Oracle::new(f.env.clone(), f.family.clone(), f.goal);
        let mut app = AppOnly::new(&f.family, &f.platform);
        let e_alert = run(&mut alert);
        let e_oracle = run(&mut oracle);
        let e_app = run(&mut app);
        assert!(
            e_oracle <= e_alert * 1.02,
            "oracle {e_oracle} vs alert {e_alert}"
        );
        assert!(
            e_app > e_alert * 1.2,
            "app-only {e_app} should waste energy vs alert {e_alert}"
        );
    }

    #[test]
    fn sys_only_violates_accuracy_floor() {
        // Accuracy floor above the fastest model's quality: Sys-only is
        // structurally unable to meet it.
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.93),
            Scenario::default_env(),
            150,
        );
        let mut sys = SysOnly::new(&f.family, &f.platform, f.goal);
        let ep = run_episode(&mut sys, &f.env, &f.family, &f.stream, &f.goal).unwrap();
        assert!(
            ep.summary.disqualified(),
            "sys-only should violate the 0.93 floor with a 0.855 model"
        );
    }

    #[test]
    fn alert_tracks_contention_with_bounded_violations() {
        let f = fixture(
            Goal::minimize_error(Seconds(0.4), Joules(18.0)),
            Scenario::memory_env(9),
            300,
        );
        let mut s = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let ep = run_episode(&mut s, &f.env, &f.family, &f.stream, &f.goal).unwrap();
        assert!(
            ep.summary.violation_rate() <= 0.10,
            "violation rate {} too high under contention",
            ep.summary.violation_rate()
        );
    }

    #[test]
    fn oracle_static_is_a_valid_baseline() {
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.90),
            Scenario::default_env(),
            150,
        );
        let mut st = OracleStatic::new(f.env.clone(), f.family.clone(), &f.stream, f.goal);
        let ep = run_episode(&mut st, &f.env, &f.family, &f.stream, &f.goal).unwrap();
        assert!(!ep.summary.disqualified());
        // Static never changes its configuration.
        let first = (&ep.records[0].model, ep.records[0].cap);
        for r in &ep.records {
            assert_eq!((&r.model, r.cap), first);
        }
    }

    #[test]
    fn grouped_episode_respects_sentence_budgets() {
        let platform = Platform::cpu1();
        let family = ModelFamily::sentence_prediction();
        let stream = InputStream::generate(TaskId::Nlp1, 400, 5);
        let goal = Goal::minimize_error(Seconds(0.12), Joules(6.0));
        let env = Arc::new(
            EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 31).unwrap(),
        );
        let mut s = AlertScheduler::standard(&family, &platform, goal).unwrap();
        let ep = run_episode(&mut s, &env, &family, &stream, &goal).unwrap();
        assert_eq!(ep.records.len(), 400);
        // Deadlines inside a sentence vary with consumption but stay
        // positive and bounded by a generous multiple of the base.
        for r in &ep.records {
            assert!(r.deadline.get() > 0.0);
            assert!(r.deadline.get() < 0.12 * 60.0);
        }
        assert!(
            ep.summary.violation_rate() < 0.10,
            "nlp violations: {}",
            ep.summary.violation_rate()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.90),
            Scenario::compute_env(17),
            120,
        );
        let run = || {
            let mut s = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
            run_episode(&mut s, &f.env, &f.family, &f.stream, &f.goal).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.model, y.model);
            assert_eq!(x.cap, y.cap);
            assert!((x.latency.get() - y.latency.get()).abs() < 1e-15);
            assert!((x.energy.get() - y.energy.get()).abs() < 1e-15);
        }
    }

    #[test]
    fn stepped_engine_matches_one_shot_run() {
        // The resumable engine and the one-shot adapter are the same code
        // path; spot-check the equivalence anyway.
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.90),
            Scenario::memory_env(4),
            100,
        );
        let mut one = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let ep = run_episode(&mut one, &f.env, &f.family, &f.stream, &f.goal).unwrap();

        let mut stepped = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let mut engine = SessionEngine::new();
        let mut n = 0;
        while let Some(r) = engine
            .step(&mut stepped, &f.env, &f.family, &f.stream)
            .unwrap()
        {
            assert_eq!(r.index, n);
            n += 1;
        }
        assert!(engine.is_finished(&f.stream));
        assert_eq!(n, 100);
        let ep2 = engine.finish(stepped.name(), &f.goal);
        assert_eq!(ep.scheme, ep2.scheme);
        assert_eq!(ep.records, ep2.records);
        // The summaries agree on everything but the measured scheduler
        // overhead (which is nondeterministic by nature).
        assert_eq!(ep.summary.measured, ep2.summary.measured);
        assert_eq!(ep.summary.violations, ep2.summary.violations);
        assert_eq!(ep.summary.avg_energy, ep2.summary.avg_energy);
        assert_eq!(ep.summary.avg_quality, ep2.summary.avg_quality);
    }

    #[test]
    fn engine_step_past_end_is_none_and_stable() {
        let f = fixture(
            Goal::minimize_energy(Seconds(0.5), 0.90),
            Scenario::default_env(),
            10,
        );
        let mut s = AlertScheduler::standard(&f.family, &f.platform, f.goal).unwrap();
        let mut engine = SessionEngine::new();
        while engine
            .step(&mut s, &f.env, &f.family, &f.stream)
            .unwrap()
            .is_some()
        {}
        assert!(engine
            .step(&mut s, &f.env, &f.family, &f.stream)
            .unwrap()
            .is_none());
        assert_eq!(engine.cursor(), 10);
        assert_eq!(engine.records().len(), 10);
    }
}
