//! The session runtime: long-lived, concurrent, checkpointable serving.
//!
//! The original harness was one-shot: `run_episode` drove exactly one
//! stream to completion and returned. A [`Runtime`] instead *owns* any
//! number of independent [`SessionId`]-addressed sessions, each a
//! long-lived handle over (stream, frozen environment, goal, scheduler):
//!
//! * [`Runtime::open_session`] builds a session from a serializable
//!   [`SessionSpec`] (scenario + seed + goal + optional policy override);
//! * [`Runtime::submit`] advances one session by exactly one input,
//!   emitting an [`EpisodeEvent`] to the configured [`EventSink`];
//! * [`Runtime::close`] folds a session into the classic [`Episode`].
//!
//! Sessions are fully independent — each owns its scheduler state and
//! deadline budget — so any interleaving of `submit` calls across
//! sessions produces records bit-identical to running each stream
//! standalone (`tests/runtime_sessions.rs` proves this for 64 sessions).
//!
//! Sessions opened from a [`SessionSpec`] can also be *checkpointed*
//! ([`Runtime::snapshot_session`]) and *restored* — in the same runtime
//! or a different one (migration): the snapshot carries the engine state
//! (cursor, budget, records) plus the scheduler's learned state via
//! [`alert_core::ControllerSnapshot`], and the environment is rebuilt
//! deterministically from the spec.
//!
//! The runtime's own configuration round-trips through [`RunSpec`]
//! (serde), so a whole run — platform, family, policy, params — can be
//! stored in a file and rebuilt with [`RuntimeBuilder::from_spec`].
//!
//! Draining scales with cores: [`Runtime::drain_parallel`] partitions
//! the open sessions onto worker shards, and
//! [`RuntimeBuilder::build_sharded`] builds a long-lived multi-worker
//! [`ShardedRuntime`](crate::executor::ShardedRuntime) — both
//! bit-identical per session to the serial drain (see
//! `DESIGN.md` §"Threading model").

use crate::env::EpisodeEnv;
use crate::executor;
use crate::experiment::FamilyKind;
use crate::harness::{Episode, SessionEngine, StepError};
use crate::registry::{PolicyContext, PolicyRegistry, RegistryError, UnknownPolicy};
use crate::scheduler::Scheduler;
use alert_core::alert::AlertParams;
use alert_core::ControllerSnapshot;
use alert_models::ModelFamily;
use alert_platform::{Platform, PlatformId};
use alert_stats::units::Watts;
use alert_workload::{
    EpisodeSummary, Goal, InputRecord, InputStream, Scenario, SessionId, StreamId, TaskId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The candidate family of a run, in serializable form: either one of
/// the paper's two named families or an explicit custom family with its
/// driving task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FamilySpec {
    /// A named paper family (Sparse-ResNet image / RNN sentence).
    Kind(FamilyKind),
    /// An explicit candidate family.
    Custom {
        /// The candidate models.
        family: ModelFamily,
        /// The task whose input statistics drive the streams.
        task: TaskId,
    },
}

impl FamilySpec {
    /// Materializes the candidate family.
    pub fn family(&self) -> ModelFamily {
        match self {
            FamilySpec::Kind(k) => k.family(),
            FamilySpec::Custom { family, .. } => family.clone(),
        }
    }

    /// The task generating the input streams.
    pub fn task(&self) -> TaskId {
        match self {
            FamilySpec::Kind(k) => k.task(),
            FamilySpec::Custom { task, .. } => *task,
        }
    }
}

/// The full serializable configuration of a [`Runtime`]. Written to a
/// file, a `RunSpec` is everything needed to rebuild the same runtime
/// (modulo custom policies, which must be re-registered by name).
///
/// The JSON format is documented in `DESIGN.md` §"RunSpec".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Platform preset (device `0` of the node).
    pub platform: PlatformId,
    /// Extra device presets serving alongside `platform`: device `d` is
    /// `extra_backends[d - 1]`. Empty (the serde default, so pre-device
    /// spec files parse unchanged) means the classic single-device node.
    #[serde(default)]
    pub extra_backends: Vec<PlatformId>,
    /// Node-level power envelope split across all devices' config
    /// tables in proportion to their maximum draw; `None` (the serde
    /// default) leaves every device its full cap range.
    #[serde(default)]
    pub shared_budget: Option<Watts>,
    /// Candidate family.
    pub family: FamilySpec,
    /// Default policy name for new sessions (resolved via the registry).
    pub policy: String,
    /// Controller parameters handed to ALERT-family policies.
    pub params: AlertParams,
    /// Default seed for sessions that do not carry their own.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            platform: PlatformId::Cpu1,
            extra_backends: Vec::new(),
            shared_budget: None,
            family: FamilySpec::Kind(FamilyKind::Image),
            policy: "ALERT".to_string(),
            params: AlertParams::default(),
            seed: 2020,
        }
    }
}

/// One session's serializable description: everything needed to rebuild
/// its stream and frozen environment deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// The session's goal (objective + constraints).
    pub goal: Goal,
    /// The runtime environment scenario.
    pub scenario: Scenario,
    /// Inputs in the stream (words for grouped tasks).
    pub n_inputs: usize,
    /// Seed for the stream and environment realization; `None` uses the
    /// runtime's default seed ([`RunSpec::seed`]).
    pub seed: Option<u64>,
    /// Policy override; `None` uses the runtime's default policy.
    pub policy: Option<String>,
}

impl SessionSpec {
    /// A minimal spec for sessions opened on an externally built
    /// environment ([`SessionOptions::on`]): only the goal — and a
    /// [`SessionOptions::policy`] override, if any — matters there; the
    /// scenario, input count, and seed are carried by the external
    /// stream/environment pair.
    pub fn external(goal: Goal) -> Self {
        SessionSpec {
            goal,
            scenario: Scenario::default_env(),
            n_inputs: 1,
            seed: None,
            policy: None,
        }
    }
}

/// A checkpoint of one live session, sufficient to resume it in this or
/// another [`Runtime`] ([`Runtime::restore_session`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The configuration of the runtime the session was snapshotted
    /// from. Restore validates the target against it: the platform,
    /// family and params must match, or the resumed records would
    /// silently diverge from the first half.
    pub origin: RunSpec,
    /// The generating spec (stream + environment rebuild recipe). The
    /// policy is always resolved (`Some`) in a snapshot, so restoring
    /// into a runtime with a different default policy is safe.
    pub spec: SessionSpec,
    /// Reporting name of the scheme that was driving the session.
    pub scheme: String,
    /// Engine state: cursor, shared-deadline budget, records, overhead.
    pub engine: SessionEngine,
    /// The scheduler's learned state, when the policy supports export.
    pub controller: Option<ControllerSnapshot>,
}

/// Lifecycle events emitted through the runtime's [`EventSink`], one per
/// session transition or processed input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpisodeEvent {
    /// A session was opened.
    SessionOpened {
        /// The new session.
        session: SessionId,
        /// Content identity of its input stream.
        stream: StreamId,
        /// Reporting name of the scheme driving it.
        scheme: String,
        /// Total inputs the stream will deliver.
        inputs: usize,
    },
    /// One input was processed.
    InputProcessed {
        /// The session that advanced.
        session: SessionId,
        /// The per-input record (same schema as `Episode::records`).
        record: InputRecord,
    },
    /// A session was closed.
    SessionClosed {
        /// The closed session.
        session: SessionId,
        /// Reporting name of the scheme that drove it.
        scheme: String,
        /// Aggregated post-warm-up summary.
        summary: EpisodeSummary,
    },
    /// A telemetry observation (decision trace, admission verdict) —
    /// emitted only when the runtime's
    /// [`TelemetryConfig`](crate::telemetry::TelemetryConfig) asks for
    /// it, always *after* the [`EpisodeEvent::InputProcessed`] it
    /// describes.
    Telemetry {
        /// The typed observation.
        event: crate::telemetry::TelemetryEvent,
    },
}

/// Receives [`EpisodeEvent`]s as the runtime processes inputs.
pub trait EventSink: Send {
    /// Consumes one event.
    fn emit(&mut self, event: &EpisodeEvent);
}

impl EventSink for std::sync::mpsc::Sender<EpisodeEvent> {
    fn emit(&mut self, event: &EpisodeEvent) {
        // A disconnected receiver is not the runtime's problem.
        let _ = self.send(event.clone());
    }
}

impl<F: FnMut(&EpisodeEvent) + Send> EventSink for F {
    fn emit(&mut self, event: &EpisodeEvent) {
        self(event)
    }
}

/// Runtime operation errors.
#[derive(Debug)]
pub enum RuntimeError {
    /// A policy name failed to resolve, or resolved but rejected the
    /// session context (invalid goal, no fitting model, bad controller
    /// parameters) — see [`RegistryError`].
    Policy(RegistryError),
    /// No open session has this id.
    UnknownSession(SessionId),
    /// The session cannot be checkpointed (see message).
    NotCheckpointable(SessionId, String),
    /// A spec failed validation (see message).
    InvalidSpec(String),
    /// A session step failed (the scheduler handed back a configuration
    /// the platform cannot execute) — see [`StepError`].
    Step(StepError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Policy(e) => write!(f, "{e}"),
            RuntimeError::UnknownSession(id) => write!(f, "no open session {id}"),
            RuntimeError::NotCheckpointable(id, why) => {
                write!(f, "{id} cannot be checkpointed: {why}")
            }
            RuntimeError::InvalidSpec(why) => write!(f, "invalid spec: {why}"),
            RuntimeError::Step(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<UnknownPolicy> for RuntimeError {
    fn from(e: UnknownPolicy) -> Self {
        RuntimeError::Policy(RegistryError::Unknown(e))
    }
}

impl From<RegistryError> for RuntimeError {
    fn from(e: RegistryError) -> Self {
        RuntimeError::Policy(e)
    }
}

impl From<StepError> for RuntimeError {
    fn from(e: StepError) -> Self {
        RuntimeError::Step(e)
    }
}

/// Which runtime a [`SessionOptions`] opens on.
pub(crate) enum HostRef<'rt> {
    Single(&'rt mut Runtime),
    Sharded(&'rt mut executor::ShardedRuntime),
}

/// The one builder behind every way of opening a session — returned by
/// [`Runtime::session`] and
/// [`ShardedRuntime::session`](executor::ShardedRuntime::session), it
/// collapses the historical `open_session` / `open_session_on` /
/// `open_session_with` trio:
///
/// | old | new |
/// |---|---|
/// | `open_session(spec)` | `session(spec).open()` |
/// | `open_session_on(policy, goal, stream, env)` | `session(spec).policy(policy).on(stream, env).open()` |
/// | `open_session_with(sched, goal, stream, env)` | `session(spec).on(stream, env).with(sched).open()` |
///
/// On a sharded runtime, [`SessionOptions::on_shard`] pins the session
/// to a specific shard instead of the round-robin default — the serving
/// front-end uses this to co-locate a request with its admission queue.
/// Sessions opened with [`SessionOptions::on`] or
/// [`SessionOptions::with`] ride an externally built environment and
/// cannot be checkpointed; plain spec sessions can.
#[must_use = "the builder opens nothing until .open() is called"]
pub struct SessionOptions<'rt> {
    host: HostRef<'rt>,
    spec: SessionSpec,
    shard: Option<usize>,
    external: Option<(InputStream, Arc<EpisodeEnv>)>,
    scheduler: Option<Box<dyn Scheduler>>,
}

impl<'rt> SessionOptions<'rt> {
    pub(crate) fn new(host: HostRef<'rt>, spec: SessionSpec) -> Self {
        SessionOptions {
            host,
            spec,
            shard: None,
            external: None,
            scheduler: None,
        }
    }

    /// Overrides the spec's policy name (the registry key building the
    /// scheduler).
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.spec.policy = Some(name.into());
        self
    }

    /// Overrides the spec's seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = Some(seed);
        self
    }

    /// Pins the session to shard `shard` instead of the round-robin
    /// default. Only shard 0 exists on a plain [`Runtime`]; a
    /// [`ShardedRuntime`](executor::ShardedRuntime) accepts any shard
    /// below its worker count, and pinning does not advance its
    /// round-robin cursor.
    pub fn on_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Opens on an externally built (possibly shared) frozen
    /// environment instead of materializing the spec's scenario — the
    /// experiment-sweep path, where every scheme must face bit-identical
    /// conditions. The spec's scenario/n_inputs/seed are ignored; its
    /// goal and policy still apply. Such sessions cannot be
    /// checkpointed.
    pub fn on(mut self, stream: InputStream, env: Arc<EpisodeEnv>) -> Self {
        self.external = Some((stream, env));
        self
    }

    /// Uses a pre-built scheduler instead of resolving the policy name
    /// (escape hatch for schedulers carrying out-of-band state, e.g. a
    /// cell-pinned static oracle). Requires [`SessionOptions::on`].
    pub fn with(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Opens the session.
    ///
    /// # Errors
    ///
    /// [`crate::Error::InvalidSpec`] on a malformed spec, an
    /// out-of-range shard, or a scheduler without an environment;
    /// [`crate::Error::Policy`] when the policy name fails to resolve
    /// or rejects the session context.
    pub fn open(self) -> Result<SessionId, crate::Error> {
        let SessionOptions {
            host,
            spec,
            shard,
            external,
            scheduler,
        } = self;
        match host {
            HostRef::Single(rt) => {
                if let Some(k) = shard {
                    if k != 0 {
                        return Err(RuntimeError::InvalidSpec(format!(
                            "no shard {k}: a plain Runtime is single-shard \
                             (build one with RuntimeBuilder::build_sharded)"
                        ))
                        .into());
                    }
                }
                Ok(rt.open_parts(spec, external, scheduler)?)
            }
            HostRef::Sharded(rt) => Ok(rt.open_parts_on(shard, spec, external, scheduler)?),
        }
    }
}

/// One live session: scheduler + frozen environment + stepping engine.
///
/// A session owns all of its mutable state and shares only `Arc`-held
/// read-only context, so it is `Send`: the parallel executor
/// ([`Runtime::drain_parallel`], [`executor::ShardedRuntime`]) moves
/// whole sessions onto worker shards.
pub(crate) struct Session {
    /// Rebuild recipe; `None` for sessions opened on externally built
    /// environments (those cannot be checkpointed).
    pub(crate) spec: Option<SessionSpec>,
    pub(crate) scheme: String,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) env: Arc<EpisodeEnv>,
    pub(crate) stream: InputStream,
    pub(crate) goal: Goal,
    pub(crate) engine: SessionEngine,
}

impl Session {
    /// Advances this session by one input; returns a reference to the
    /// freshly accumulated record (cloning is the caller's choice), or
    /// `Ok(None)` when the stream is exhausted.
    pub(crate) fn step(&mut self, family: &ModelFamily) -> Result<Option<&InputRecord>, StepError> {
        self.engine
            .step(self.scheduler.as_mut(), &self.env, family, &self.stream)
    }

    /// Folds this session into its episode.
    pub(crate) fn finish(self) -> Episode {
        self.engine.finish(&self.scheme, &self.goal)
    }
}

/// Builder for [`Runtime`] — see the module docs for the full picture.
pub struct RuntimeBuilder {
    pub(crate) spec: RunSpec,
    pub(crate) registry: Option<PolicyRegistry>,
    pub(crate) sinks: Vec<Box<dyn EventSink>>,
    pub(crate) telemetry: crate::telemetry::TelemetryConfig,
    pub(crate) id_start: u64,
    pub(crate) id_stride: u64,
}

impl RuntimeBuilder {
    /// A builder with the default spec (CPU1, image family, ALERT).
    pub fn new() -> Self {
        RuntimeBuilder {
            spec: RunSpec::default(),
            registry: None,
            sinks: Vec::new(),
            telemetry: crate::telemetry::TelemetryConfig::Off,
            id_start: 0,
            id_stride: 1,
        }
    }

    /// Starts from an existing serialized configuration.
    pub fn from_spec(spec: RunSpec) -> Self {
        RuntimeBuilder {
            spec,
            ..Self::new()
        }
    }

    /// Sets the platform preset.
    pub fn platform(mut self, platform: PlatformId) -> Self {
        self.spec.platform = platform;
        self
    }

    /// Adds an extra device preset serving alongside the primary
    /// platform (call repeatedly to grow the node).
    pub fn extra_backend(mut self, platform: PlatformId) -> Self {
        self.spec.extra_backends.push(platform);
        self
    }

    /// Sets the node-level power envelope split across all devices.
    pub fn shared_budget(mut self, budget: Watts) -> Self {
        self.spec.shared_budget = Some(budget);
        self
    }

    /// Sets a named paper family.
    pub fn family(mut self, family: FamilyKind) -> Self {
        self.spec.family = FamilySpec::Kind(family);
        self
    }

    /// Sets an explicit candidate family with its driving task.
    pub fn family_custom(mut self, family: ModelFamily, task: TaskId) -> Self {
        self.spec.family = FamilySpec::Custom { family, task };
        self
    }

    /// Sets the default policy for new sessions.
    pub fn policy(mut self, name: impl Into<String>) -> Self {
        self.spec.policy = name.into();
        self
    }

    /// Sets the controller parameters handed to ALERT-family policies.
    pub fn params(mut self, params: AlertParams) -> Self {
        self.spec.params = params;
        self
    }

    /// Sets the default session seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Installs a policy registry (defaults to
    /// [`PolicyRegistry::builtin`]).
    pub fn registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Installs an event sink receiving every [`EpisodeEvent`]. May be
    /// called repeatedly: sinks fan out in installation order.
    pub fn sink(mut self, sink: impl EventSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Sets how much decision telemetry the runtime emits (default:
    /// [`TelemetryConfig::Off`](crate::telemetry::TelemetryConfig::Off)
    /// — no telemetry events, byte-identical to the historical
    /// runtime). Telemetry is runtime instrumentation, not workload
    /// configuration, so it lives here rather than in [`RunSpec`]: two
    /// runtimes differing only in telemetry share one spec and produce
    /// bit-identical episodes.
    pub fn telemetry(mut self, config: crate::telemetry::TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Configures the session-id allocator: the runtime hands out
    /// `start, start + stride, start + 2·stride, …`.
    ///
    /// The default (`0, 1`) allocates densely. A
    /// [`ShardedRuntime`](crate::executor::ShardedRuntime) gives shard
    /// `k` of `N` the allocator `(k, N)`, so every session id satisfies
    /// `id.shard_of(N) == k` and requests route without a lookup table.
    /// Because [`RuntimeBuilder::build_sharded`] owns the whole id space
    /// for exactly that reason, combining it with a non-default
    /// `session_ids` is rejected at build time.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero (the allocator would hand out the same
    /// id forever — a construction-time programming error).
    pub fn session_ids(mut self, start: u64, stride: u64) -> Self {
        assert!(stride > 0, "session-id stride must be positive");
        self.id_start = start;
        self.id_stride = stride;
        self
    }

    /// Builds the runtime, validating that the default policy resolves.
    pub fn build(mut self) -> Result<Runtime, RuntimeError> {
        let registry = Arc::new(self.registry.take().unwrap_or_else(PolicyRegistry::builtin));
        let platform = Arc::new(Platform::by_id(self.spec.platform));
        let family = Arc::new(self.spec.family.family());
        self.build_shared(registry, platform, family)
    }

    /// Builds the runtime around already-`Arc`-shared read-only context —
    /// the [`ShardedRuntime`](crate::executor::ShardedRuntime) path, where
    /// every shard resolves policies through the *same* registry and
    /// shares one platform and one candidate family allocation.
    pub(crate) fn build_shared(
        self,
        registry: Arc<PolicyRegistry>,
        platform: Arc<Platform>,
        family: Arc<ModelFamily>,
    ) -> Result<Runtime, RuntimeError> {
        let RuntimeBuilder {
            spec,
            sinks,
            telemetry,
            id_start,
            id_stride,
            ..
        } = self;
        if !registry.contains(&spec.policy) {
            return Err(UnknownPolicy {
                name: spec.policy.clone(),
                known: registry.names(),
            }
            .into());
        }
        // The node's device list, primary first — the environment
        // rebuild recipe for every session this runtime opens.
        let node: Vec<Platform> = std::iter::once((*platform).clone())
            .chain(spec.extra_backends.iter().map(|&id| Platform::by_id(id)))
            .collect();
        Ok(Runtime {
            platform,
            node,
            family,
            task: spec.family.task(),
            spec,
            registry,
            sinks,
            telemetry,
            sessions: BTreeMap::new(),
            next_id: id_start,
            id_stride,
        })
    }

    /// Builds a [`ShardedRuntime`](crate::executor::ShardedRuntime):
    /// `workers` single-threaded shards sharing this builder's
    /// configuration and registry, with disjoint session-id spaces.
    ///
    /// # Errors
    ///
    /// Fails when the default policy does not resolve (same contract as
    /// [`RuntimeBuilder::build`]).
    pub fn build_sharded(self, workers: usize) -> Result<executor::ShardedRuntime, RuntimeError> {
        executor::ShardedRuntime::from_builder(self, workers)
    }
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// A long-lived multi-session serving runtime. See the module docs.
///
/// The read-only context — platform, candidate family, policy registry —
/// is `Arc`-shared: cloning a runtime's configuration into worker shards
/// ([`executor::ShardedRuntime`]) costs reference counts, not
/// allocations, and the parallel executor can hand `&ModelFamily` to
/// every worker thread simultaneously.
pub struct Runtime {
    pub(crate) platform: Arc<Platform>,
    /// All node devices, primary first (`node[0]` mirrors `platform`).
    node: Vec<Platform>,
    pub(crate) family: Arc<ModelFamily>,
    task: TaskId,
    spec: RunSpec,
    pub(crate) registry: Arc<PolicyRegistry>,
    pub(crate) sinks: Vec<Box<dyn EventSink>>,
    pub(crate) telemetry: crate::telemetry::TelemetryConfig,
    pub(crate) sessions: BTreeMap<SessionId, Session>,
    next_id: u64,
    id_stride: u64,
}

impl Runtime {
    /// Starts a builder.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// The runtime's serializable configuration.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }

    /// The platform sessions run on (device `0` of the node).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// All node devices, primary first — length `1` for the classic
    /// single-device runtime.
    pub fn node(&self) -> &[Platform] {
        &self.node
    }

    /// The candidate family sessions schedule over.
    pub fn family(&self) -> &ModelFamily {
        &self.family
    }

    /// The policy registry in force.
    pub fn registry(&self) -> &PolicyRegistry {
        &self.registry
    }

    /// Ids of all open sessions, ascending.
    pub fn open_sessions(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn insert_session(&mut self, session: Session) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += self.id_stride;
        if !self.sinks.is_empty() {
            let event = EpisodeEvent::SessionOpened {
                session: id,
                stream: session.stream.stream_id(),
                scheme: session.scheme.clone(),
                inputs: session.stream.len(),
            };
            for sink in &mut self.sinks {
                sink.emit(&event);
            }
        }
        self.sessions.insert(id, session);
        id
    }

    fn build_scheduler(
        &self,
        policy: &str,
        goal: Goal,
        env: &Arc<EpisodeEnv>,
        stream: &InputStream,
    ) -> Result<Box<dyn Scheduler>, RuntimeError> {
        let ctx = PolicyContext {
            family: &self.family,
            platform: &self.platform,
            goal,
            params: self.spec.params,
            shared_budget: self.spec.shared_budget,
            env,
            stream,
        };
        Ok(self.registry.build(policy, &ctx)?)
    }

    /// Validates a spec and materializes its session ingredients — the
    /// single code path behind both [`Runtime::open_session`] and
    /// [`Runtime::restore_session`] (the bit-identical-resume guarantee
    /// depends on these never diverging). The returned spec has its
    /// seed and policy resolved against the runtime defaults, so it is
    /// self-contained for later checkpoints.
    #[allow(clippy::type_complexity)]
    fn materialize(
        &self,
        mut spec: SessionSpec,
    ) -> Result<
        (
            SessionSpec,
            InputStream,
            Arc<EpisodeEnv>,
            Box<dyn Scheduler>,
        ),
        RuntimeError,
    > {
        if spec.n_inputs == 0 {
            return Err(RuntimeError::InvalidSpec("n_inputs must be > 0".into()));
        }
        spec.goal.validate().map_err(RuntimeError::InvalidSpec)?;
        let seed = spec.seed.unwrap_or(self.spec.seed);
        spec.seed = Some(seed);
        let policy = spec
            .policy
            .take()
            .unwrap_or_else(|| self.spec.policy.clone());
        let stream = InputStream::generate(self.task, spec.n_inputs, seed);
        // Sessions always realize span-aware: scenarios that move the
        // quality floor relative to the family range resolve it against
        // the serving family (a no-op for absolute scripts).
        let span = alert_workload::quality_span(&self.family, &self.platform);
        // `build_hetero` over a one-platform node is exactly
        // `build_scoped`, so single-device runtimes keep their
        // historical environments bit-identical.
        let env = Arc::new(
            EpisodeEnv::build_hetero(
                &self.node,
                &spec.scenario,
                &stream,
                &spec.goal,
                seed,
                Some(span),
            )
            .map_err(|e| RuntimeError::InvalidSpec(e.to_string()))?,
        );
        let scheduler = self.build_scheduler(&policy, spec.goal, &env, &stream)?;
        // Store the spec fully resolved so later checkpoints are
        // self-contained.
        spec.policy = Some(policy);
        Ok((spec, stream, env, scheduler))
    }

    /// Starts a [`SessionOptions`] builder — the single entry point for
    /// opening sessions. The plain form materializes the spec
    /// (checkpointable); chain [`SessionOptions::on`] for an externally
    /// built environment and [`SessionOptions::with`] for a pre-built
    /// scheduler:
    ///
    /// ```text
    /// runtime.session(spec).open()                          // from spec
    /// runtime.session(spec).on(stream, env).open()          // external env
    /// runtime.session(spec).on(stream, env).with(sch).open() // pre-built scheduler
    /// sharded.session(spec).on_shard(2).open()              // pinned shard
    /// ```
    pub fn session(&mut self, spec: SessionSpec) -> SessionOptions<'_> {
        SessionOptions::new(HostRef::Single(self), spec)
    }

    /// The single open path behind [`Runtime::session`] and the
    /// deprecated entry points: spec-materialized, external-environment,
    /// and pre-built-scheduler sessions all land here.
    pub(crate) fn open_parts(
        &mut self,
        spec: SessionSpec,
        external: Option<(InputStream, Arc<EpisodeEnv>)>,
        scheduler: Option<Box<dyn Scheduler>>,
    ) -> Result<SessionId, RuntimeError> {
        match (external, scheduler) {
            // Externally built (possibly shared) frozen environment with
            // a pre-built scheduler (escape hatch for schedulers carrying
            // out-of-band state, e.g. a cell-pinned static oracle). Such
            // sessions cannot be checkpointed.
            (Some((stream, env)), Some(scheduler)) => {
                let scheme = scheduler.name().to_string();
                Ok(self.insert_session(Session {
                    spec: None,
                    scheme,
                    scheduler,
                    env,
                    stream,
                    goal: spec.goal,
                    engine: SessionEngine::new(),
                }))
            }
            // Externally built environment, policy-built scheduler — the
            // experiment-sweep path, where every scheme must face
            // bit-identical conditions. Not checkpointable either (the
            // runtime cannot rebuild the environment).
            (Some((stream, env)), None) => {
                let policy = spec.policy.unwrap_or_else(|| self.spec.policy.clone());
                let scheduler = self.build_scheduler(&policy, spec.goal, &env, &stream)?;
                let scheme = scheduler.name().to_string();
                Ok(self.insert_session(Session {
                    spec: None,
                    scheme,
                    scheduler,
                    env,
                    stream,
                    goal: spec.goal,
                    engine: SessionEngine::new(),
                }))
            }
            (None, Some(_)) => Err(RuntimeError::InvalidSpec(
                "a pre-built scheduler needs an external environment: chain \
                 .on(stream, env) before .with(scheduler)"
                    .into(),
            )),
            // From the serializable spec: generates the stream, freezes
            // the environment, and builds the policy's scheduler.
            (None, None) => {
                let (spec, stream, env, scheduler) = self.materialize(spec)?;
                let scheme = scheduler.name().to_string();
                Ok(self.insert_session(Session {
                    goal: spec.goal,
                    spec: Some(spec),
                    scheme,
                    scheduler,
                    env,
                    stream,
                    engine: SessionEngine::new(),
                }))
            }
        }
    }

    /// Opens a session from a serializable spec.
    #[deprecated(note = "use `runtime.session(spec).open()`")]
    pub fn open_session(&mut self, spec: SessionSpec) -> Result<SessionId, RuntimeError> {
        self.open_parts(spec, None, None)
    }

    /// Opens a session on an externally built frozen environment.
    #[deprecated(note = "use `runtime.session(spec).policy(name).on(stream, env).open()`")]
    pub fn open_session_on(
        &mut self,
        policy: &str,
        goal: Goal,
        stream: InputStream,
        env: Arc<EpisodeEnv>,
    ) -> Result<SessionId, RuntimeError> {
        let spec = SessionSpec {
            goal,
            scenario: Scenario::default_env(),
            n_inputs: stream.len().max(1),
            seed: None,
            policy: Some(policy.to_string()),
        };
        self.open_parts(spec, Some((stream, env)), None)
    }

    /// Opens a session with a pre-built scheduler.
    #[deprecated(note = "use `runtime.session(spec).on(stream, env).with(scheduler).open()`")]
    pub fn open_session_with(
        &mut self,
        scheduler: Box<dyn Scheduler>,
        goal: Goal,
        stream: InputStream,
        env: Arc<EpisodeEnv>,
    ) -> SessionId {
        let scheme = scheduler.name().to_string();
        self.insert_session(Session {
            spec: None,
            scheme,
            scheduler,
            env,
            stream,
            goal,
            engine: SessionEngine::new(),
        })
    }

    fn session_ref(&self, id: SessionId) -> Result<&Session, RuntimeError> {
        self.sessions
            .get(&id)
            .ok_or(RuntimeError::UnknownSession(id))
    }

    /// `true` once the session has processed its whole stream.
    pub fn is_finished(&self, id: SessionId) -> Result<bool, RuntimeError> {
        let s = self.session_ref(id)?;
        Ok(s.engine.is_finished(&s.stream))
    }

    /// Inputs processed so far.
    pub fn progress(&self, id: SessionId) -> Result<usize, RuntimeError> {
        Ok(self.session_ref(id)?.engine.cursor())
    }

    /// The scheme name driving a session.
    pub fn scheme(&self, id: SessionId) -> Result<&str, RuntimeError> {
        Ok(&self.session_ref(id)?.scheme)
    }

    /// Builds the decision-telemetry event for a freshly stepped input,
    /// when the config samples it and the scheme keeps a trace. Pure
    /// observation: it only *reads* the trace the controller recorded on
    /// its own, after the selection was final.
    pub(crate) fn decision_telemetry(
        config: crate::telemetry::TelemetryConfig,
        id: SessionId,
        record: &InputRecord,
        scheduler: &dyn Scheduler,
    ) -> Option<EpisodeEvent> {
        if !config.records(record.index) {
            return None;
        }
        let trace = scheduler.decision_trace()?;
        let (post_mean, post_std) = scheduler
            .belief()
            .unwrap_or((trace.belief_mean, trace.belief_std));
        Some(EpisodeEvent::Telemetry {
            event: crate::telemetry::TelemetryEvent::Decision(crate::telemetry::DecisionEvent {
                session: id,
                index: record.index,
                trace,
                post_mean,
                post_std,
                deadline: record.deadline,
                realized_latency: record.latency,
                missed: record.latency.get() > record.deadline.get(),
            }),
        })
    }

    /// Advances `id` by one input without materializing an owned record
    /// — the hot path under [`Runtime::run_to_completion`] and
    /// [`Runtime::drain_round_robin`] (a clone happens only for the
    /// event sinks, if any are installed). Returns whether an input was
    /// processed.
    fn step_session(&mut self, id: SessionId) -> Result<bool, RuntimeError> {
        let s = self
            .sessions
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownSession(id))?;
        let Some(record) = s.step(&self.family)? else {
            return Ok(false);
        };
        // No sinks: skip event construction entirely — the sink-free
        // hot path clones nothing.
        if self.sinks.is_empty() {
            return Ok(true);
        }
        // Cloning first releases the step borrow so the scheduler's
        // trace is readable; the clone then rides through the event.
        let record = record.clone();
        let telemetry = Self::decision_telemetry(self.telemetry, id, &record, s.scheduler.as_ref());
        let event = EpisodeEvent::InputProcessed {
            session: id,
            record,
        };
        for sink in &mut self.sinks {
            sink.emit(&event);
        }
        if let Some(telemetry) = telemetry {
            for sink in &mut self.sinks {
                sink.emit(&telemetry);
            }
        }
        Ok(true)
    }

    /// Advances `id` by exactly one input. Returns the record, or
    /// `Ok(None)` when the stream is exhausted.
    ///
    /// The stepped session hands its record straight back: the hot path
    /// clones it exactly once (when sinks are installed, the clone rides
    /// through the emitted event and is then moved out — never a second
    /// clone, never a re-fetch through the session map).
    pub fn submit(&mut self, id: SessionId) -> Result<Option<InputRecord>, RuntimeError> {
        let s = self
            .sessions
            .get_mut(&id)
            .ok_or(RuntimeError::UnknownSession(id))?;
        let Some(record) = s.step(&self.family)? else {
            return Ok(None);
        };
        if self.sinks.is_empty() {
            return Ok(Some(record.clone()));
        }
        // Cloning first releases the step borrow so the scheduler's
        // trace is readable; the clone then rides through the event.
        let record = record.clone();
        let telemetry = Self::decision_telemetry(self.telemetry, id, &record, s.scheduler.as_ref());
        let event = EpisodeEvent::InputProcessed {
            session: id,
            record,
        };
        for sink in &mut self.sinks {
            sink.emit(&event);
        }
        if let Some(telemetry) = telemetry {
            for sink in &mut self.sinks {
                sink.emit(&telemetry);
            }
        }
        let EpisodeEvent::InputProcessed { record, .. } = event else {
            // lint:allow(no-panic): the event variant is constructed just above; no other variant can reach here
            unreachable!("constructed above")
        };
        Ok(Some(record))
    }

    /// Drives `id` to the end of its stream; returns the number of
    /// inputs processed by this call.
    pub fn run_to_completion(&mut self, id: SessionId) -> Result<usize, RuntimeError> {
        let mut n = 0;
        while self.step_session(id)? {
            n += 1;
        }
        Ok(n)
    }

    /// Closes a session, returning its [`Episode`]. The session need not
    /// be finished; the episode covers the inputs processed so far.
    pub fn close(&mut self, id: SessionId) -> Result<Episode, RuntimeError> {
        let s = self
            .sessions
            .remove(&id)
            .ok_or(RuntimeError::UnknownSession(id))?;
        let episode = s.engine.finish(&s.scheme, &s.goal);
        if !self.sinks.is_empty() {
            let event = EpisodeEvent::SessionClosed {
                session: id,
                scheme: s.scheme,
                summary: episode.summary.clone(),
            };
            for sink in &mut self.sinks {
                sink.emit(&event);
            }
        }
        Ok(episode)
    }

    /// Steps every open session one input at a time, round-robin in id
    /// order, until all are finished; closes them and returns the
    /// episodes ascending by id. The workhorse of the concurrency tests
    /// and the runtime benchmark.
    pub fn drain_round_robin(&mut self) -> Result<Vec<(SessionId, Episode)>, RuntimeError> {
        let ids = self.open_sessions();
        let mut live: Vec<SessionId> = ids.clone();
        while !live.is_empty() {
            let mut still = Vec::with_capacity(live.len());
            for id in live {
                if self.step_session(id)? {
                    still.push(id);
                }
            }
            live = still;
        }
        ids.into_iter()
            .map(|id| Ok((id, self.close(id)?)))
            .collect()
    }

    /// Steps every open session to completion on `workers` parallel
    /// shards and closes them, returning the episodes ascending by id.
    ///
    /// Sessions are partitioned by `id.shard_of(workers)`; each shard is
    /// drained round-robin on its own thread (`std::thread::scope`, no
    /// extra dependencies). Because sessions share no mutable state —
    /// the platform, candidate family and registry are `Arc`-shared and
    /// read-only — every session's records are **bit-identical** to
    /// [`Runtime::drain_round_robin`]'s, for any worker count
    /// (`tests/parallel_executor.rs` proves it property-style). The one
    /// exception is inherent to the scheme, not the executor: sessions
    /// under `OverheadPolicy::Measured` feed wall-clock decision cost
    /// back into their deadline reserve, so their records are
    /// timing-dependent even across two serial runs.
    ///
    /// Sink events are fanned through a per-session-ordered channel: each
    /// session's `InputProcessed` events arrive in index order followed
    /// by its `SessionClosed`, exactly as under the serial drain.
    /// *Cross*-session interleaving is scheduling-dependent (it already
    /// was: the serial drain's interleaving is an artifact of round-robin
    /// order, which no consumer may rely on).
    pub fn drain_parallel(
        &mut self,
        workers: usize,
    ) -> Result<Vec<(SessionId, Episode)>, RuntimeError> {
        let workers = workers.max(1);
        let sessions = std::mem::take(&mut self.sessions);
        let mut shards: Vec<Vec<(SessionId, Session)>> = (0..workers).map(|_| Vec::new()).collect();
        for (id, session) in sessions {
            shards[id.shard_of(workers)].push((id, session));
        }
        executor::drain_shards(shards, &self.family, &mut self.sinks, self.telemetry)
    }

    /// Checkpoints a session opened from a [`SessionSpec`].
    ///
    /// Fails for sessions opened on external environments (no rebuild
    /// recipe) and for policies that cannot export their state once the
    /// session has started (nothing to carry the learned state over).
    pub fn snapshot_session(&self, id: SessionId) -> Result<SessionSnapshot, RuntimeError> {
        let s = self.session_ref(id)?;
        // Session specs are stored fully resolved (seed + policy), so
        // the snapshot is self-contained.
        let spec = s.spec.clone().ok_or_else(|| {
            RuntimeError::NotCheckpointable(
                id,
                "opened on an external environment (no rebuild recipe)".into(),
            )
        })?;
        let controller = s.scheduler.controller_snapshot();
        if controller.is_none() && s.engine.cursor() > 0 {
            return Err(RuntimeError::NotCheckpointable(
                id,
                format!("policy '{}' does not export controller state", s.scheme),
            ));
        }
        Ok(SessionSnapshot {
            origin: self.spec.clone(),
            spec,
            scheme: s.scheme.clone(),
            engine: s.engine.clone(),
            controller,
        })
    }

    /// Restores a checkpointed session into this runtime (the migration
    /// path): rebuilds the stream and environment from the snapshot's
    /// spec, builds a fresh scheduler, restores its learned state, and
    /// resumes from the recorded cursor. Returns the new session id.
    pub fn restore_session(&mut self, snap: &SessionSnapshot) -> Result<SessionId, RuntimeError> {
        // The target runtime must match the snapshot's origin on
        // everything that shaped the already-recorded half of the
        // episode; otherwise the resumed records would silently diverge.
        if self.spec.platform != snap.origin.platform {
            return Err(RuntimeError::InvalidSpec(format!(
                "snapshot was taken on platform {:?}, this runtime is {:?}",
                snap.origin.platform, self.spec.platform
            )));
        }
        if self.spec.extra_backends != snap.origin.extra_backends
            || self.spec.shared_budget != snap.origin.shared_budget
        {
            return Err(RuntimeError::InvalidSpec(format!(
                "snapshot was taken on a different device topology \
                 (origin extras {:?} budget {:?}, this runtime {:?} / {:?}) — \
                 already-recorded placements would not be reproducible",
                snap.origin.extra_backends,
                snap.origin.shared_budget,
                self.spec.extra_backends,
                self.spec.shared_budget
            )));
        }
        if self.spec.family != snap.origin.family {
            return Err(RuntimeError::InvalidSpec(
                "snapshot was taken over a different candidate family".into(),
            ));
        }
        if self.spec.params != snap.origin.params {
            return Err(RuntimeError::InvalidSpec(
                "snapshot was taken under different controller params".into(),
            ));
        }
        if snap.engine.cursor() > snap.spec.n_inputs
            || snap.engine.records().len() != snap.engine.cursor()
        {
            return Err(RuntimeError::InvalidSpec(format!(
                "engine state inconsistent: cursor {} / {} records over a {}-input stream",
                snap.engine.cursor(),
                snap.engine.records().len(),
                snap.spec.n_inputs
            )));
        }
        let (spec, stream, env, mut scheduler) = self.materialize(snap.spec.clone())?;
        // Mid-sentence integrity (NLP1 grouped streams, paper §3.2 step
        // 2): when the next input is a non-leading group member, the
        // engine must arrive with its shared-budget tracker still inside
        // the group. A snapshot whose tracker state was lost (reset)
        // would not fail here on its own — it would silently hand every
        // remaining member of the sentence the 1 µs floor deadline, so
        // the resumed records diverge from an uninterrupted run without
        // any error. Reject such snapshots loudly instead.
        if let Some(next) = stream.inputs().get(snap.engine.cursor()) {
            if let Some(g) = next.group {
                let budget = snap.engine.budget();
                let expected_left = g.group_len - g.member_idx;
                if g.member_idx != 0
                    && (!budget.in_group() || budget.members_left() != expected_left)
                {
                    return Err(RuntimeError::InvalidSpec(format!(
                        "snapshot cut mid-sentence (next input is member {} of a {}-word \
                         group, so {} members' budget should remain claimable) but its \
                         budget tracker carries {} — the tracker was reset or the snapshot \
                         predates budget carry-over",
                        g.member_idx,
                        g.group_len,
                        expected_left,
                        if budget.in_group() {
                            format!("{} members", budget.members_left())
                        } else {
                            "no group state".to_string()
                        }
                    )));
                }
            }
        }
        if let Some(ctl) = &snap.controller {
            scheduler.restore_controller(ctl);
        }
        Ok(self.insert_session(Session {
            goal: spec.goal,
            spec: Some(spec),
            scheme: snap.scheme.clone(),
            scheduler,
            env,
            stream,
            engine: snap.engine.clone(),
        }))
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("spec", &self.spec)
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Seconds;
    use std::sync::mpsc;

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.4), 0.9),
            scenario: Scenario::memory_env(seed),
            n_inputs: 60,
            seed: Some(seed),
            policy: None,
        }
    }

    fn runtime() -> Runtime {
        Runtime::builder().build().expect("default builds")
    }

    fn hetero_runtime() -> Runtime {
        Runtime::builder()
            .extra_backend(PlatformId::Gpu)
            .shared_budget(Watts(250.0))
            .build()
            .expect("hetero node builds")
    }

    #[test]
    fn builder_rejects_unknown_default_policy() {
        let err = Runtime::builder().policy("NoSuch").build().unwrap_err();
        assert!(matches!(err, RuntimeError::Policy(_)), "{err}");
    }

    #[test]
    fn open_submit_close_lifecycle() {
        let mut rt = runtime();
        let id = rt.session(spec(7)).open().unwrap();
        assert_eq!(rt.session_count(), 1);
        assert!(!rt.is_finished(id).unwrap());
        let first = rt.submit(id).unwrap().expect("one record");
        assert_eq!(first.index, 0);
        assert_eq!(rt.progress(id).unwrap(), 1);
        let n = rt.run_to_completion(id).unwrap();
        assert_eq!(n, 59);
        assert!(rt.is_finished(id).unwrap());
        assert!(rt.submit(id).unwrap().is_none());
        let ep = rt.close(id).unwrap();
        assert_eq!(ep.records.len(), 60);
        assert_eq!(ep.scheme, "ALERT");
        assert_eq!(rt.session_count(), 0);
        assert!(matches!(
            rt.submit(id),
            Err(RuntimeError::UnknownSession(_))
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut rt = runtime();
        let mut s = spec(1);
        s.n_inputs = 0;
        assert!(matches!(
            rt.session(s).open(),
            Err(crate::Error::InvalidSpec(_))
        ));
        let mut s = spec(1);
        s.goal.min_quality = None;
        assert!(matches!(
            rt.session(s).open(),
            Err(crate::Error::InvalidSpec(_))
        ));
        let mut s = spec(1);
        s.policy = Some("NoSuch".into());
        assert!(matches!(rt.session(s).open(), Err(crate::Error::Policy(_))));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_entry_points_are_equivalent_shims() {
        // The legacy trio must keep producing sessions bit-identical to
        // the SessionOptions builder until it is removed.
        let mut old_rt = runtime();
        let old_id = old_rt.open_session(spec(17)).unwrap();
        old_rt.run_to_completion(old_id).unwrap();
        let old_ep = old_rt.close(old_id).unwrap();
        let mut new_rt = runtime();
        let new_id = new_rt.session(spec(17)).open().unwrap();
        new_rt.run_to_completion(new_id).unwrap();
        let new_ep = new_rt.close(new_id).unwrap();
        assert_eq!(old_ep.records, new_ep.records);
    }

    #[test]
    fn builder_rejects_scheduler_without_environment() {
        let mut rt = runtime();
        let sched = crate::app_only::AppOnly::new(rt.family(), rt.platform());
        assert!(matches!(
            rt.session(spec(1)).with(Box::new(sched)).open(),
            Err(crate::Error::InvalidSpec(_))
        ));
    }

    #[test]
    fn plain_runtime_rejects_nonzero_shard_pin() {
        let mut rt = runtime();
        assert!(rt.session(spec(1)).on_shard(0).open().is_ok());
        assert!(matches!(
            rt.session(spec(1)).on_shard(1).open(),
            Err(crate::Error::InvalidSpec(_))
        ));
    }

    #[test]
    fn sessions_inherit_runtime_default_seed() {
        // `seed: None` resolves to the RunSpec seed: two runtimes with
        // the same default seed agree, a third with a different default
        // diverges.
        let run_with_default = |rt_seed: u64| {
            let mut rt = Runtime::builder().seed(rt_seed).build().unwrap();
            let id = rt
                .session(SessionSpec {
                    seed: None,
                    ..spec(1)
                })
                .open()
                .unwrap();
            rt.run_to_completion(id).unwrap();
            rt.close(id).unwrap()
        };
        let a = run_with_default(500);
        let b = run_with_default(500);
        let c = run_with_default(501);
        assert_eq!(a.records, b.records);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn per_session_policy_override() {
        let mut rt = runtime();
        let a = rt
            .session(SessionSpec {
                policy: Some("App-only".into()),
                ..spec(3)
            })
            .open()
            .unwrap();
        let b = rt.session(spec(3)).open().unwrap();
        assert_eq!(rt.scheme(a).unwrap(), "App-only");
        assert_eq!(rt.scheme(b).unwrap(), "ALERT");
    }

    #[test]
    fn interleaved_sessions_match_isolated_sessions() {
        // Three sessions multiplexed through one runtime, stepped in a
        // deliberately unfair interleaving, produce records identical to
        // three separately drained runtimes.
        let seeds = [11u64, 12, 13];
        let isolated: Vec<Episode> = seeds
            .iter()
            .map(|&s| {
                let mut rt = runtime();
                let id = rt.session(spec(s)).open().unwrap();
                rt.run_to_completion(id).unwrap();
                rt.close(id).unwrap()
            })
            .collect();

        let mut rt = runtime();
        let ids: Vec<SessionId> = seeds
            .iter()
            .map(|&s| rt.session(spec(s)).open().unwrap())
            .collect();
        // Unfair schedule: two steps of session 0, one of 1, three of 2...
        let pattern = [0usize, 0, 1, 2, 2, 2];
        let mut done = 0;
        while done < ids.len() {
            done = 0;
            for &k in &pattern {
                let _ = rt.submit(ids[k]).unwrap();
            }
            for &id in &ids {
                if rt.is_finished(id).unwrap() {
                    done += 1;
                }
            }
        }
        for (&id, isolated_ep) in ids.iter().zip(&isolated) {
            let ep = rt.close(id).unwrap();
            assert_eq!(ep.records, isolated_ep.records);
        }
    }

    #[test]
    fn relative_floor_scenarios_resolve_against_the_serving_family() {
        // The runtime realizes sessions span-aware, so the family-generic
        // FloorRaise scenario needs no extra plumbing from callers.
        let mut rt = runtime();
        let span = alert_workload::quality_span(rt.family(), rt.platform());
        let id = rt
            .session(SessionSpec {
                scenario: Scenario::floor_raise(),
                ..spec(3)
            })
            .open()
            .unwrap();
        rt.run_to_completion(id).unwrap();
        let ep = rt.close(id).unwrap();
        let first = ep.records.first().unwrap();
        let last = ep.records.last().unwrap();
        assert_eq!(first.min_quality, Some(0.9), "base floor before the mark");
        let raised = last.min_quality.expect("floor in force");
        assert!(
            (raised - span.floor_at(0.85)).abs() < 1e-12,
            "raised floor {raised} must sit at 85% of the family span"
        );
    }

    #[test]
    fn events_flow_through_mpsc_sink() {
        let (tx, rx) = mpsc::channel();
        let mut rt = Runtime::builder().sink(tx).build().unwrap();
        let id = rt.session(spec(5)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        let _ = rt.close(id).unwrap();
        drop(rt); // drop the sender inside the runtime
        let events: Vec<EpisodeEvent> = rx.iter().collect();
        assert_eq!(events.len(), 1 + 60 + 1);
        assert!(matches!(
            &events[0],
            EpisodeEvent::SessionOpened { session, inputs: 60, .. } if *session == id
        ));
        for (i, e) in events[1..=60].iter().enumerate() {
            match e {
                EpisodeEvent::InputProcessed { session, record } => {
                    assert_eq!(*session, id);
                    assert_eq!(record.index, i);
                }
                other => panic!("expected InputProcessed, got {other:?}"),
            }
        }
        assert!(matches!(
            &events[61],
            EpisodeEvent::SessionClosed { session, .. } if *session == id
        ));
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Run uninterrupted for the reference...
        let mut rt = runtime();
        let id = rt.session(spec(21)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        let reference = rt.close(id).unwrap();

        // ...then run half, checkpoint, migrate to a NEW runtime, finish.
        let mut rt1 = runtime();
        let id1 = rt1.session(spec(21)).open().unwrap();
        for _ in 0..30 {
            rt1.submit(id1).unwrap();
        }
        let snap = rt1.snapshot_session(id1).unwrap();
        drop(rt1);

        let mut rt2 = runtime();
        let id2 = rt2.restore_session(&snap).unwrap();
        assert_eq!(rt2.progress(id2).unwrap(), 30);
        rt2.run_to_completion(id2).unwrap();
        let resumed = rt2.close(id2).unwrap();
        assert_eq!(reference.records, resumed.records);
    }

    #[test]
    fn restore_rejects_mismatched_runtime_config() {
        let mut rt = runtime();
        let id = rt.session(spec(6)).open().unwrap();
        for _ in 0..5 {
            rt.submit(id).unwrap();
        }
        let snap = rt.snapshot_session(id).unwrap();

        // Different platform.
        let mut gpu = Runtime::builder()
            .platform(PlatformId::Gpu)
            .build()
            .unwrap();
        assert!(matches!(
            gpu.restore_session(&snap),
            Err(RuntimeError::InvalidSpec(_))
        ));

        // Different controller params.
        let mut other = Runtime::builder()
            .params(AlertParams {
                initial_idle_ratio: 0.7,
                ..Default::default()
            })
            .build()
            .unwrap();
        assert!(matches!(
            other.restore_session(&snap),
            Err(RuntimeError::InvalidSpec(_))
        ));

        // A different *default policy* is fine: the snapshot carries the
        // resolved policy name.
        let mut app = Runtime::builder().policy("App-only").build().unwrap();
        let restored = app.restore_session(&snap).unwrap();
        assert_eq!(app.scheme(restored).unwrap(), "ALERT");
    }

    #[test]
    fn hetero_sessions_run_snapshot_and_restore_identically() {
        // Uninterrupted CPU+GPU session for the reference...
        let mut rt = hetero_runtime();
        assert_eq!(rt.node().len(), 2);
        let id = rt.session(spec(21)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        let reference = rt.close(id).unwrap();
        assert!(
            reference.records.iter().all(|r| r.device < 2),
            "placements must stay inside the node"
        );

        // ...then half, checkpoint, migrate to a new hetero runtime.
        let mut rt1 = hetero_runtime();
        let id1 = rt1.session(spec(21)).open().unwrap();
        for _ in 0..30 {
            rt1.submit(id1).unwrap();
        }
        let snap = rt1.snapshot_session(id1).unwrap();
        drop(rt1);

        let mut rt2 = hetero_runtime();
        let id2 = rt2.restore_session(&snap).unwrap();
        rt2.run_to_completion(id2).unwrap();
        let resumed = rt2.close(id2).unwrap();
        assert_eq!(reference.records, resumed.records);

        // A single-device runtime cannot re-home the recorded
        // placements: topology is part of the origin check.
        let mut cpu_only = runtime();
        assert!(matches!(
            cpu_only.restore_session(&snap),
            Err(RuntimeError::InvalidSpec(_))
        ));
    }

    #[test]
    fn run_spec_without_device_fields_parses_as_single_node() {
        // Spec files written before the device axis carry neither
        // `extra_backends` nor `shared_budget`; they must keep parsing
        // as the classic single-device node.
        let serde_json::Value::Object(mut obj) = serde_json::to_value(&RunSpec::default()) else {
            panic!("RunSpec serializes as a map");
        };
        obj.remove("extra_backends");
        obj.remove("shared_budget");
        let json = serde_json::to_string(&serde_json::Value::Object(obj)).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, RunSpec::default());
    }

    #[test]
    fn restore_rejects_corrupt_snapshots() {
        let mut rt = runtime();
        let id = rt.session(spec(6)).open().unwrap();
        for _ in 0..5 {
            rt.submit(id).unwrap();
        }
        let good = rt.snapshot_session(id).unwrap();

        let mut zero = good.clone();
        zero.spec.n_inputs = 0;
        assert!(matches!(
            rt.restore_session(&zero),
            Err(RuntimeError::InvalidSpec(_))
        ));

        let mut bad_goal = good.clone();
        bad_goal.spec.goal.min_quality = None;
        assert!(matches!(
            rt.restore_session(&bad_goal),
            Err(RuntimeError::InvalidSpec(_))
        ));

        let mut short = good.clone();
        short.spec.n_inputs = 3; // cursor 5 > stream of 3
        assert!(matches!(
            rt.restore_session(&short),
            Err(RuntimeError::InvalidSpec(_))
        ));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut rt = runtime();
        let id = rt.session(spec(2)).open().unwrap();
        for _ in 0..10 {
            rt.submit(id).unwrap();
        }
        let snap = rt.snapshot_session(id).unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        let back: SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn stateless_policies_cannot_checkpoint_mid_stream() {
        let mut rt = runtime();
        let id = rt
            .session(SessionSpec {
                policy: Some("App-only".into()),
                ..spec(4)
            })
            .open()
            .unwrap();
        // Fresh sessions can snapshot (nothing learned yet)...
        assert!(rt.snapshot_session(id).is_ok());
        rt.submit(id).unwrap();
        // ...started ones cannot: App-only exports no controller state.
        assert!(matches!(
            rt.snapshot_session(id),
            Err(RuntimeError::NotCheckpointable(_, _))
        ));
    }

    #[test]
    fn external_env_sessions_cannot_checkpoint() {
        let mut rt = runtime();
        let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
        let stream = InputStream::generate(TaskId::Img2, 30, 9);
        let env = Arc::new(
            EpisodeEnv::build(rt.platform(), &Scenario::default_env(), &stream, &goal, 9).unwrap(),
        );
        let id = rt
            .session(SessionSpec::external(goal))
            .policy("ALERT")
            .on(stream, env)
            .open()
            .unwrap();
        assert!(matches!(
            rt.snapshot_session(id),
            Err(RuntimeError::NotCheckpointable(_, _))
        ));
    }

    #[test]
    fn run_spec_roundtrips_through_json() {
        let spec = RunSpec {
            platform: PlatformId::Gpu,
            policy: "ALERT-Any".to_string(),
            seed: 99,
            ..RunSpec::default()
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: RunSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let rt = RuntimeBuilder::from_spec(back).build().unwrap();
        assert_eq!(rt.spec().policy, "ALERT-Any");
        assert_eq!(rt.spec().platform, PlatformId::Gpu);
    }

    #[test]
    fn drain_round_robin_closes_everything() {
        let mut rt = runtime();
        let mut specs = Vec::new();
        for s in 0..5u64 {
            let mut sp = spec(40 + s);
            sp.n_inputs = 20 + s as usize * 7; // uneven lengths
            specs.push(sp.clone());
            rt.session(sp).open().unwrap();
        }
        let episodes = rt.drain_round_robin().unwrap();
        assert_eq!(episodes.len(), 5);
        assert_eq!(rt.session_count(), 0);
        for ((_, ep), sp) in episodes.iter().zip(&specs) {
            assert_eq!(ep.records.len(), sp.n_inputs);
        }
    }
}
