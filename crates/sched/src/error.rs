//! The unified error taxonomy of the crate.
//!
//! Every fallible surface in the serving stack keeps its precise,
//! layer-local error — [`RegistryError`] for policy resolution,
//! [`RuntimeError`] for session lifecycle, [`StepError`]/[`EnvError`]
//! for execution, [`TraceError`] for capture/replay — and all of them
//! convert *losslessly* into the one top-level [`enum@Error`], so an
//! application can `?` across any mix of runtime, serving, and trace
//! calls with a single error type:
//!
//! | layer error | lands in |
//! |---|---|
//! | [`RuntimeError::Policy`] / [`RegistryError`] / [`UnknownPolicy`] | [`Error::Policy`] |
//! | [`RuntimeError::UnknownSession`] | [`Error::UnknownSession`] |
//! | [`RuntimeError::NotCheckpointable`] | [`Error::NotCheckpointable`] |
//! | [`RuntimeError::InvalidSpec`] | [`Error::InvalidSpec`] |
//! | [`RuntimeError::Step`] / [`StepError`] | [`Error::Step`] |
//! | [`EnvError`] | [`Error::Env`] |
//! | [`TraceError`] | [`Error::Trace`] |
//!
//! The enum is `#[non_exhaustive]`: downstream matches must carry a
//! wildcard arm, which lets later PRs grow the taxonomy (new subsystems,
//! new failure classes) without a breaking release.

use crate::env::EnvError;
use crate::harness::StepError;
use crate::registry::{RegistryError, UnknownPolicy};
use crate::runtime::RuntimeError;
use alert_workload::{SessionId, TraceError};

/// Top-level error of `alert-sched`: every layer error converts in via
/// `From`, losslessly. See the [module docs](self) for the mapping.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A policy name failed to resolve, or resolved but rejected the
    /// session context — see [`RegistryError`].
    Policy(RegistryError),
    /// No open session has this id.
    UnknownSession(SessionId),
    /// The session cannot be checkpointed (see message).
    NotCheckpointable(SessionId, String),
    /// A spec failed validation (see message).
    InvalidSpec(String),
    /// A session step failed — see [`StepError`].
    Step(StepError),
    /// An environment could not be realized — see [`EnvError`].
    Env(EnvError),
    /// Trace capture/replay failed — see [`TraceError`].
    Trace(TraceError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Policy(e) => write!(f, "{e}"),
            Error::UnknownSession(id) => write!(f, "no open session {id}"),
            Error::NotCheckpointable(id, why) => {
                write!(f, "{id} cannot be checkpointed: {why}")
            }
            Error::InvalidSpec(why) => write!(f, "invalid spec: {why}"),
            Error::Step(e) => write!(f, "{e}"),
            Error::Env(e) => write!(f, "{e}"),
            Error::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Policy(e) => Some(e),
            Error::Step(e) => Some(e),
            Error::Env(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::UnknownSession(_) | Error::NotCheckpointable(..) | Error::InvalidSpec(_) => None,
        }
    }
}

impl From<RuntimeError> for Error {
    /// Lossless: every [`RuntimeError`] variant has a same-shaped
    /// [`enum@Error`] variant.
    fn from(e: RuntimeError) -> Self {
        match e {
            RuntimeError::Policy(e) => Error::Policy(e),
            RuntimeError::UnknownSession(id) => Error::UnknownSession(id),
            RuntimeError::NotCheckpointable(id, why) => Error::NotCheckpointable(id, why),
            RuntimeError::InvalidSpec(why) => Error::InvalidSpec(why),
            RuntimeError::Step(e) => Error::Step(e),
        }
    }
}

impl From<RegistryError> for Error {
    fn from(e: RegistryError) -> Self {
        Error::Policy(e)
    }
}

impl From<UnknownPolicy> for Error {
    fn from(e: UnknownPolicy) -> Self {
        Error::Policy(RegistryError::Unknown(e))
    }
}

impl From<StepError> for Error {
    fn from(e: StepError) -> Self {
        Error::Step(e)
    }
}

impl From<EnvError> for Error {
    fn from(e: EnvError) -> Self {
        Error::Env(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    type ErrCase = (RuntimeError, fn(&Error) -> bool);

    #[test]
    fn runtime_error_maps_variant_for_variant() {
        let cases: Vec<ErrCase> = vec![
            (RuntimeError::UnknownSession(SessionId(7)), |e| {
                matches!(e, Error::UnknownSession(SessionId(7)))
            }),
            (
                RuntimeError::NotCheckpointable(SessionId(3), "external env".into()),
                |e| matches!(e, Error::NotCheckpointable(SessionId(3), _)),
            ),
            (
                RuntimeError::InvalidSpec("bad".into()),
                |e| matches!(e, Error::InvalidSpec(m) if m == "bad"),
            ),
        ];
        for (src, check) in cases {
            let display = src.to_string();
            let unified: Error = src.into();
            assert!(check(&unified));
            // Display survives the conversion verbatim.
            assert_eq!(unified.to_string(), display);
        }
    }

    #[test]
    fn layer_errors_convert_and_expose_sources() {
        let unified: Error = UnknownPolicy {
            name: "NoSuch".into(),
            known: vec!["ALERT".into()],
        }
        .into();
        assert!(matches!(unified, Error::Policy(_)));
        assert!(unified.source().is_some());

        let unified: Error = EnvError::Script("bad script".into()).into();
        assert!(matches!(unified, Error::Env(_)));
        assert!(unified.to_string().contains("bad script"));

        let unified: Error = TraceError::NotATrace("nope".into()).into();
        assert!(matches!(unified, Error::Trace(_)));
        assert!(unified.source().is_some());
    }
}
