//! The App-only baseline (paper Table 3, §5.2).
//!
//! "Conducts adaptation only at the application level through an Anytime
//! DNN": the anytime network runs until the deadline at the *system
//! default* power setting (the maximum cap). Application-level adaptation
//! is implicit in the anytime staircase — whatever stage completes by the
//! deadline is delivered — but the system level never adapts, which is why
//! this scheme "consumes 73% more energy in energy-minimizing tasks" and
//! blows energy budgets under contention (§5.2).

use crate::scheduler::{Decision, Feedback, InputContext, Scheduler};
use alert_models::inference::StopPolicy;
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_stats::units::Watts;

/// App-only: anytime DNN at the default (maximum) power setting.
pub struct AppOnly {
    model: usize,
    default_cap: Watts,
}

impl AppOnly {
    /// Creates the scheme from a family containing an anytime model.
    ///
    /// # Panics
    ///
    /// Panics if the family has no anytime member that fits the platform.
    pub fn new(family: &ModelFamily, platform: &Platform) -> Self {
        let model = family
            .models()
            .iter()
            .position(|m| m.is_anytime() && platform.supports_footprint(m.footprint_gb))
            // lint:allow(no-panic): documented panic contract — a baseline without its required model is a setup error
            .expect("App-only needs an anytime model that fits the platform");
        AppOnly {
            model,
            default_cap: platform.default_cap(),
        }
    }
}

impl Scheduler for AppOnly {
    fn name(&self) -> &str {
        "App-only"
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        Decision {
            // App-level adaptation has no notion of the system's devices:
            // work stays on the primary platform, like the default cap
            // stays programmed.
            device: 0,
            model: self.model,
            cap: self.default_cap,
            // Keep refining until the deadline arrives (paper §3.5: "an
            // anytime DNN will keep running until the latency deadline
            // arrives and the last output will be delivered").
            stop: StopPolicy::AtTime(ctx.deadline),
        }
    }

    fn observe(&mut self, _feedback: &Feedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Seconds;

    #[test]
    fn picks_anytime_at_max_cap() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let mut s = AppOnly::new(&family, &platform);
        let d = s.decide(&InputContext {
            index: 0,
            deadline: Seconds(0.2),
            period: Seconds(0.2),
            group: None,
        });
        assert!(family.models()[d.model].is_anytime());
        assert_eq!(d.cap, Watts(45.0));
        assert_eq!(d.stop, StopPolicy::AtTime(Seconds(0.2)));
    }

    #[test]
    #[should_panic(expected = "needs an anytime model")]
    fn rejects_family_without_anytime() {
        let family = ModelFamily::image_classification()
            .restrict(alert_models::family::CandidateSet::TraditionalOnly);
        let _ = AppOnly::new(&family, &Platform::cpu1());
    }
}
