//! The decision-path telemetry layer: typed events, sampling, metric
//! collection, and the miss-explanation flight recorder.
//!
//! Telemetry rides the existing [`EventSink`] fan-out as a new
//! [`EpisodeEvent::Telemetry`] variant, so every delivery guarantee the
//! runtime already makes for lifecycle events (per-session ordering,
//! serial ≡ parallel fan-out) extends to telemetry for free. The layer
//! is **provably non-perturbing** by construction:
//!
//! * events are *derived* from state the controller records anyway
//!   ([`alert_core::DecisionTrace`], written after each selection is
//!   final) — nothing on the decision's value path reads telemetry
//!   state back;
//! * emission happens strictly *after* a session steps, outside the
//!   CPU-metered decision window, so `EpisodeSummary::overhead` is
//!   comparable with telemetry on or off;
//! * recording is deterministic: no wall clocks (the flight recorder is
//!   virtual-time stamped and meters only its own cost via the
//!   sanctioned [`alert_stats::cputime`]), no `HashMap` iteration
//!   (`BTreeMap` everywhere), and sampling decides by input index, not
//!   by time.
//!
//! With [`TelemetryConfig::Off`] (the default), the runtime emits no
//! telemetry events and sink-free hot paths skip event construction
//! entirely — the telemetry-off runtime is byte-for-byte the historical
//! one.

use crate::runtime::{EpisodeEvent, EventSink};
use alert_core::DecisionTrace;
use alert_stats::cputime::DecisionStopwatch;
use alert_stats::telemetry::{MetricsRegistry, MetricsSnapshot, RingBuffer, Scope};
use alert_stats::units::Seconds;
use alert_workload::{AdmissionVerdict, SessionId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How much decision telemetry the runtime emits.
///
/// Sampling is deterministic — a decision event is emitted iff
/// `input_index % k == 0` — so a sampled stream is a strict, replayable
/// subset of the full stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryConfig {
    /// No telemetry events (the historical runtime, byte-for-byte).
    #[default]
    Off,
    /// One decision event per `k` inputs (`index % k == 0`).
    Sampled(usize),
    /// A decision event for every input.
    Full,
}

impl TelemetryConfig {
    /// `true` when no decision events are ever emitted.
    pub fn is_off(&self) -> bool {
        matches!(self, TelemetryConfig::Off) || matches!(self, TelemetryConfig::Sampled(0))
    }

    /// Whether the decision for input `index` is recorded.
    pub fn records(&self, index: usize) -> bool {
        match self {
            TelemetryConfig::Off => false,
            TelemetryConfig::Sampled(k) => *k > 0 && index.is_multiple_of(*k),
            TelemetryConfig::Full => true,
        }
    }
}

/// One scheduling decision, joined with its realized outcome — the
/// payload of [`TelemetryEvent::Decision`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionEvent {
    /// The session that decided.
    pub session: SessionId,
    /// Input index within the session's stream.
    pub index: usize,
    /// The controller's causal record: belief at decision time, cache
    /// hit/miss, lane counts, the selected target and its predictions.
    pub trace: DecisionTrace,
    /// ξ belief mean *after* observing this input's outcome (the
    /// posterior the next decision will use).
    pub post_mean: f64,
    /// ξ belief standard deviation after observing this input.
    pub post_std: f64,
    /// The deadline that was in force for this input.
    pub deadline: Seconds,
    /// Measured execution latency of the input.
    pub realized_latency: Seconds,
    /// `true` when the realized latency exceeded the deadline.
    pub missed: bool,
}

/// The constraint that forced a non-admit verdict (see
/// [`crate::serving::AlertAdmission`]'s probe ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionConstraint {
    /// The shard's queue bound was reached before any belief probe.
    QueueFull,
    /// The predicted queue wait swallowed the whole deadline.
    NoSlack,
    /// The full-quality probe predicted a miss (request degraded).
    FullQualityInfeasible,
    /// Even the degraded-goal probe predicted a miss (request shed).
    DegradedInfeasible,
}

/// One admission verdict with the belief that justified it — the
/// payload of [`TelemetryEvent::Admission`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionEvent {
    /// Position of the request in the storm.
    pub request: usize,
    /// Shard the request was routed to.
    pub shard: usize,
    /// The three-way verdict.
    pub verdict: AdmissionVerdict,
    /// The failing constraint, for degrade/shed verdicts of
    /// constraint-aware policies.
    pub constraint: Option<AdmissionConstraint>,
    /// Predicted miss probability at decision time, if the policy holds
    /// a belief.
    pub predicted_miss: Option<f64>,
    /// ξ belief mean at decision time (belief-based policies only).
    pub belief_mean: Option<f64>,
    /// ξ belief standard deviation at decision time.
    pub belief_std: Option<f64>,
}

/// A typed telemetry event, carried by [`EpisodeEvent::Telemetry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A scheduling decision with its realized outcome.
    Decision(DecisionEvent),
    /// An admission verdict from the serving front-end.
    Admission(AdmissionEvent),
}

/// What a belief-based admission policy learned while judging its most
/// recent request (see `AdmissionPolicy::last_probe`): the failing
/// constraint, the predicted miss, and the belief that justified it.
/// Written off the verdict's value path — `assess` never reads it back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionProbe {
    /// The constraint that forced a non-admit verdict, if any.
    pub constraint: Option<AdmissionConstraint>,
    /// Predicted miss probability under the goal finally judged.
    pub predicted_miss: Option<f64>,
    /// ξ belief `(mean, std_dev)` at decision time.
    pub belief: Option<(f64, f64)>,
}

/// An [`EventSink`] adapter that forwards lifecycle events untouched
/// and decision telemetry only for sampled input indices. Compose it
/// around any sink to thin a full telemetry stream deterministically.
pub struct SamplingSink<S> {
    inner: S,
    config: TelemetryConfig,
}

impl<S: EventSink> SamplingSink<S> {
    /// Wraps `inner`, forwarding decision events per `config`.
    pub fn new(inner: S, config: TelemetryConfig) -> Self {
        SamplingSink { inner, config }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSink> EventSink for SamplingSink<S> {
    fn emit(&mut self, event: &EpisodeEvent) {
        if let EpisodeEvent::Telemetry {
            event: TelemetryEvent::Decision(d),
        } = event
        {
            if !self.config.records(d.index) {
                return;
            }
        }
        self.inner.emit(event);
    }
}

/// A clonable-handle [`EventSink`] that folds every event into a
/// [`MetricsRegistry`] (the `TraceRecorder` idiom: install one clone as
/// the sink, keep another to snapshot).
///
/// Metric names are `'static` literals (lint-enforced); identity lands
/// in [`Scope`]s, so per-session belief gauges and global counters
/// coexist in one registry.
#[derive(Clone, Default)]
pub struct MetricsCollector {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl MetricsCollector {
    /// A collector over an empty registry.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// A copy of the registry as of now.
    pub fn registry(&self) -> MetricsRegistry {
        self.inner.lock().clone()
    }

    /// A deterministic snapshot of the registry as of now.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().snapshot()
    }
}

impl EventSink for MetricsCollector {
    fn emit(&mut self, event: &EpisodeEvent) {
        let mut reg = self.inner.lock();
        match event {
            EpisodeEvent::SessionOpened { .. } => {
                reg.counter_add("sessions_opened", Scope::Global, 1);
            }
            EpisodeEvent::SessionClosed { .. } => {
                reg.counter_add("sessions_closed", Scope::Global, 1);
            }
            EpisodeEvent::InputProcessed { record, .. } => {
                reg.counter_add("inputs", Scope::Global, 1);
                reg.histogram_observe("latency_s", Scope::Global, record.latency.get());
                if !record.warmup && record.latency.get() > record.deadline.get() {
                    reg.counter_add("deadline_misses", Scope::Global, 1);
                }
            }
            EpisodeEvent::Telemetry {
                event: TelemetryEvent::Decision(d),
            } => {
                let scope = Scope::Session(d.session.0);
                reg.counter_add("decisions", Scope::Global, 1);
                if d.trace.cache_hit {
                    reg.counter_add("cache_hits", Scope::Global, 1);
                } else {
                    reg.counter_add("cache_misses", Scope::Global, 1);
                }
                if !d.trace.feasible {
                    reg.counter_add("infeasible_decisions", Scope::Global, 1);
                }
                reg.histogram_observe("decision_cost_s", Scope::Global, d.trace.cost.get());
                reg.gauge_set("belief_mean", scope, d.post_mean);
                reg.gauge_set("belief_std", scope, d.post_std);
                reg.gauge_set("idle_ratio", scope, d.trace.idle_ratio);
            }
            EpisodeEvent::Telemetry {
                event: TelemetryEvent::Admission(a),
            } => {
                let scope = Scope::Shard(a.shard as u64);
                match a.verdict {
                    AdmissionVerdict::Admitted => {
                        reg.counter_add("admitted", Scope::Global, 1);
                        reg.counter_add("admitted", scope, 1);
                    }
                    AdmissionVerdict::Degraded => {
                        reg.counter_add("degraded", Scope::Global, 1);
                        reg.counter_add("degraded", scope, 1);
                    }
                    AdmissionVerdict::Shed => {
                        reg.counter_add("shed", Scope::Global, 1);
                        reg.counter_add("shed", scope, 1);
                    }
                }
                if let Some(mean) = a.belief_mean {
                    reg.gauge_set("admission_belief_mean", Scope::Global, mean);
                }
            }
        }
    }
}

/// One retained decision inside the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEntry {
    /// Virtual-time stamp: the session's cumulative realized latency at
    /// ingest (deterministic — no wall clock).
    pub at: Seconds,
    /// The decision with its outcome.
    pub event: DecisionEvent,
}

/// Per-session flight state: the virtual clock, the bounded window of
/// recent decisions, and the most recent deadline miss (tracked
/// separately so it survives ring wraparound).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionFlight {
    /// Cumulative realized latency of every ingested decision.
    pub clock: Seconds,
    /// The last-N-decisions window.
    pub window: RingBuffer<FlightEntry>,
    /// The most recent missed-deadline decision, if any.
    pub last_miss: Option<FlightEntry>,
}

struct RecorderInner {
    capacity: usize,
    sessions: BTreeMap<u64, SessionFlight>,
    recording_cost: Seconds,
}

/// The miss-explanation flight recorder: a clonable-handle
/// [`EventSink`] retaining the last `N` decisions per session, each
/// virtual-time stamped, so any deadline miss can be dumped as a causal
/// trace — the belief the controller held, the candidates it weighed,
/// what it picked, what it predicted, and what actually happened.
///
/// Ingest cost is metered on the sanctioned CPU clock
/// ([`alert_stats::cputime`]) and accumulated in
/// [`FlightRecorder::recording_cost`] — the recorder audits its own
/// overhead instead of hiding it.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` decisions per session
    /// (capacity 0 retains nothing but still tracks `last_miss`).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                capacity,
                sessions: BTreeMap::new(),
                recording_cost: Seconds::ZERO,
            })),
        }
    }

    /// The retained window of `session`, oldest first (empty when the
    /// session never emitted a decision).
    pub fn dump_session(&self, session: SessionId) -> Vec<FlightEntry> {
        self.inner
            .lock()
            .sessions
            .get(&session.0)
            .map(|s| s.window.to_vec())
            .unwrap_or_default()
    }

    /// The full flight state of `session`, if any decisions were seen.
    pub fn flight(&self, session: SessionId) -> Option<SessionFlight> {
        self.inner.lock().sessions.get(&session.0).cloned()
    }

    /// The most recent missed-deadline decision of `session`.
    pub fn last_miss(&self, session: SessionId) -> Option<FlightEntry> {
        self.inner
            .lock()
            .sessions
            .get(&session.0)
            .and_then(|s| s.last_miss.clone())
    }

    /// Sessions with at least one ingested decision, ascending.
    pub fn sessions(&self) -> Vec<SessionId> {
        self.inner
            .lock()
            .sessions
            .keys()
            .map(|&k| SessionId(k))
            .collect()
    }

    /// Total CPU time this recorder has spent ingesting events —
    /// self-metered on the sanctioned thread-CPU clock.
    pub fn recording_cost(&self) -> Seconds {
        self.inner.lock().recording_cost
    }
}

impl EventSink for FlightRecorder {
    fn emit(&mut self, event: &EpisodeEvent) {
        let EpisodeEvent::Telemetry {
            event: TelemetryEvent::Decision(d),
        } = event
        else {
            return;
        };
        let stopwatch = DecisionStopwatch::start();
        let mut inner = self.inner.lock();
        let capacity = inner.capacity;
        let flight = inner
            .sessions
            .entry(d.session.0)
            .or_insert_with(|| SessionFlight {
                clock: Seconds::ZERO,
                window: RingBuffer::new(capacity),
                last_miss: None,
            });
        flight.clock += d.realized_latency;
        let entry = FlightEntry {
            at: flight.clock,
            event: d.clone(),
        };
        if d.missed {
            flight.last_miss = Some(entry.clone());
        }
        flight.window.push(entry);
        inner.recording_cost += Seconds(stopwatch.elapsed().as_secs_f64());
    }
}

/// Counts of the three admission verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionCounts {
    /// Requests served at full quality.
    pub admitted: u64,
    /// Requests served under the degraded goal.
    pub degraded: u64,
    /// Requests rejected without service.
    pub shed: u64,
}

/// An [`crate::serving::AdmissionPolicy`] decorator that delegates
/// every judgment verbatim to the wrapped policy and, off the verdict's
/// value path, counts verdicts and emits [`AdmissionEvent`]s through a
/// sink. Because `assess`/`observe` pass through unchanged, a serving
/// run under `AdmissionTelemetry<P>` produces a report fingerprint
/// identical to `P` alone.
pub struct AdmissionTelemetry<P> {
    inner: P,
    sink: Box<dyn EventSink>,
    counts: AdmissionCounts,
}

impl<P> AdmissionTelemetry<P> {
    /// Wraps `policy`, emitting admission telemetry into `sink`.
    pub fn new(policy: P, sink: impl EventSink + 'static) -> Self {
        AdmissionTelemetry {
            inner: policy,
            sink: Box::new(sink),
            counts: AdmissionCounts::default(),
        }
    }

    /// Verdict counts so far.
    pub fn counts(&self) -> AdmissionCounts {
        self.counts
    }

    /// Unwraps the decorated policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: crate::serving::AdmissionPolicy> crate::serving::AdmissionPolicy for AdmissionTelemetry<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn assess(
        &mut self,
        ctx: &crate::serving::RequestContext,
    ) -> crate::serving::AdmissionDecision {
        let decision = self.inner.assess(ctx);
        // Everything below is observation: the decision is already made
        // and is returned untouched.
        let (verdict, predicted_miss) = match &decision {
            crate::serving::AdmissionDecision::Admit { predicted_miss } => {
                (AdmissionVerdict::Admitted, *predicted_miss)
            }
            crate::serving::AdmissionDecision::Degrade { predicted_miss, .. } => {
                (AdmissionVerdict::Degraded, *predicted_miss)
            }
            crate::serving::AdmissionDecision::Shed { predicted_miss } => {
                (AdmissionVerdict::Shed, *predicted_miss)
            }
        };
        match verdict {
            AdmissionVerdict::Admitted => self.counts.admitted += 1,
            AdmissionVerdict::Degraded => self.counts.degraded += 1,
            AdmissionVerdict::Shed => self.counts.shed += 1,
        }
        let probe = self.inner.last_probe();
        self.sink.emit(&EpisodeEvent::Telemetry {
            event: TelemetryEvent::Admission(AdmissionEvent {
                request: ctx.index,
                shard: ctx.shard,
                verdict,
                constraint: probe.and_then(|p| p.constraint),
                predicted_miss,
                belief_mean: probe.and_then(|p| p.belief).map(|(m, _)| m),
                belief_std: probe.and_then(|p| p.belief).map(|(_, s)| s),
            }),
        });
        decision
    }

    fn observe(&mut self, record: &alert_workload::InputRecord) {
        self.inner.observe(record);
    }

    fn last_probe(&self) -> Option<AdmissionProbe> {
        self.inner.last_probe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision_event(index: usize, missed: bool, latency: f64) -> DecisionEvent {
        use alert_core::config::Candidate;
        use alert_core::select::Estimates;
        use alert_stats::units::Joules;
        DecisionEvent {
            session: SessionId(3),
            index,
            trace: DecisionTrace {
                cache_hit: index % 2 == 1,
                belief_mean: 1.0 + index as f64 * 0.01,
                belief_std: 0.1,
                idle_ratio: 0.3,
                effective_deadline: Seconds(0.4),
                candidates: 12,
                live: 9,
                selected: Candidate {
                    device: 0,
                    model: 1,
                    stage: 0,
                    power: 1,
                },
                estimates: Estimates {
                    mean_latency: Seconds(0.2),
                    pr_deadline: 0.97,
                    expected_quality: 0.93,
                    energy: Joules(4.0),
                    energy_bound: Joules(5.0),
                },
                feasible: true,
                cost: Seconds(1e-5),
            },
            post_mean: 1.0 + index as f64 * 0.01,
            post_std: 0.09,
            deadline: Seconds(0.4),
            realized_latency: Seconds(latency),
            missed,
        }
    }

    fn telemetry(index: usize, missed: bool, latency: f64) -> EpisodeEvent {
        EpisodeEvent::Telemetry {
            event: TelemetryEvent::Decision(decision_event(index, missed, latency)),
        }
    }

    #[test]
    fn sampling_sink_thins_decisions_deterministically() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let collector = move |e: &EpisodeEvent| {
            if let EpisodeEvent::Telemetry {
                event: TelemetryEvent::Decision(d),
            } = e
            {
                seen2.lock().push(d.index);
            }
        };
        let mut sink = SamplingSink::new(collector, TelemetryConfig::Sampled(3));
        for i in 0..10 {
            sink.emit(&telemetry(i, false, 0.2));
        }
        assert_eq!(*seen.lock(), vec![0, 3, 6, 9]);
    }

    #[test]
    fn sampling_sink_off_drops_all_decisions_but_not_lifecycle() {
        let count = Arc::new(Mutex::new(0usize));
        let count2 = count.clone();
        let mut sink = SamplingSink::new(
            move |_: &EpisodeEvent| {
                *count2.lock() += 1;
            },
            TelemetryConfig::Off,
        );
        sink.emit(&telemetry(0, false, 0.2));
        assert_eq!(*count.lock(), 0);
        assert!(TelemetryConfig::Sampled(0).is_off());
    }

    #[test]
    fn metrics_collector_counts_cache_and_misses() {
        let collector = MetricsCollector::new();
        let mut sink = collector.clone();
        for i in 0..6 {
            sink.emit(&telemetry(i, i == 4, 0.2));
        }
        let reg = collector.registry();
        assert_eq!(reg.counter("decisions", Scope::Global), 6);
        assert_eq!(reg.counter("cache_hits", Scope::Global), 3);
        assert_eq!(reg.counter("cache_misses", Scope::Global), 3);
        assert!(reg.gauge("belief_mean", Scope::Session(3)).is_some());
        let snap = collector.snapshot();
        assert_eq!(snap.counters["decisions"], 6);
    }

    #[test]
    fn flight_recorder_retains_last_n_and_the_miss() {
        let recorder = FlightRecorder::with_capacity(3);
        let mut sink = recorder.clone();
        for i in 0..8 {
            sink.emit(&telemetry(i, i == 2, 0.1));
        }
        let dump = recorder.dump_session(SessionId(3));
        assert_eq!(dump.len(), 3);
        let indices: Vec<usize> = dump.iter().map(|e| e.event.index).collect();
        assert_eq!(indices, vec![5, 6, 7]);
        // Virtual-time stamps accumulate realized latency.
        assert!((dump[0].at.get() - 0.6).abs() < 1e-12);
        assert!((dump[2].at.get() - 0.8).abs() < 1e-12);
        // The miss at index 2 wrapped out of the window but survives in
        // last_miss.
        let miss = recorder.last_miss(SessionId(3)).expect("miss retained");
        assert_eq!(miss.event.index, 2);
        assert!(miss.event.missed);
        assert!(recorder.recording_cost().get() > 0.0);
        assert_eq!(recorder.sessions(), vec![SessionId(3)]);
    }

    #[test]
    fn flight_recorder_capacity_zero_still_tracks_misses() {
        let recorder = FlightRecorder::with_capacity(0);
        let mut sink = recorder.clone();
        sink.emit(&telemetry(0, true, 0.5));
        assert!(recorder.dump_session(SessionId(3)).is_empty());
        assert_eq!(
            recorder.last_miss(SessionId(3)).map(|e| e.event.index),
            Some(0)
        );
    }

    #[test]
    fn flight_state_serde_round_trips() {
        let recorder = FlightRecorder::with_capacity(2);
        let mut sink = recorder.clone();
        for i in 0..4 {
            sink.emit(&telemetry(i, false, 0.1));
        }
        let flight = recorder.flight(SessionId(3)).expect("flight exists");
        let json = serde_json::to_string(&flight).expect("serializes");
        let back: SessionFlight = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, flight);
    }

    #[test]
    fn telemetry_event_serde_round_trips() {
        let e = EpisodeEvent::Telemetry {
            event: TelemetryEvent::Admission(AdmissionEvent {
                request: 7,
                shard: 1,
                verdict: AdmissionVerdict::Shed,
                constraint: Some(AdmissionConstraint::DegradedInfeasible),
                predicted_miss: Some(0.4),
                belief_mean: Some(1.2),
                belief_std: Some(0.2),
            }),
        };
        let json = serde_json::to_string(&e).expect("serializes");
        let back: EpisodeEvent = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, e);
    }
}
