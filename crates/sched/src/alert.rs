//! ALERT wired to the simulator: table construction and the
//! [`Scheduler`] adapter, including the paper's variants.
//!
//! * **ALERT** — the standard candidate set (traditional + anytime).
//! * **ALERT-Any** — anytime network only (the fair-comparison variant
//!   against App-only/Sys-only/No-coord, which share that candidate set).
//! * **ALERT-Trad** — traditional models only.
//! * **ALERT\*** — the mean-only ablation of §5.3 (Fig. 10).

use crate::scheduler::{Decision, Feedback, InputContext, Scheduler};
use alert_core::alert::{AlertController, AlertParams, Observation};
use alert_core::config::{CandidateModel, ConfigTable, StagePoint};
use alert_models::family::CandidateSet;
use alert_models::inference::{self, StopPolicy};
use alert_models::ModelFamily;
use alert_platform::{split_budget, Backend, Platform};
use alert_stats::units::{Seconds, Watts};

/// Builds the controller's candidate table from a family on a platform.
///
/// Models that do not fit the platform's memory are excluded (the
/// embedded board cannot host the big CNNs — paper Fig. 4 footnote).
///
/// # Errors
///
/// Returns a description of the problem when no model of the family fits
/// the platform, or when the profiled table fails validation — both are
/// configuration conditions (family × platform come from user specs).
pub fn build_table(
    family: &ModelFamily,
    platform: &Platform,
) -> Result<(ConfigTable, Vec<usize>), String> {
    build_table_budgeted(family, platform, None)
}

/// The platform's power settings restricted to a shared-budget share;
/// without a share, the full setting table.
fn budgeted_settings(platform: &Platform, share: Option<Watts>) -> Vec<Watts> {
    let all = platform.power_settings();
    match share {
        None => all,
        Some(s) => {
            let kept: Vec<Watts> = all.iter().copied().filter(|p| *p <= s).collect();
            if kept.is_empty() {
                // split_budget floors each share at the backend's own
                // minimum power, so the lowest setting always qualifies;
                // keep it as a defensive floor regardless.
                all.into_iter().take(1).collect()
            } else {
                kept
            }
        }
    }
}

fn build_table_budgeted(
    family: &ModelFamily,
    platform: &Platform,
    share: Option<Watts>,
) -> Result<(ConfigTable, Vec<usize>), String> {
    let powers = budgeted_settings(platform, share);
    let mut models = Vec::new();
    let mut index_map = Vec::new();
    let mut t_prof = Vec::new();
    let mut p_run = Vec::new();
    for (i, m) in family.models().iter().enumerate() {
        if !platform.supports_footprint(m.footprint_gb) {
            continue;
        }
        let candidate = match &m.anytime {
            None => CandidateModel::traditional(m.name.clone(), m.quality, m.fail_quality),
            Some(spec) => CandidateModel::anytime(
                m.name.clone(),
                spec.stages()
                    .iter()
                    .map(|s| StagePoint {
                        frac: s.frac,
                        quality: s.quality,
                    })
                    .collect(),
                m.fail_quality,
            ),
        };
        models.push(candidate);
        index_map.push(i);
        t_prof.push(
            powers
                .iter()
                // lint:allow(no-panic): powers come from the platform's own setting table, so every cap is feasible
                .map(|&p| inference::profile_latency(m, platform, p).expect("feasible cap"))
                .collect(),
        );
        p_run.push(
            powers
                .iter()
                .map(|&p| inference::run_power(m, platform, p))
                .collect(),
        );
    }
    if models.is_empty() {
        return Err(format!(
            "no model of family {} fits platform {}",
            family.name(),
            platform.id()
        ));
    }
    Ok((ConfigTable::new(models, powers, t_prof, p_run)?, index_map))
}

/// Builds a heterogeneous candidate table: `platforms[0]` is device 0
/// (profiled exactly as [`build_table`] profiles it), each further
/// platform joins as an extra device with its own power settings and
/// per-device `t_prof`/`p_run` grids. With a `shared_budget`, the node's
/// power envelope is split across the backends by [`split_budget`]
/// (proportional to each backend's maximum draw, floored at its
/// minimum), and each device only offers the settings inside its share.
///
/// # Errors
///
/// Returns a description of the problem when no model fits the primary
/// platform, when a model of the table does not fit one of the extra
/// devices (restrict the family first — every candidate row must be
/// placeable on every device), or when a profiled grid fails validation.
pub fn build_table_multi(
    family: &ModelFamily,
    platforms: &[&Platform],
    shared_budget: Option<Watts>,
) -> Result<(ConfigTable, Vec<usize>), String> {
    let (primary, extras) = platforms
        .split_first()
        .ok_or_else(|| "heterogeneous table needs at least one platform".to_string())?;
    let shares = shared_budget.map(|total| {
        let backends: Vec<&dyn Backend> = platforms.iter().map(|p| *p as &dyn Backend).collect();
        split_budget(total, &backends)
    });
    let share_of = |d: usize| shares.as_ref().map(|s| s[d]);
    let (mut table, index_map) = build_table_budgeted(family, primary, share_of(0))?;
    for (k, platform) in extras.iter().enumerate() {
        for &fi in &index_map {
            let m = &family.models()[fi];
            if !platform.supports_footprint(m.footprint_gb) {
                return Err(format!(
                    "model {} does not fit platform {}; restrict the family \
                     before building a heterogeneous table",
                    m.name,
                    platform.id()
                ));
            }
        }
        let powers = budgeted_settings(platform, share_of(k + 1));
        let mut t_prof = Vec::new();
        let mut p_run = Vec::new();
        for &fi in &index_map {
            let m = &family.models()[fi];
            t_prof.push(
                powers
                    .iter()
                    // lint:allow(no-panic): powers come from the platform's own setting table, so every cap is feasible
                    .map(|&p| inference::profile_latency(m, platform, p).expect("feasible cap"))
                    .collect(),
            );
            p_run.push(
                powers
                    .iter()
                    .map(|&p| inference::run_power(m, platform, p))
                    .collect(),
            );
        }
        table.add_device(platform.id().to_string(), powers, t_prof, p_run)?;
    }
    Ok((table, index_map))
}

/// ALERT as a [`Scheduler`].
pub struct AlertScheduler {
    name: String,
    controller: AlertController,
    /// Maps table model indices back to family indices.
    index_map: Vec<usize>,
    /// Whether each table model is anytime (cached).
    is_anytime: Vec<bool>,
    base_goal: alert_core::Goal,
}

impl AlertScheduler {
    /// Creates an ALERT scheduler over a candidate subset.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the goal fails
    /// validation, no model of the restricted family fits the platform,
    /// or the controller parameters are invalid — all user-configuration
    /// conditions.
    pub fn new(
        name: impl Into<String>,
        family: &ModelFamily,
        set: CandidateSet,
        platform: &Platform,
        goal: alert_core::Goal,
        params: AlertParams,
    ) -> Result<Self, String> {
        Self::new_hetero(name, family, set, &[platform], None, goal, params)
    }

    /// Creates an ALERT scheduler whose candidate space spans several
    /// backends: each candidate is a (device, model variant, DVFS level)
    /// triple and the controller places every input jointly with its
    /// model and cap choice. `shared_budget` splits one node-level power
    /// envelope across the backends (see [`build_table_multi`]).
    ///
    /// With a single platform and no budget this is exactly
    /// [`AlertScheduler::new`].
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new`] and [`build_table_multi`].
    pub fn new_hetero(
        name: impl Into<String>,
        family: &ModelFamily,
        set: CandidateSet,
        platforms: &[&Platform],
        shared_budget: Option<Watts>,
        goal: alert_core::Goal,
        params: AlertParams,
    ) -> Result<Self, String> {
        goal.validate().map_err(|e| format!("invalid goal: {e}"))?;
        let restricted = family.restrict(set);
        let (table, index_map) = build_table_multi(&restricted, platforms, shared_budget)?;
        let is_anytime = table.models().iter().map(|m| m.is_anytime()).collect();
        // Map restricted indices back to the *original* family indices.
        let family_map: Vec<usize> = index_map
            .iter()
            .map(|&ri| {
                let name = &restricted.models()[ri].name;
                family
                    .models()
                    .iter()
                    .position(|m| &m.name == name)
                    // lint:allow(no-panic): the restricted family is filtered out of this same family, so every member resolves
                    .expect("restricted model exists in family")
            })
            .collect();
        Ok(AlertScheduler {
            name: name.into(),
            controller: AlertController::new(table, params)?,
            index_map: family_map,
            is_anytime,
            base_goal: goal,
        })
    }

    /// The standard ALERT configuration (traditional + anytime).
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new`].
    pub fn standard(
        family: &ModelFamily,
        platform: &Platform,
        goal: alert_core::Goal,
    ) -> Result<Self, String> {
        Self::new(
            "ALERT",
            family,
            CandidateSet::Standard,
            platform,
            goal,
            AlertParams::default(),
        )
    }

    /// Standard ALERT across several backends under one shared power
    /// envelope.
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new_hetero`].
    pub fn standard_hetero(
        family: &ModelFamily,
        platforms: &[&Platform],
        shared_budget: Option<Watts>,
        goal: alert_core::Goal,
    ) -> Result<Self, String> {
        Self::new_hetero(
            "ALERT",
            family,
            CandidateSet::Standard,
            platforms,
            shared_budget,
            goal,
            AlertParams::default(),
        )
    }

    /// ALERT-Any: anytime candidates only.
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new`].
    pub fn anytime_only(
        family: &ModelFamily,
        platform: &Platform,
        goal: alert_core::Goal,
    ) -> Result<Self, String> {
        Self::new(
            "ALERT-Any",
            family,
            CandidateSet::AnytimeOnly,
            platform,
            goal,
            AlertParams::default(),
        )
    }

    /// ALERT-Trad: traditional candidates only.
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new`].
    pub fn traditional_only(
        family: &ModelFamily,
        platform: &Platform,
        goal: alert_core::Goal,
    ) -> Result<Self, String> {
        Self::new(
            "ALERT-Trad",
            family,
            CandidateSet::TraditionalOnly,
            platform,
            goal,
            AlertParams::default(),
        )
    }

    /// ALERT\*: the mean-only ablation (§5.3).
    ///
    /// # Errors
    ///
    /// See [`AlertScheduler::new`].
    pub fn mean_only(
        family: &ModelFamily,
        platform: &Platform,
        goal: alert_core::Goal,
    ) -> Result<Self, String> {
        Self::new(
            "ALERT*",
            family,
            CandidateSet::Standard,
            platform,
            goal,
            AlertParams::mean_only(),
        )
    }

    /// Read access to the controller (diagnostics: ξ, φ, overhead).
    pub fn controller(&self) -> &AlertController {
        &self.controller
    }
}

impl Scheduler for AlertScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn sync_goal(&mut self, goal: &alert_core::Goal) {
        // Scripted goal changes (§5): the controller retargets the new
        // requirement on the next decision. Same-valued syncs are free —
        // the decision cache keys on the goal bits.
        self.base_goal = *goal;
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let goal = self.base_goal.with_deadline(ctx.deadline);
        // `base_goal` was validated in `AlertScheduler::new` and the
        // harness guarantees positive effective deadlines, so the goal
        // handed to the controller is valid by construction.
        let sel = self
            .controller
            .decide_with_period(&goal, ctx.period)
            // lint:allow(no-panic): see comment above — base_goal is validated in new() and deadlines are positive
            .expect("goal validated at construction");
        let c = sel.candidate;
        let cap = self.controller.table().cap_on(c.device, c.power);
        let stop = if self.is_anytime[c.model] {
            // Run toward the chosen stage but never past the (overhead-
            // compensated) deadline — the §3.5 execution mode.
            StopPolicy::AtTimeOrStage(sel.deadline, c.stage)
        } else {
            StopPolicy::RunToCompletion
        };
        Decision {
            device: c.device,
            model: self.index_map[c.model],
            cap,
            stop,
        }
    }

    fn observe(&mut self, fb: &Feedback) {
        self.controller.observe(&Observation {
            latency: fb.result.latency,
            profile_equivalent: fb.result.profile_equivalent,
            idle_power: fb.idle_power,
            idle_cap: fb.decision.cap,
        });
    }

    fn last_decision_cost(&self) -> Seconds {
        self.controller.last_decision_cost()
    }

    fn controller_snapshot(&self) -> Option<alert_core::ControllerSnapshot> {
        Some(self.controller.snapshot())
    }

    fn restore_controller(&mut self, snapshot: &alert_core::ControllerSnapshot) {
        self.controller.restore(snapshot);
    }

    fn decision_trace(&self) -> Option<alert_core::DecisionTrace> {
        self.controller.last_trace()
    }

    fn belief(&self) -> Option<(f64, f64)> {
        let xi = self.controller.slowdown();
        Some((xi.mean(), xi.std_dev()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::{Joules, Watts};

    #[test]
    fn table_covers_family_times_powers() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let (table, map) = build_table(&family, &platform).unwrap();
        assert_eq!(table.models().len(), 6);
        assert_eq!(map.len(), 6);
        assert_eq!(table.powers().len(), 15);
        // Anytime model contributes 4 stages: 5×1 + 4 = 9 stage rows.
        assert_eq!(table.candidate_count(), 9 * 15);
    }

    #[test]
    fn embedded_filters_oversized_models() {
        let family = ModelFamily::sentence_prediction();
        let platform = Platform::embedded();
        let (table, _) = build_table(&family, &platform).unwrap();
        // Only models ≤ 0.4 GB fit: rnn_w128..w1024 (0.35) and the
        // width-nest (0.38): all six fit.
        assert_eq!(table.models().len(), 6);
        let family = ModelFamily::image_classification();
        // No image model fits 0.4 GB except sparse_resnet_8 (0.15),
        // sparse_resnet_14 (0.22) and sparse_resnet_26 (0.34).
        let (table, _) = build_table(&family, &platform).unwrap();
        assert_eq!(table.models().len(), 3);
    }

    #[test]
    fn alert_scheduler_runs_and_learns() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = alert_core::Goal::minimize_error(Seconds(0.5), Joules(25.0));
        let mut s = AlertScheduler::standard(&family, &platform, goal).unwrap();
        let ctx = InputContext {
            index: 0,
            deadline: Seconds(0.5),
            period: Seconds(0.5),
            group: None,
        };
        let d = s.decide(&ctx);
        assert!(d.model < family.len());
        assert!(platform.power_settings().contains(&d.cap));
        // Feed a slow observation; the slowdown estimate must move.
        let m = &family.models()[d.model];
        let result =
            alert_models::inference::execute(m, &platform, d.cap, 1.7, StopPolicy::RunToCompletion)
                .unwrap();
        let quality = result.quality_by(ctx.deadline, m.fail_quality);
        s.observe(&Feedback {
            index: 0,
            decision: d,
            result,
            quality,
            energy: Joules(1.0),
            idle_power: Some(Watts(5.0)),
            deadline: ctx.deadline,
        });
        assert!(s.controller().slowdown().mean() > 1.3);
    }

    #[test]
    fn variant_names() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = alert_core::Goal::minimize_energy(Seconds(0.5), 0.9);
        assert_eq!(
            AlertScheduler::standard(&family, &platform, goal)
                .unwrap()
                .name(),
            "ALERT"
        );
        assert_eq!(
            AlertScheduler::anytime_only(&family, &platform, goal)
                .unwrap()
                .name(),
            "ALERT-Any"
        );
        assert_eq!(
            AlertScheduler::traditional_only(&family, &platform, goal)
                .unwrap()
                .name(),
            "ALERT-Trad"
        );
        assert_eq!(
            AlertScheduler::mean_only(&family, &platform, goal)
                .unwrap()
                .name(),
            "ALERT*"
        );
    }
}
