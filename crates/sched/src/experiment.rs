//! The full experiment driver: per-setting episodes and the Table 4 /
//! Table 5 sweeps, as thin adapters over the session runtime.
//!
//! One *cell* of Table 4 is (platform × family × scenario × objective):
//! 35 constraint settings, each run under every scheme and normalized to
//! OracleStatic. Settings are embarrassingly parallel; the driver fans
//! them out over scoped threads, one [`Runtime`] per worker, every
//! scheme of a setting running as a session on the *shared* frozen
//! environment (bit-identical conditions, paper §5.1).
//!
//! Scheme dispatch goes through [`crate::registry::PolicyRegistry`];
//! [`SchemeKind`] remains as the typed enumeration of the paper's nine
//! schemes (its `name()` values are the registry keys).

use crate::env::EpisodeEnv;
use crate::harness::Episode;
use crate::metrics::{objective_report, ResultTable};
use crate::oracle::OracleStatic;
use crate::registry::{PolicyContext, PolicyRegistry};
use crate::runtime::{Runtime, SessionSpec};
use crate::scheduler::Scheduler;
use alert_core::alert::AlertParams;
use alert_models::{ModelFamily, QualityMetric};
use alert_platform::{Platform, PlatformId};
use alert_workload::{constraint_grid, Goal, InputStream, Objective, Scenario, TaskId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The schemes of Tables 3–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// ALERT with the standard candidate set.
    Alert,
    /// ALERT restricted to the anytime network.
    AlertAny,
    /// ALERT restricted to traditional models.
    AlertTrad,
    /// The mean-only ablation ALERT\*.
    AlertStar,
    /// Per-input perfect-knowledge oracle.
    Oracle,
    /// Best static configuration (the normalization baseline).
    OracleStatic,
    /// Anytime DNN at default power.
    AppOnly,
    /// Fastest DNN + power management.
    SysOnly,
    /// Independent app + sys adaptation.
    NoCoord,
}

impl SchemeKind {
    /// Display name (table column label).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Alert => "ALERT",
            SchemeKind::AlertAny => "ALERT-Any",
            SchemeKind::AlertTrad => "ALERT-Trad",
            SchemeKind::AlertStar => "ALERT*",
            SchemeKind::Oracle => "Oracle",
            SchemeKind::OracleStatic => "OracleStatic",
            SchemeKind::AppOnly => "App-only",
            SchemeKind::SysOnly => "Sys-only",
            SchemeKind::NoCoord => "No-coord",
        }
    }

    /// The scheme set of Table 4 (plus the baseline).
    pub const TABLE4: [SchemeKind; 7] = [
        SchemeKind::Alert,
        SchemeKind::AlertAny,
        SchemeKind::SysOnly,
        SchemeKind::AppOnly,
        SchemeKind::NoCoord,
        SchemeKind::Oracle,
        SchemeKind::OracleStatic,
    ];

    /// The scheme set of Table 5.
    pub const TABLE5: [SchemeKind; 4] = [
        SchemeKind::Alert,
        SchemeKind::AlertAny,
        SchemeKind::AlertTrad,
        SchemeKind::OracleStatic,
    ];
}

/// Builds a scheduler instance for one episode.
///
/// Compatibility shim over the open registry: resolves
/// [`SchemeKind::name`] through [`PolicyRegistry::builtin`]. New code
/// should hold a registry (possibly with custom policies) and build
/// through it, or address schemes by name via the runtime.
pub fn build_scheduler(
    kind: SchemeKind,
    family: &ModelFamily,
    platform: &Platform,
    goal: Goal,
    env: &Arc<EpisodeEnv>,
    stream: &InputStream,
) -> Box<dyn Scheduler> {
    let ctx = PolicyContext {
        family,
        platform,
        goal,
        params: AlertParams::default(),
        shared_budget: None,
        env,
        stream,
    };
    PolicyRegistry::builtin()
        .build(kind.name(), &ctx)
        // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
        .expect("every SchemeKind is pre-registered and the paper families fit their platforms")
}

/// The two workloads of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FamilyKind {
    /// Sparse ResNet + Depth-Nest (image classification).
    Image,
    /// RNN widths + Width-Nest (sentence prediction).
    Sentence,
}

impl FamilyKind {
    /// The candidate family.
    pub fn family(&self) -> ModelFamily {
        match self {
            FamilyKind::Image => ModelFamily::image_classification(),
            FamilyKind::Sentence => ModelFamily::sentence_prediction(),
        }
    }

    /// The driving input stream's task.
    pub fn task(&self) -> TaskId {
        match self {
            FamilyKind::Image => TaskId::Img2,
            FamilyKind::Sentence => TaskId::Nlp1,
        }
    }

    /// Table row label fragment ("Sparse Resnet" / "RNN" in the paper).
    pub fn label(&self) -> &'static str {
        match self {
            FamilyKind::Image => "SparseResnet",
            FamilyKind::Sentence => "RNN",
        }
    }

    /// Reporting metric of the family.
    pub fn metric(&self) -> QualityMetric {
        match self {
            FamilyKind::Image => QualityMetric::Top5Accuracy,
            FamilyKind::Sentence => QualityMetric::Perplexity,
        }
    }
}

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Inputs per episode (words for grouped tasks).
    pub n_inputs: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the setting sweep.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            n_inputs: 300,
            seed: 2020,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// A single-worker [`Runtime`] over an explicit family/platform pair,
/// as the sweeps need it (the sweep owns streams and environments; the
/// runtime owns sessions).
fn sweep_runtime(family: &ModelFamily, platform: &Platform, task: TaskId) -> Runtime {
    Runtime::builder()
        .platform(platform.id())
        .family_custom(family.clone(), task)
        .build()
        // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
        .expect("builtin policy resolves")
}

/// Runs one scheme on one constraint setting; returns the episode.
/// Thin adapter: one runtime, one session on a freshly frozen
/// environment.
pub fn run_setting(
    kind: SchemeKind,
    family: &ModelFamily,
    platform: &Platform,
    scenario: &Scenario,
    goal: Goal,
    stream: &InputStream,
    seed: u64,
) -> Episode {
    let env = Arc::new(
        EpisodeEnv::build(platform, scenario, stream, &goal, seed)
            // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
            .expect("library scenarios validate"),
    );
    let mut rt = sweep_runtime(family, platform, stream.task());
    let id = rt
        .session(SessionSpec::external(goal))
        .policy(kind.name())
        .on(stream.clone(), env)
        .open()
        // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
        .expect("builtin policy resolves");
    rt.run_to_completion(id).expect("session is open"); // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
    rt.close(id).expect("session is open") // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
}

/// All per-scheme episodes of one constraint setting, plus the cell-level
/// static baseline's episode on this setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SettingOutcome {
    /// The constraint setting.
    pub goal: Goal,
    /// Episodes keyed by scheme name.
    pub episodes: Vec<Episode>,
    /// The OracleStatic baseline episode (the cell-wide pinned
    /// configuration replayed on this setting).
    pub baseline: Episode,
}

/// Runs one full cell: every scheme on every constraint setting, in
/// parallel over settings.
///
/// The OracleStatic baseline is selected once per cell — "one fixed
/// setting across inputs" *and* across the requirement range — and its
/// episode on each setting is returned in
/// [`SettingOutcome::baseline`]. A `SchemeKind::OracleStatic` entry in
/// `schemes` reuses that episode as a column.
pub fn run_cell(
    objective: Objective,
    family_kind: FamilyKind,
    platform: &Platform,
    scenario: &Scenario,
    schemes: &[SchemeKind],
    config: &ExperimentConfig,
) -> Vec<SettingOutcome> {
    let family = family_kind.family();
    let stream = InputStream::generate(family_kind.task(), config.n_inputs, config.seed);
    let settings = constraint_grid(objective, &family, platform);

    // Frozen environment per setting (period = deadline, so each setting
    // has its own realization, deterministically seeded).
    let cell: Vec<(Arc<EpisodeEnv>, Goal)> = settings
        .iter()
        .map(|&goal| {
            (
                Arc::new(
                    EpisodeEnv::build(platform, scenario, &stream, &goal, config.seed)
                        // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
                        .expect("library scenarios validate"),
                ),
                goal,
            )
        })
        .collect();
    let static_choice = OracleStatic::for_cell(&cell, family.clone(), &stream).choice();

    let results: Mutex<Vec<(usize, SettingOutcome)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);
    std::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            scope.spawn(|| {
                // One runtime per worker; each setting's schemes run as
                // sessions on the setting's shared frozen environment.
                let mut rt = sweep_runtime(&family, platform, stream.task());
                loop {
                    let idx = {
                        let mut n = next.lock();
                        let i = *n;
                        *n += 1;
                        i
                    };
                    if idx >= cell.len() {
                        break;
                    }
                    let (env, goal) = &cell[idx];
                    let run = |rt: &mut Runtime, id| {
                        rt.run_to_completion(id).expect("session is open"); // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
                        rt.close(id).expect("session is open") // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
                    };
                    // The cell-pinned static baseline carries out-of-band
                    // state (the cell-wide choice), so it enters through
                    // the pre-built-scheduler door.
                    let id = rt
                        .session(SessionSpec::external(*goal))
                        .on(stream.clone(), env.clone())
                        .with(Box::new(OracleStatic::from_choice(static_choice)))
                        .open()
                        // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
                        .expect("pre-built scheduler session opens");
                    let baseline = run(&mut rt, id);
                    let episodes: Vec<Episode> = schemes
                        .iter()
                        .map(|&k| {
                            if k == SchemeKind::OracleStatic {
                                baseline.clone()
                            } else {
                                let id = rt
                                    .session(SessionSpec::external(*goal))
                                    .policy(k.name())
                                    .on(stream.clone(), env.clone())
                                    .open()
                                    // lint:allow(no-panic): experiment-harness wiring over the built-in registry and library scenarios; failure is a programming error, not a runtime condition
                                    .expect("builtin policy resolves");
                                run(&mut rt, id)
                            }
                        })
                        .collect();
                    results.lock().push((
                        idx,
                        SettingOutcome {
                            goal: *goal,
                            episodes,
                            baseline,
                        },
                    ));
                }
            });
        }
    });

    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, s)| s).collect()
}

/// Accumulates cell outcomes into a [`ResultTable`] row, normalizing every
/// scheme to the cell-level OracleStatic baseline.
pub fn accumulate_row(
    table: &mut ResultTable,
    row_label: &str,
    outcomes: &[SettingOutcome],
    metric: QualityMetric,
) {
    for outcome in outcomes {
        // The baseline value is the static configuration's measured
        // objective on this setting — used as the normalizer whether or
        // not the static scheme met the constraints there (it is the
        // reference *performance*, not a feasibility certificate).
        let baseline = Some(objective_report(
            &outcome.baseline.summary,
            &outcome.goal,
            metric,
        ));
        for ep in &outcome.episodes {
            let value = objective_report(&ep.summary, &outcome.goal, metric);
            table
                .cell(row_label, &ep.scheme)
                .add(&ep.summary, value, baseline);
        }
    }
}

/// One row specification of Table 4 / Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowSpec {
    /// Platform of the row.
    pub platform: PlatformId,
    /// Workload of the row.
    pub family: FamilyKind,
    /// Environment name ("Idle" in the paper = our "Default").
    pub scenario: String,
}

/// The Table 4 row grid: {CPU1, CPU2} × {image, RNN} × 3 environments,
/// plus GPU × image × 3 environments (RNN inference is CPU-only, §5.1).
pub fn table4_rows() -> Vec<(PlatformId, FamilyKind)> {
    vec![
        (PlatformId::Cpu1, FamilyKind::Image),
        (PlatformId::Cpu1, FamilyKind::Sentence),
        (PlatformId::Cpu2, FamilyKind::Image),
        (PlatformId::Cpu2, FamilyKind::Sentence),
        (PlatformId::Gpu, FamilyKind::Image),
    ]
}

/// Runs a full table (Table 4 when given `SchemeKind::TABLE4`, Table 5
/// with `SchemeKind::TABLE5`) for one objective.
pub fn run_table(
    objective: Objective,
    schemes: &[SchemeKind],
    config: &ExperimentConfig,
) -> ResultTable {
    let mut table = ResultTable::new();
    for (pid, fam) in table4_rows() {
        let platform = Platform::by_id(pid);
        for scenario in Scenario::table3(config.seed) {
            let outcomes = run_cell(objective, fam, &platform, &scenario, schemes, config);
            let label = format!("{}/{}/{}", pid, fam.label(), scenario.name());
            accumulate_row(&mut table, &label, &outcomes, fam.metric());
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            n_inputs: 80,
            seed: 7,
            threads: 4,
        }
    }

    #[test]
    fn run_setting_produces_full_episode() {
        let family = FamilyKind::Image.family();
        let platform = Platform::cpu1();
        let stream = InputStream::generate(TaskId::Img2, 60, 7);
        let goal = Goal::minimize_energy(alert_stats::units::Seconds(0.4), 0.9);
        let ep = run_setting(
            SchemeKind::Alert,
            &family,
            &platform,
            &Scenario::default_env(),
            goal,
            &stream,
            7,
        );
        assert_eq!(ep.records.len(), 60);
        assert_eq!(ep.scheme, "ALERT");
    }

    #[test]
    fn cell_covers_all_settings_and_schemes() {
        let platform = Platform::cpu1();
        let schemes = [SchemeKind::Alert, SchemeKind::OracleStatic];
        let outcomes = run_cell(
            Objective::MinimizeEnergy,
            FamilyKind::Image,
            &platform,
            &Scenario::default_env(),
            &schemes,
            &small_config(),
        );
        assert_eq!(outcomes.len(), 35);
        for o in &outcomes {
            assert_eq!(o.episodes.len(), 2);
        }
    }

    #[test]
    fn accumulate_row_normalizes_to_baseline() {
        let platform = Platform::cpu1();
        let schemes = [
            SchemeKind::Alert,
            SchemeKind::Oracle,
            SchemeKind::OracleStatic,
        ];
        let outcomes = run_cell(
            Objective::MinimizeEnergy,
            FamilyKind::Image,
            &platform,
            &Scenario::default_env(),
            &schemes,
            &small_config(),
        );
        let mut table = ResultTable::new();
        accumulate_row(
            &mut table,
            "CPU1/img/Default",
            &outcomes,
            QualityMetric::Top5Accuracy,
        );
        let row = &table.cells["CPU1/img/Default"];
        // OracleStatic normalizes to itself: mean ratio ≈ 1.
        let base = row["OracleStatic"].mean_ratio().unwrap();
        assert!((base - 1.0).abs() < 1e-9);
        // The dynamic oracle is at least as good as the static one.
        let oracle = row["Oracle"].mean_ratio().unwrap();
        assert!(oracle <= 1.0 + 1e-9, "oracle ratio {oracle}");
        // ALERT sits between oracle and ~static.
        let alert = row["ALERT"].mean_ratio().unwrap();
        assert!(alert <= 1.1, "alert ratio {alert}");
        assert!(
            alert >= oracle - 0.05,
            "alert ratio {alert} vs oracle {oracle}"
        );
    }

    #[test]
    fn scheme_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = SchemeKind::TABLE4.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), SchemeKind::TABLE4.len());
    }
}
