//! The scheduler interface every scheme implements.
//!
//! A scheduler sees exactly what a real runtime would see: the effective
//! deadline of the next input (after shared-budget adjustment) and, after
//! execution, the measured latency, delivered quality, idle power and
//! energy. Everything else — the environment, the other schemes, the
//! future — is hidden. The Oracle schemes are the deliberate exception:
//! they are constructed *with* the frozen environment (paper §5.1 calls
//! them impractical for exactly this reason).

use alert_core::{ControllerSnapshot, DecisionTrace};
use alert_models::inference::{InferenceResult, StopPolicy};
use alert_stats::units::{Joules, Seconds, Watts};
use alert_workload::{Goal, GroupPos};

/// What the scheduler knows before dispatching one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputContext {
    /// Input index within the episode.
    pub index: usize,
    /// Effective deadline for this input (shared-budget adjusted).
    pub deadline: Seconds,
    /// The idle-accounting period (equals the goal deadline).
    pub period: Seconds,
    /// Group (sentence) position, if the task is grouped.
    pub group: Option<GroupPos>,
}

/// What the scheduler decided for one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Device the input is placed on (index into the episode
    /// environment's backend list; `0` is the primary platform, so
    /// single-backend schemes can leave it defaulted).
    pub device: usize,
    /// Index of the model in the episode's family.
    pub model: usize,
    /// Power cap to program on the chosen device.
    pub cap: Watts,
    /// Execution stop policy.
    pub stop: StopPolicy,
}

/// What the scheduler learns after one input.
#[derive(Debug, Clone, PartialEq)]
pub struct Feedback {
    /// Input index.
    pub index: usize,
    /// The decision that was executed.
    pub decision: Decision,
    /// The execution outcome (latency, stages, slowdown denominator).
    pub result: InferenceResult,
    /// Quality score of the delivered answer.
    pub quality: f64,
    /// Measured period energy.
    pub energy: Joules,
    /// Idle power measured while waiting, if an idle interval existed.
    pub idle_power: Option<Watts>,
    /// The deadline that was in force.
    pub deadline: Seconds,
}

/// A per-input scheduling policy.
///
/// `Send` is a supertrait so sessions (which own their scheduler) can be
/// moved onto worker shards by the parallel executor
/// (`Runtime::drain_parallel`, `ShardedRuntime`); schedulers hold only
/// their own learned state plus `Arc`-shared read-only context, so this
/// costs implementations nothing.
pub trait Scheduler: Send {
    /// Scheme name for reporting (Table 3/4 row labels).
    fn name(&self) -> &str;

    /// Announces the requirement in force for the next input. The
    /// harness calls this before every [`Scheduler::decide`] with the
    /// scenario's effective goal — under scripted goal changes (paper §5:
    /// deadlines tighten, floors move, budgets shrink mid-stream) this is
    /// how a scheme learns the new target. Schemes that only consume the
    /// per-input deadline (already carried by [`InputContext`]) may
    /// ignore it; the default does.
    fn sync_goal(&mut self, _goal: &Goal) {}

    /// Picks the configuration for the next input.
    fn decide(&mut self, ctx: &InputContext) -> Decision;

    /// Consumes the measurements of the input just processed.
    fn observe(&mut self, feedback: &Feedback);

    /// Measured cost of the most recent decision, when the scheme tracks
    /// it (ALERT does, §4). Metered on the thread-CPU clock where the
    /// platform has one, so co-runner preemption and lock waits are not
    /// billed to the scheduler (see `alert_core::alert::OverheadPolicy`).
    fn last_decision_cost(&self) -> Seconds {
        Seconds::ZERO
    }

    /// Exports the scheme's learned state for session checkpointing, if
    /// the scheme supports it (the ALERT family does; stateless and
    /// oracle schemes return `None` and sessions running them cannot be
    /// migrated mid-stream).
    fn controller_snapshot(&self) -> Option<ControllerSnapshot> {
        None
    }

    /// Restores previously exported state into a freshly built scheme
    /// instance (the migration path). Schemes that do not support
    /// snapshots ignore the call.
    fn restore_controller(&mut self, _snapshot: &ControllerSnapshot) {}

    /// Causal record of the most recent decision, for schemes that keep
    /// one (the ALERT family does). Pure observability: the runtime
    /// reads it *after* stepping a session to build telemetry events;
    /// nothing on the decision path consumes it. Default: none.
    fn decision_trace(&self) -> Option<DecisionTrace> {
        None
    }

    /// The scheme's current environment belief as `(mean, std_dev)` of
    /// the global slowdown ξ — *after* the latest
    /// [`Scheduler::observe`], so readers see the posterior the next
    /// decision will use. Default: none (belief-free schemes).
    fn belief(&self) -> Option<(f64, f64)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial scheduler used by harness tests: fixed model and cap.
    pub struct FixedScheduler {
        pub model: usize,
        pub cap: Watts,
        pub observed: usize,
    }

    impl Scheduler for FixedScheduler {
        fn name(&self) -> &str {
            "Fixed"
        }

        fn decide(&mut self, _ctx: &InputContext) -> Decision {
            Decision {
                device: 0,
                model: self.model,
                cap: self.cap,
                stop: StopPolicy::RunToCompletion,
            }
        }

        fn observe(&mut self, _feedback: &Feedback) {
            self.observed += 1;
        }
    }

    #[test]
    fn trait_object_works() {
        let mut s: Box<dyn Scheduler> = Box::new(FixedScheduler {
            model: 0,
            cap: Watts(50.0),
            observed: 0,
        });
        let d = s.decide(&InputContext {
            index: 0,
            deadline: Seconds(0.1),
            period: Seconds(0.1),
            group: None,
        });
        assert_eq!(d.model, 0);
        assert_eq!(s.name(), "Fixed");
        assert_eq!(s.last_decision_cost(), Seconds::ZERO);
    }
}
