//! The parallel sharded session executor.
//!
//! The serial runtime drains sessions one thread, one step at a time —
//! throughput is pinned to a single core no matter how many sessions are
//! open. This module scales the drain with the hardware while keeping
//! the repository's headline guarantee intact:
//!
//! * **Sharding** — sessions are partitioned by [`SessionId::shard_of`]
//!   onto worker shards; each shard drains *its* sessions round-robin on
//!   its own scoped thread (`std::thread::scope`, no new dependencies).
//! * **Determinism** — a session owns all of its mutable state
//!   (scheduler, frozen environment handle, stream cursor, budget);
//!   workers share only the `Arc`-held read-only context (platform,
//!   candidate family, policy registry). A session's step sequence is
//!   therefore independent of which thread runs it or what its
//!   neighbours do, so parallel episodes are **bit-identical** to the
//!   serial drain's (`tests/parallel_executor.rs`).
//! * **Event ordering** — workers fan sink events into one mpsc channel,
//!   drained on the calling thread. The channel preserves per-sender
//!   FIFO order and each session lives on exactly one worker, so every
//!   consumer still sees each session's `InputProcessed` events in index
//!   order followed by its `SessionClosed` — the same per-session stream
//!   the serial drain delivers. Cross-session interleaving is
//!   scheduling-dependent, as it (implicitly) always was.
//!
//! Two surfaces build on this:
//!
//! * [`Runtime::drain_parallel`](crate::runtime::Runtime::drain_parallel)
//!   — one-shot: partition the runtime's open sessions, drain, return
//!   episodes ascending by id.
//! * [`ShardedRuntime`] — long-lived: `workers` single-threaded shard
//!   runtimes with disjoint stride-allocated id spaces
//!   (`RuntimeBuilder::session_ids`), serving `open`/`submit`/`close`
//!   routed by id and draining all shards in parallel on demand.

use crate::env::EpisodeEnv;
use crate::harness::Episode;
use crate::registry::PolicyRegistry;
use crate::runtime::{
    EpisodeEvent, EventSink, Runtime, RuntimeBuilder, RuntimeError, Session, SessionOptions,
    SessionSnapshot, SessionSpec,
};
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_workload::{InputRecord, InputStream, SessionId};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Drains pre-partitioned shards to completion, one scoped worker thread
/// per shard, and returns the episodes ascending by session id.
///
/// Sink events are forwarded through an mpsc channel and emitted on the
/// calling thread (the sinks are `&mut` — they never cross threads), in
/// per-session order. When no sink is installed the workers skip the
/// per-record clone entirely, keeping the drain hot path allocation-lean.
pub(crate) fn drain_shards(
    shards: Vec<Vec<(SessionId, Session)>>,
    family: &ModelFamily,
    sinks: &mut [Box<dyn EventSink>],
    telemetry: crate::telemetry::TelemetryConfig,
) -> Result<Vec<(SessionId, Episode)>, RuntimeError> {
    let (tx, rx) = mpsc::channel::<EpisodeEvent>();
    let emit = !sinks.is_empty();
    let mut episodes: Vec<(SessionId, Episode)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .filter(|shard| !shard.is_empty())
            .map(|shard| {
                let tx = emit.then(|| tx.clone());
                scope.spawn(move || drain_shard(shard, family, tx, telemetry))
            })
            .collect();
        // The workers hold the only remaining senders: once they finish,
        // the channel disconnects and the pump below terminates.
        drop(tx);
        for event in rx.iter() {
            for sink in sinks.iter_mut() {
                sink.emit(&event);
            }
        }
        handles
            .into_iter()
            // lint:allow(no-panic): join() only errs if the worker panicked; re-raising that panic is the correct propagation
            .map(|h| h.join().expect("executor worker panicked"))
            .collect::<Result<Vec<_>, RuntimeError>>()
            .map(|per_shard| per_shard.into_iter().flatten().collect())
    })?;
    episodes.sort_by_key(|(id, _)| *id);
    Ok(episodes)
}

/// One worker: round-robin over the shard's sessions (each live session
/// advances one input per round — the exact per-session step sequence of
/// the serial drain), then fold and close in id order. A step error
/// (scheduler bug) aborts the shard; the drain propagates the first one.
fn drain_shard(
    mut shard: Vec<(SessionId, Session)>,
    family: &ModelFamily,
    tx: Option<mpsc::Sender<EpisodeEvent>>,
    telemetry: crate::telemetry::TelemetryConfig,
) -> Result<Vec<(SessionId, Episode)>, RuntimeError> {
    shard.sort_by_key(|(id, _)| *id);
    let mut live: Vec<usize> = (0..shard.len()).collect();
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for k in live {
            let (id, session) = &mut shard[k];
            if let Some(record) = session.step(family)? {
                if let Some(tx) = &tx {
                    // Cloning first releases the step borrow so the
                    // scheduler's trace is readable; both events then
                    // ship in the serial drain's order — InputProcessed,
                    // then its Telemetry.
                    let record = record.clone();
                    let event = Runtime::decision_telemetry(
                        telemetry,
                        *id,
                        &record,
                        session.scheduler.as_ref(),
                    );
                    let _ = tx.send(EpisodeEvent::InputProcessed {
                        session: *id,
                        record,
                    });
                    if let Some(event) = event {
                        let _ = tx.send(event);
                    }
                }
                still.push(k);
            }
        }
        live = still;
    }
    Ok(shard
        .into_iter()
        .map(|(id, session)| {
            let scheme = session.scheme.clone();
            let episode = session.finish();
            if let Some(tx) = &tx {
                let _ = tx.send(EpisodeEvent::SessionClosed {
                    session: id,
                    scheme,
                    summary: episode.summary.clone(),
                });
            }
            (id, episode)
        })
        .collect())
}

/// A long-lived multi-worker serving runtime: `workers` single-threaded
/// shard [`Runtime`]s sharing one `Arc`-held read-only context (platform,
/// candidate family, policy registry), with session ids stride-allocated
/// so `id.shard_of(workers)` routes every request to its owner.
///
/// Serial operations (`open_session`, `submit`, `close`, …) behave
/// exactly like their [`Runtime`] counterparts on the owning shard;
/// [`ShardedRuntime::drain`] drains *all* shards in parallel, one thread
/// per shard. Episodes and sink event streams are bit-identical
/// per-session to a single serial runtime serving the same specs
/// (`tests/parallel_executor.rs`).
///
/// Build one with [`RuntimeBuilder::build_sharded`]:
///
/// ```
/// use alert_sched::runtime::Runtime;
///
/// let sharded = Runtime::builder().build_sharded(4).expect("builds");
/// assert_eq!(sharded.workers(), 4);
/// ```
pub struct ShardedRuntime {
    shards: Vec<Runtime>,
    sinks: Vec<Box<dyn EventSink>>,
    rx: mpsc::Receiver<EpisodeEvent>,
    /// Round-robin cursor for placing newly opened sessions.
    next_shard: usize,
}

impl ShardedRuntime {
    /// Builds the sharded runtime from a configured [`RuntimeBuilder`]
    /// (the implementation behind [`RuntimeBuilder::build_sharded`]).
    ///
    /// The builder's sinks become the sharded runtime's sinks; each shard
    /// internally forwards its events into a shared channel whose
    /// receiver pumps them to those sinks in per-session order.
    pub(crate) fn from_builder(
        mut builder: RuntimeBuilder,
        workers: usize,
    ) -> Result<Self, RuntimeError> {
        let workers = workers.max(1);
        if builder.id_start != 0 || builder.id_stride != 1 {
            return Err(RuntimeError::InvalidSpec(
                "build_sharded owns the session-id space (shard k of N allocates k, k + N, …); \
                 it cannot be combined with RuntimeBuilder::session_ids"
                    .into(),
            ));
        }
        let registry = Arc::new(
            builder
                .registry
                .take()
                .unwrap_or_else(PolicyRegistry::builtin),
        );
        let platform = Arc::new(Platform::by_id(builder.spec.platform));
        let family = Arc::new(builder.spec.family.family());
        let sinks = std::mem::take(&mut builder.sinks);
        let (tx, rx) = mpsc::channel::<EpisodeEvent>();
        let shards = (0..workers)
            .map(|k| {
                // Shards forward events only when somebody listens — with
                // no outer sinks, the hot path skips the per-record clone
                // and nothing accumulates in the channel.
                let shard_sinks: Vec<Box<dyn EventSink>> = if sinks.is_empty() {
                    Vec::new()
                } else {
                    vec![Box::new(tx.clone()) as Box<dyn EventSink>]
                };
                let shard_builder = RuntimeBuilder {
                    spec: builder.spec.clone(),
                    registry: None,
                    sinks: shard_sinks,
                    telemetry: builder.telemetry,
                    id_start: k as u64,
                    id_stride: workers as u64,
                };
                shard_builder.build_shared(registry.clone(), platform.clone(), family.clone())
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The shards hold the only senders: if every shard is dropped the
        // channel disconnects, which the pump treats as "nothing left".
        drop(tx);
        Ok(ShardedRuntime {
            shards,
            sinks,
            rx,
            next_shard: 0,
        })
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The platform sessions run on (identical across shards — the
    /// serving admission layer builds its belief table from it).
    pub fn platform(&self) -> &alert_platform::Platform {
        // lint:allow(no-panic): from_builder clamps workers to >= 1, so shard 0 exists
        self.shards[0].platform()
    }

    /// The candidate family sessions schedule over (identical across
    /// shards).
    pub fn family(&self) -> &alert_models::ModelFamily {
        // lint:allow(no-panic): from_builder clamps workers to >= 1, so shard 0 exists
        self.shards[0].family()
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: SessionId) -> usize {
        id.shard_of(self.shards.len())
    }

    /// Total open sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(Runtime::session_count).sum()
    }

    /// Open sessions per shard, in shard order (the churn-at-scale bench
    /// asserts round-robin placement keeps the shards balanced).
    pub fn shard_session_counts(&self) -> Vec<usize> {
        self.shards.iter().map(Runtime::session_count).collect()
    }

    /// Ids of all open sessions, ascending.
    pub fn open_sessions(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .shards
            .iter()
            .flat_map(|rt| rt.open_sessions())
            .collect();
        ids.sort();
        ids
    }

    /// Forwards buffered shard events to the sinks (non-blocking). Called
    /// after every serial operation; [`ShardedRuntime::drain`] pumps
    /// continuously while the workers run.
    fn pump_events(&mut self) {
        if self.sinks.is_empty() {
            return;
        }
        while let Ok(event) = self.rx.try_recv() {
            for sink in &mut self.sinks {
                sink.emit(&event);
            }
        }
    }

    /// Starts a [`SessionOptions`] builder opening on this sharded
    /// runtime — see [`Runtime::session`]. Placement is round-robin
    /// unless [`SessionOptions::on_shard`] pins a shard. With `workers`
    /// shards and no intervening closes, round-robin ids come out dense
    /// and ascending (0, 1, 2, …) exactly like a serial runtime's.
    pub fn session(&mut self, spec: SessionSpec) -> SessionOptions<'_> {
        SessionOptions::new(crate::runtime::HostRef::Sharded(self), spec)
    }

    /// The open path behind [`ShardedRuntime::session`]: routes to the
    /// pinned shard, or the round-robin cursor (which pinning does not
    /// advance).
    pub(crate) fn open_parts_on(
        &mut self,
        shard: Option<usize>,
        spec: SessionSpec,
        external: Option<(InputStream, Arc<EpisodeEnv>)>,
        scheduler: Option<Box<dyn crate::scheduler::Scheduler>>,
    ) -> Result<SessionId, RuntimeError> {
        let pinned = shard.is_some();
        let shard = match shard {
            Some(k) if k >= self.shards.len() => {
                return Err(RuntimeError::InvalidSpec(format!(
                    "no shard {k}: this runtime has {} shards",
                    self.shards.len()
                )));
            }
            Some(k) => k,
            None => self.next_shard,
        };
        let id = self.shards[shard].open_parts(spec, external, scheduler)?;
        if !pinned {
            self.next_shard = (self.next_shard + 1) % self.shards.len();
        }
        debug_assert_eq!(self.shard_of(id), shard);
        self.pump_events();
        Ok(id)
    }

    /// Opens a session on the next shard, round-robin.
    #[deprecated(note = "use `sharded.session(spec).open()`")]
    pub fn open_session(&mut self, spec: SessionSpec) -> Result<SessionId, RuntimeError> {
        self.open_parts_on(None, spec, None, None)
    }

    /// Advances `id` by exactly one input — see [`Runtime::submit`].
    pub fn submit(&mut self, id: SessionId) -> Result<Option<InputRecord>, RuntimeError> {
        let shard = self.shard_of(id);
        let record = self.shards[shard].submit(id)?;
        self.pump_events();
        Ok(record)
    }

    /// Drives `id` to the end of its stream — see
    /// [`Runtime::run_to_completion`].
    pub fn run_to_completion(&mut self, id: SessionId) -> Result<usize, RuntimeError> {
        let shard = self.shard_of(id);
        let n = self.shards[shard].run_to_completion(id)?;
        self.pump_events();
        Ok(n)
    }

    /// `true` once the session has processed its whole stream.
    pub fn is_finished(&self, id: SessionId) -> Result<bool, RuntimeError> {
        self.shards[self.shard_of(id)].is_finished(id)
    }

    /// Inputs processed so far.
    pub fn progress(&self, id: SessionId) -> Result<usize, RuntimeError> {
        self.shards[self.shard_of(id)].progress(id)
    }

    /// The scheme name driving a session.
    pub fn scheme(&self, id: SessionId) -> Result<&str, RuntimeError> {
        self.shards[self.shard_of(id)].scheme(id)
    }

    /// Closes a session, returning its [`Episode`] — see
    /// [`Runtime::close`].
    pub fn close(&mut self, id: SessionId) -> Result<Episode, RuntimeError> {
        let shard = self.shard_of(id);
        let episode = self.shards[shard].close(id)?;
        self.pump_events();
        Ok(episode)
    }

    /// Checkpoints a session — see [`Runtime::snapshot_session`].
    pub fn snapshot_session(&self, id: SessionId) -> Result<SessionSnapshot, RuntimeError> {
        self.shards[self.shard_of(id)].snapshot_session(id)
    }

    /// Restores a checkpointed session onto the next shard, round-robin —
    /// see [`Runtime::restore_session`].
    pub fn restore_session(&mut self, snap: &SessionSnapshot) -> Result<SessionId, RuntimeError> {
        let shard = self.next_shard;
        let id = self.shards[shard].restore_session(snap)?;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        self.pump_events();
        Ok(id)
    }

    /// Drains every shard to completion in parallel — one scoped thread
    /// per non-empty shard, the calling thread pumping sink events while
    /// the workers run — and returns all episodes ascending by id.
    ///
    /// Per-session, episodes and event streams are bit-identical to a
    /// serial [`Runtime::drain_round_robin`] over the same sessions.
    pub fn drain(&mut self) -> Result<Vec<(SessionId, Episode)>, RuntimeError> {
        let ShardedRuntime {
            shards, sinks, rx, ..
        } = self;
        let mut episodes: Vec<(SessionId, Episode)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .filter(|rt| rt.session_count() > 0)
                .map(|rt| scope.spawn(move || rt.drain_round_robin()))
                .collect();
            if !sinks.is_empty() {
                // Pump until every worker is done, then flush the tail.
                while handles.iter().any(|h| !h.is_finished()) {
                    while let Ok(event) = rx.recv_timeout(Duration::from_millis(1)) {
                        for sink in sinks.iter_mut() {
                            sink.emit(&event);
                        }
                    }
                }
                while let Ok(event) = rx.try_recv() {
                    for sink in sinks.iter_mut() {
                        sink.emit(&event);
                    }
                }
            }
            handles
                .into_iter()
                // lint:allow(no-panic): join() only errs if the worker panicked; re-raising that panic is the correct propagation
                .map(|h| h.join().expect("shard drain panicked"))
                .collect::<Result<Vec<_>, RuntimeError>>()
                .map(|per_shard| per_shard.into_iter().flatten().collect())
        })?;
        episodes.sort_by_key(|(id, _)| *id);
        Ok(episodes)
    }
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("workers", &self.shards.len())
            .field("sessions", &self.session_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use alert_stats::units::Seconds;
    use alert_workload::{Goal, Scenario};

    fn spec(seed: u64, n_inputs: usize) -> SessionSpec {
        SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.4), 0.9),
            scenario: Scenario::memory_env(seed),
            n_inputs,
            seed: Some(seed),
            policy: None,
        }
    }

    #[test]
    fn drain_parallel_matches_serial_for_uneven_sessions() {
        let open_all = |rt: &mut Runtime| {
            for i in 0..6u64 {
                rt.session(spec(40 + i, 12 + (i as usize % 3) * 5))
                    .open()
                    .unwrap();
            }
        };
        let mut serial = Runtime::builder().build().unwrap();
        open_all(&mut serial);
        let reference = serial.drain_round_robin().unwrap();

        for workers in [1, 2, 3, 8] {
            let mut rt = Runtime::builder().build().unwrap();
            open_all(&mut rt);
            let episodes = rt.drain_parallel(workers).unwrap();
            assert_eq!(rt.session_count(), 0);
            assert_eq!(episodes.len(), reference.len());
            for ((id, ep), (rid, rep)) in episodes.iter().zip(&reference) {
                assert_eq!(id, rid);
                assert_eq!(ep.scheme, rep.scheme);
                assert_eq!(ep.records, rep.records, "workers={workers}, {id}");
            }
        }
    }

    #[test]
    fn sharded_runtime_serves_and_routes_by_id() {
        let mut sharded = Runtime::builder().build_sharded(3).unwrap();
        assert_eq!(sharded.workers(), 3);
        let ids: Vec<SessionId> = (0..5u64)
            .map(|i| sharded.session(spec(7 + i, 10)).open().unwrap())
            .collect();
        // Round-robin placement with stride allocation yields dense ids.
        assert_eq!(ids, (0..5).map(SessionId).collect::<Vec<_>>());
        assert_eq!(sharded.session_count(), 5);
        for &id in &ids {
            assert_eq!(sharded.shard_of(id), (id.0 % 3) as usize);
            let record = sharded.submit(id).unwrap().expect("one record");
            assert_eq!(record.index, 0);
            assert_eq!(sharded.progress(id).unwrap(), 1);
        }
        let episodes = sharded.drain().unwrap();
        assert_eq!(episodes.len(), 5);
        assert_eq!(sharded.session_count(), 0);
        for (id, ep) in &episodes {
            assert_eq!(ep.records.len(), 10, "{id}");
        }
    }

    #[test]
    fn sharded_runtime_matches_serial_runtime() {
        let mut serial = Runtime::builder().build().unwrap();
        let serial_ids: Vec<SessionId> = (0..7u64)
            .map(|i| serial.session(spec(100 + i, 15)).open().unwrap())
            .collect();
        let reference = serial.drain_round_robin().unwrap();

        let mut sharded = Runtime::builder().build_sharded(4).unwrap();
        let sharded_ids: Vec<SessionId> = (0..7u64)
            .map(|i| sharded.session(spec(100 + i, 15)).open().unwrap())
            .collect();
        assert_eq!(serial_ids, sharded_ids);
        let episodes = sharded.drain().unwrap();
        for ((id, ep), (rid, rep)) in episodes.iter().zip(&reference) {
            assert_eq!(id, rid);
            assert_eq!(ep.records, rep.records);
        }
    }

    #[test]
    fn build_sharded_rejects_custom_session_ids() {
        // The sharded runtime owns the id space; a user-configured
        // allocator must fail loudly instead of being silently dropped.
        let err = Runtime::builder()
            .session_ids(1000, 10)
            .build_sharded(2)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InvalidSpec(_)), "{err}");
        assert!(err.to_string().contains("session-id space"), "{err}");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let mut sharded = Runtime::builder().build_sharded(0).unwrap();
        assert_eq!(sharded.workers(), 1);
        let id = sharded.session(spec(3, 5)).open().unwrap();
        sharded.run_to_completion(id).unwrap();
        assert!(sharded.is_finished(id).unwrap());
        let ep = sharded.close(id).unwrap();
        assert_eq!(ep.records.len(), 5);

        let mut rt = Runtime::builder().build().unwrap();
        rt.session(spec(3, 5)).open().unwrap();
        assert_eq!(rt.drain_parallel(0).unwrap().len(), 1);
    }

    #[test]
    fn restored_snapshot_is_rehomed_to_a_stride_matching_shard() {
        // A snapshot taken in a 2-worker runtime was owned by a session
        // id with stride-2 residue; restoring it into a 3-worker runtime
        // must RE-HOME it — mint a fresh id satisfying the target's
        // stride so `shard_of` routes every subsequent request to the
        // owning shard — never silently keep the foreign id and misroute.
        let mut origin = Runtime::builder().build_sharded(2).unwrap();
        let old_id = origin.session(spec(77, 24)).open().unwrap();
        for _ in 0..9 {
            origin.submit(old_id).unwrap();
        }
        let snap = origin.snapshot_session(old_id).unwrap();

        let mut target = Runtime::builder().build_sharded(3).unwrap();
        // Occupy shards 0 and 1 so the restore round-robins onto shard 2
        // — a residue the origin id (0 mod 2) does not satisfy mod 3.
        let a = target.session(spec(1, 5)).open().unwrap();
        let b = target.session(spec(2, 5)).open().unwrap();
        assert_eq!((target.shard_of(a), target.shard_of(b)), (0, 1));

        let new_id = target.restore_session(&snap).unwrap();
        assert_ne!(new_id, old_id, "foreign id must not be reused verbatim");
        assert_eq!(
            target.shard_of(new_id),
            2,
            "re-homed id must satisfy the owning shard's stride"
        );
        // Routing by the new id reaches the restored state...
        assert_eq!(target.progress(new_id).unwrap(), 9);
        assert_eq!(target.scheme(new_id).unwrap(), "ALERT");
        // ...and resuming from it reproduces an uninterrupted run.
        let mut reference = Runtime::builder().build().unwrap();
        let rid = reference.session(spec(77, 24)).open().unwrap();
        reference.run_to_completion(rid).unwrap();
        let reference_ep = reference.close(rid).unwrap();
        target.run_to_completion(new_id).unwrap();
        let resumed = target.close(new_id).unwrap();
        assert_eq!(reference_ep.records, resumed.records);
    }

    #[test]
    fn sharded_checkpoint_migration_roundtrip() {
        let mut reference = Runtime::builder().build().unwrap();
        let rid = reference.session(spec(21, 30)).open().unwrap();
        reference.run_to_completion(rid).unwrap();
        let reference_ep = reference.close(rid).unwrap();

        let mut sharded = Runtime::builder().build_sharded(2).unwrap();
        let id = sharded.session(spec(21, 30)).open().unwrap();
        for _ in 0..13 {
            sharded.submit(id).unwrap();
        }
        let snap = sharded.snapshot_session(id).unwrap();
        let _ = sharded.close(id).unwrap();

        let mut other = Runtime::builder().build_sharded(3).unwrap();
        let id2 = other.restore_session(&snap).unwrap();
        assert_eq!(other.progress(id2).unwrap(), 13);
        other.run_to_completion(id2).unwrap();
        let resumed = other.close(id2).unwrap();
        assert_eq!(reference_ep.records, resumed.records);
    }
}
