//! The open policy registry: string-keyed scheduler constructors.
//!
//! Historically the harness dispatched on a closed `SchemeKind` enum, so
//! adding a scheme meant editing `experiment.rs`. The registry inverts
//! that: a [`Policy`] is a named constructor that builds a
//! [`Scheduler`] for one session from a [`PolicyContext`], and a
//! [`PolicyRegistry`] maps names to policies. External crates (and
//! `examples/custom_policy.rs`) register their schemes next to the
//! built-ins and everything downstream — the runtime, the experiment
//! sweeps, `RunSpec` files — addresses them by name.
//!
//! All nine paper schemes are pre-registered by
//! [`PolicyRegistry::builtin`] under their Table 3/4 column labels
//! (`"ALERT"`, `"ALERT-Any"`, `"Oracle"`, …).

use crate::alert::AlertScheduler;
use crate::app_only::AppOnly;
use crate::env::EpisodeEnv;
use crate::no_coord::NoCoord;
use crate::oracle::{Oracle, OracleStatic};
use crate::scheduler::Scheduler;
use crate::sys_only::SysOnly;
use alert_core::alert::AlertParams;
use alert_models::family::CandidateSet;
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_stats::units::Watts;
use alert_workload::{Goal, InputStream};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a policy may consult when building a scheduler for one
/// session. The frozen environment and the input stream are included
/// for the oracle schemes (paper §5.1 calls them impractical for
/// exactly this reason); honest policies should touch only the family,
/// platform, goal and params — plus the node's *device topology*
/// ([`EpisodeEnv::device_count`] / [`EpisodeEnv::platform_on`]), which
/// is physical configuration visible to any real scheduler, not
/// foreknowledge of the environment's draws.
pub struct PolicyContext<'a> {
    /// The candidate model family of the session.
    pub family: &'a ModelFamily,
    /// The platform the session runs on.
    pub platform: &'a Platform,
    /// The session's goal.
    pub goal: Goal,
    /// Controller parameters from the run specification (ALERT-family
    /// policies honour these; others may ignore them).
    pub params: AlertParams,
    /// Node-level power envelope shared by all devices
    /// ([`RunSpec::shared_budget`](crate::runtime::RunSpec)); `None`
    /// leaves every device its full cap range.
    pub shared_budget: Option<Watts>,
    /// The frozen episode environment (oracles, plus device topology).
    pub env: &'a Arc<EpisodeEnv>,
    /// The session's input stream (OracleStatic needs lookahead).
    pub stream: &'a InputStream,
}

/// The node's device list, primary first. Device `0` is the context's
/// own platform (so single-device sessions keep the exact historical
/// construction path); extras come from the environment's topology.
fn node_platforms<'a>(ctx: &PolicyContext<'a>) -> Vec<&'a Platform> {
    let mut platforms = vec![ctx.platform];
    platforms.extend((1..ctx.env.device_count()).map(|d| ctx.env.platform_on(d)));
    platforms
}

/// A named scheduler constructor.
pub trait Policy: Send + Sync {
    /// The registry key and reporting label.
    fn name(&self) -> &str;

    /// Builds a fresh scheduler instance for one session.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the session's context
    /// cannot support the scheme (invalid goal, no fitting model, bad
    /// controller parameters) — all user-configuration conditions that
    /// must surface to the caller rather than abort the process.
    fn build(&self, ctx: &PolicyContext<'_>) -> Result<Box<dyn Scheduler>, String>;
}

/// A boxed scheduler constructor, as stored by [`FnPolicy`].
pub type BuildFn =
    Box<dyn Fn(&PolicyContext<'_>) -> Result<Box<dyn Scheduler>, String> + Send + Sync>;

/// A [`Policy`] from a name and a closure — the quickest way to register
/// a custom scheme.
pub struct FnPolicy {
    name: String,
    build: BuildFn,
}

impl FnPolicy {
    /// Wraps `build` as a policy named `name`.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(&PolicyContext<'_>) -> Result<Box<dyn Scheduler>, String> + Send + Sync + 'static,
    ) -> Self {
        FnPolicy {
            name: name.into(),
            build: Box::new(build),
        }
    }
}

impl Policy for FnPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn build(&self, ctx: &PolicyContext<'_>) -> Result<Box<dyn Scheduler>, String> {
        (self.build)(ctx)
    }
}

/// Error resolving a policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
    /// The names that were available.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown policy '{}' (registered: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Error building a scheduler through the registry: either the name is
/// not registered, or the policy rejected the session's context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The policy name failed to resolve.
    Unknown(UnknownPolicy),
    /// The policy resolved but could not build a scheduler for this
    /// context (invalid goal, no fitting model, bad parameters).
    Build {
        /// The policy that rejected the context.
        policy: String,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Unknown(e) => write!(f, "{e}"),
            RegistryError::Build { policy, reason } => {
                write!(f, "policy '{policy}' cannot build a scheduler: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<UnknownPolicy> for RegistryError {
    fn from(e: UnknownPolicy) -> Self {
        RegistryError::Unknown(e)
    }
}

/// String-keyed policy table. Cheap to clone (policies are shared).
#[derive(Clone, Default)]
pub struct PolicyRegistry {
    policies: BTreeMap<String, Arc<dyn Policy>>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the nine paper schemes under their
    /// Table 3/4 labels.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_fn("ALERT", |ctx| {
            Ok(Box::new(AlertScheduler::new_hetero(
                "ALERT",
                ctx.family,
                CandidateSet::Standard,
                &node_platforms(ctx),
                ctx.shared_budget,
                ctx.goal,
                ctx.params,
            )?) as Box<dyn Scheduler>)
        });
        r.register_fn("ALERT-Any", |ctx| {
            Ok(Box::new(AlertScheduler::new_hetero(
                "ALERT-Any",
                ctx.family,
                CandidateSet::AnytimeOnly,
                &node_platforms(ctx),
                ctx.shared_budget,
                ctx.goal,
                ctx.params,
            )?) as Box<dyn Scheduler>)
        });
        r.register_fn("ALERT-Trad", |ctx| {
            Ok(Box::new(AlertScheduler::new_hetero(
                "ALERT-Trad",
                ctx.family,
                CandidateSet::TraditionalOnly,
                &node_platforms(ctx),
                ctx.shared_budget,
                ctx.goal,
                ctx.params,
            )?) as Box<dyn Scheduler>)
        });
        r.register_fn("ALERT*", |ctx| {
            let params = AlertParams {
                mode: alert_core::ProbabilityMode::MeanOnly,
                ..ctx.params
            };
            Ok(Box::new(AlertScheduler::new_hetero(
                "ALERT*",
                ctx.family,
                CandidateSet::Standard,
                &node_platforms(ctx),
                ctx.shared_budget,
                ctx.goal,
                params,
            )?) as Box<dyn Scheduler>)
        });
        r.register_fn("Oracle", |ctx| {
            Ok(
                Box::new(Oracle::new(ctx.env.clone(), ctx.family.clone(), ctx.goal))
                    as Box<dyn Scheduler>,
            )
        });
        r.register_fn("OracleStatic", |ctx| {
            Ok(Box::new(OracleStatic::new(
                ctx.env.clone(),
                ctx.family.clone(),
                ctx.stream,
                ctx.goal,
            )) as Box<dyn Scheduler>)
        });
        r.register_fn("App-only", |ctx| {
            Ok(Box::new(AppOnly::new(ctx.family, ctx.platform)) as Box<dyn Scheduler>)
        });
        r.register_fn("Sys-only", |ctx| {
            Ok(Box::new(SysOnly::new_placed(
                ctx.family,
                &node_platforms(ctx),
                ctx.goal,
            )) as Box<dyn Scheduler>)
        });
        r.register_fn("No-coord", |ctx| {
            Ok(Box::new(NoCoord::new_placed(
                ctx.family,
                &node_platforms(ctx),
                ctx.goal,
            )) as Box<dyn Scheduler>)
        });
        r
    }

    /// Registers `policy` under its own name, replacing any previous
    /// holder of that name (latest registration wins, so callers can
    /// shadow built-ins).
    pub fn register(&mut self, policy: Arc<dyn Policy>) {
        self.policies.insert(policy.name().to_string(), policy);
    }

    /// Registers a closure-backed policy (see [`FnPolicy`]).
    pub fn register_fn(
        &mut self,
        name: impl Into<String>,
        build: impl Fn(&PolicyContext<'_>) -> Result<Box<dyn Scheduler>, String> + Send + Sync + 'static,
    ) {
        self.register(Arc::new(FnPolicy::new(name, build)));
    }

    /// Looks up a policy by name.
    pub fn resolve(&self, name: &str) -> Option<Arc<dyn Policy>> {
        self.policies.get(name).cloned()
    }

    /// `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.policies.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.policies.keys().cloned().collect()
    }

    /// Builds a scheduler by policy name.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] when the name is not registered;
    /// [`RegistryError::Build`] when the policy rejects the context.
    pub fn build(
        &self,
        name: &str,
        ctx: &PolicyContext<'_>,
    ) -> Result<Box<dyn Scheduler>, RegistryError> {
        match self.resolve(name) {
            Some(p) => p.build(ctx).map_err(|reason| RegistryError::Build {
                policy: name.to_string(),
                reason,
            }),
            None => Err(RegistryError::Unknown(UnknownPolicy {
                name: name.to_string(),
                known: self.names(),
            })),
        }
    }
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("policies", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Seconds;
    use alert_workload::{Scenario, TaskId};

    fn ctx_parts() -> (ModelFamily, Platform, Goal, InputStream, Arc<EpisodeEnv>) {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
        let stream = InputStream::generate(TaskId::Img2, 40, 3);
        let env = Arc::new(
            EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 3).unwrap(),
        );
        (family, platform, goal, stream, env)
    }

    #[test]
    fn builtin_covers_all_scheme_kinds() {
        use crate::experiment::SchemeKind;
        let r = PolicyRegistry::builtin();
        let kinds = [
            SchemeKind::Alert,
            SchemeKind::AlertAny,
            SchemeKind::AlertTrad,
            SchemeKind::AlertStar,
            SchemeKind::Oracle,
            SchemeKind::OracleStatic,
            SchemeKind::AppOnly,
            SchemeKind::SysOnly,
            SchemeKind::NoCoord,
        ];
        for kind in kinds {
            assert!(r.contains(kind.name()), "missing {}", kind.name());
        }
        assert_eq!(r.names().len(), kinds.len());
    }

    #[test]
    fn builtin_policies_build_correctly_named_schedulers() {
        let (family, platform, goal, stream, env) = ctx_parts();
        let ctx = PolicyContext {
            family: &family,
            platform: &platform,
            goal,
            params: AlertParams::default(),
            shared_budget: None,
            env: &env,
            stream: &stream,
        };
        let r = PolicyRegistry::builtin();
        for name in r.names() {
            let s = r.build(&name, &ctx).unwrap();
            assert_eq!(s.name(), name, "policy name must match scheduler name");
        }
    }

    #[test]
    fn builtin_policies_build_on_heterogeneous_nodes() {
        // On a CPU+GPU node every built-in must still build; the
        // placement-capable schemes see both devices through the env's
        // topology, the rest stay pinned to device 0.
        let family = ModelFamily::image_classification();
        let cpu = Platform::cpu1();
        let gpu = Platform::gpu();
        let goal = Goal::minimize_energy(Seconds(0.4), 0.9);
        let stream = InputStream::generate(TaskId::Img2, 40, 3);
        let env = Arc::new(
            EpisodeEnv::build_hetero(
                &[cpu.clone(), gpu],
                &Scenario::default_env(),
                &stream,
                &goal,
                3,
                None,
            )
            .unwrap(),
        );
        let ctx = PolicyContext {
            family: &family,
            platform: &cpu,
            goal,
            params: AlertParams::default(),
            shared_budget: Some(Watts(200.0)),
            env: &env,
            stream: &stream,
        };
        let r = PolicyRegistry::builtin();
        for name in r.names() {
            let s = r.build(&name, &ctx).unwrap();
            assert_eq!(s.name(), name, "policy name must match scheduler name");
        }
    }

    #[test]
    fn unknown_name_reports_known_set() {
        let (family, platform, goal, stream, env) = ctx_parts();
        let ctx = PolicyContext {
            family: &family,
            platform: &platform,
            goal,
            params: AlertParams::default(),
            shared_budget: None,
            env: &env,
            stream: &stream,
        };
        let err = match PolicyRegistry::builtin().build("NoSuch", &ctx) {
            Ok(_) => panic!("unknown policy must not resolve"),
            Err(RegistryError::Unknown(e)) => e,
            Err(other) => panic!("expected Unknown, got {other}"),
        };
        assert_eq!(err.name, "NoSuch");
        assert!(err.known.contains(&"ALERT".to_string()));
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn custom_registration_shadows_builtin() {
        let (family, platform, goal, stream, env) = ctx_parts();
        let ctx = PolicyContext {
            family: &family,
            platform: &platform,
            goal,
            params: AlertParams::default(),
            shared_budget: None,
            env: &env,
            stream: &stream,
        };
        let mut r = PolicyRegistry::builtin();
        r.register_fn("ALERT", |ctx| {
            Ok(Box::new(AppOnly::new(ctx.family, ctx.platform)) as Box<dyn Scheduler>)
        });
        let s = r.build("ALERT", &ctx).unwrap();
        assert_eq!(s.name(), "App-only");
    }

    #[test]
    fn params_reach_alert_policies() {
        let (family, platform, goal, stream, env) = ctx_parts();
        let params = AlertParams {
            initial_idle_ratio: 0.55,
            ..Default::default()
        };
        let ctx = PolicyContext {
            family: &family,
            platform: &platform,
            goal,
            params,
            shared_budget: None,
            env: &env,
            stream: &stream,
        };
        let r = PolicyRegistry::builtin();
        let s = r.build("ALERT", &ctx).unwrap();
        assert!(s.controller_snapshot().is_some());
        let snap = s.controller_snapshot().unwrap();
        assert_eq!(snap.idle.ratio(), 0.55);
    }
}
