//! Trace capture: an [`EventSink`] that records live runtime traffic
//! into a [`WorkloadTrace`].
//!
//! A [`TraceRecorder`] plugs into any runtime sink slot
//! ([`crate::runtime::RuntimeBuilder::sink`]) — serial [`Runtime`]s and
//! the multi-worker [`ShardedRuntime`](crate::executor::ShardedRuntime)
//! alike — and captures every processed input as one
//! [`TraceRecord`](alert_workload::TraceRecord): session/stream
//! identity, the inter-arrival time and realized input scale (the
//! replayable half), the goal in force at dispatch, the device the
//! input was placed on (written only for off-primary placements, so
//! single-device captures keep the pre-device byte layout), and the
//! observed outcome (model, cap, latency, quality, energy).
//!
//! Both runtime flavors deliver each session's events in dispatch order
//! (cross-session interleaving is scheduling-dependent, which the trace
//! format explicitly permits), so the captured trace preserves
//! **per-session ordering** by construction and
//! [`WorkloadTrace::replay_source`] never needs to re-sort.
//!
//! The recorder is a cheap clonable handle over shared state: install
//! one clone as the runtime's sink and keep another to
//! [`TraceRecorder::snapshot`] or [`TraceRecorder::save`] the capture
//! afterwards.
//!
//! [`Runtime`]: crate::runtime::Runtime
//! [`EventSink`]: crate::runtime::EventSink

use crate::runtime::{EpisodeEvent, EventSink};
use alert_workload::{TraceError, TraceOutcome, TraceRecord, WorkloadTrace};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

struct Inner {
    trace: WorkloadTrace,
    /// session id → stream id, learned from `SessionOpened`.
    streams: BTreeMap<u64, u64>,
    sessions_opened: usize,
    sessions_closed: usize,
}

/// Captures runtime events into a [`WorkloadTrace`]. See the module
/// docs.
#[derive(Clone)]
pub struct TraceRecorder {
    inner: Arc<Mutex<Inner>>,
}

impl TraceRecorder {
    /// A fresh recorder; `source` and `seed` land in the trace header
    /// (provenance for later replays).
    pub fn new(source: impl Into<String>, seed: Option<u64>) -> Self {
        TraceRecorder {
            inner: Arc::new(Mutex::new(Inner {
                trace: WorkloadTrace::new(source, seed),
                streams: BTreeMap::new(),
                sessions_opened: 0,
                sessions_closed: 0,
            })),
        }
    }

    /// Records captured so far.
    pub fn len(&self) -> usize {
        self.inner.lock().trace.len()
    }

    /// `true` when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions seen opening / closing through this recorder.
    pub fn session_counts(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.sessions_opened, inner.sessions_closed)
    }

    /// A copy of the capture so far.
    pub fn snapshot(&self) -> WorkloadTrace {
        self.inner.lock().trace.clone()
    }

    /// Writes the capture so far to a trace file (line-delimited format,
    /// see `alert_workload::trace`). Streams straight from the shared
    /// state — no per-record clone, so multi-million-input captures
    /// serialize at constant extra memory.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        self.inner.lock().trace.save(path)
    }
}

impl EventSink for TraceRecorder {
    fn emit(&mut self, event: &EpisodeEvent) {
        let mut inner = self.inner.lock();
        match event {
            EpisodeEvent::SessionOpened {
                session, stream, ..
            } => {
                inner.streams.insert(session.0, stream.0);
                inner.sessions_opened += 1;
            }
            EpisodeEvent::InputProcessed { session, record } => {
                let stream = inner.streams.get(&session.0).copied().unwrap_or(0);
                inner.trace.push(TraceRecord {
                    session: session.0,
                    stream,
                    seq: record.index,
                    inter_arrival: record.period,
                    scale: record.scale,
                    // Written only for off-primary placements, so
                    // single-device captures keep the pre-device byte
                    // layout (`None` ⇒ device 0).
                    device: (record.device > 0).then_some(record.device as u64),
                    deadline: record.goal_deadline,
                    min_quality: record.min_quality,
                    energy_budget: record.energy_budget,
                    outcome: Some(TraceOutcome {
                        model: record.model.clone(),
                        cap: record.cap,
                        latency: record.latency,
                        quality: record.quality,
                        energy: record.energy,
                    }),
                });
            }
            EpisodeEvent::SessionClosed { .. } => {
                inner.sessions_closed += 1;
            }
            // Telemetry is observability, not workload: a captured trace
            // must replay identically whether telemetry was on or off.
            EpisodeEvent::Telemetry { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, SessionSpec};
    use alert_stats::units::Seconds;
    use alert_workload::{Goal, Scenario, TraceFit};

    fn spec(seed: u64, n: usize) -> SessionSpec {
        SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.4), 0.9),
            scenario: Scenario::compound_stress(seed),
            n_inputs: n,
            seed: Some(seed),
            policy: Some("ALERT".into()),
        }
    }

    #[test]
    fn recorder_captures_a_session_in_dispatch_order() {
        let recorder = TraceRecorder::new("unit", Some(5));
        let mut rt = Runtime::builder()
            .sink(recorder.clone())
            .seed(5)
            .build()
            .unwrap();
        let id = rt.session(spec(5, 40)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        let episode = rt.close(id).unwrap();

        assert_eq!(recorder.len(), 40);
        assert_eq!(recorder.session_counts(), (1, 1));
        let trace = recorder.snapshot();
        assert_eq!(trace.sessions(), vec![id.0]);
        for (k, (r, rec)) in trace
            .session_records(id.0)
            .zip(&episode.records)
            .enumerate()
        {
            assert_eq!(r.seq, k);
            assert_eq!(r.inter_arrival, rec.period);
            assert_eq!(r.scale.to_bits(), rec.scale.to_bits());
            assert_eq!(r.deadline, rec.goal_deadline);
            let outcome = r.outcome.as_ref().expect("capture records outcomes");
            assert_eq!(outcome.model, rec.model);
            assert_eq!(outcome.latency, rec.latency);
        }
    }

    #[test]
    fn capture_records_placements_and_stays_quiet_on_the_primary() {
        // Single-device capture: every trace record leaves `device`
        // unset (the pre-device byte layout).
        let recorder = TraceRecorder::new("cpu", Some(11));
        let mut rt = Runtime::builder()
            .sink(recorder.clone())
            .seed(11)
            .build()
            .unwrap();
        let id = rt.session(spec(11, 30)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        rt.close(id).unwrap();
        assert!(recorder
            .snapshot()
            .records()
            .iter()
            .all(|r| r.device.is_none()));

        // Heterogeneous capture: the trace mirrors each input record's
        // placement exactly (None encoding device 0).
        let recorder = TraceRecorder::new("hetero", Some(11));
        let mut rt = Runtime::builder()
            .extra_backend(alert_platform::PlatformId::Gpu)
            .sink(recorder.clone())
            .seed(11)
            .build()
            .unwrap();
        let id = rt.session(spec(11, 30)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        let episode = rt.close(id).unwrap();
        let trace = recorder.snapshot();
        for (t, r) in trace.session_records(id.0).zip(&episode.records) {
            assert_eq!(t.device.unwrap_or(0), r.device as u64);
        }
    }

    #[test]
    fn captured_trace_replays_bit_identically() {
        // The full loop in one test: capture a scripted run through the
        // runtime sink, extract the session's replay source, realize it,
        // and compare the arrival/scale sequence bit for bit.
        let recorder = TraceRecorder::new("roundtrip", Some(9));
        let mut rt = Runtime::builder()
            .sink(recorder.clone())
            .seed(9)
            .build()
            .unwrap();
        let id = rt.session(spec(9, 60)).open().unwrap();
        rt.run_to_completion(id).unwrap();
        rt.close(id).unwrap();

        let trace = recorder.snapshot();
        let source = trace.replay_source(id.0).unwrap();
        let replay = Scenario::replay("Replay", source, TraceFit::Truncate);
        let mut rt2 = Runtime::builder().seed(9).build().unwrap();
        let rid = rt2
            .session(SessionSpec {
                scenario: replay,
                ..spec(9, 60)
            })
            .open()
            .unwrap();
        rt2.run_to_completion(rid).unwrap();
        let replayed = rt2.close(rid).unwrap();
        for (r, orig) in replayed.records.iter().zip(trace.session_records(id.0)) {
            assert_eq!(r.period.get().to_bits(), orig.inter_arrival.get().to_bits());
            assert_eq!(r.scale.to_bits(), orig.scale.to_bits());
        }
    }
}
