//! The serving front-end: offered-load ingestion with ALERT-native
//! admission control over the sharded runtime.
//!
//! A *storm* ([`alert_workload::StormSpec`] →
//! [`alert_workload::generate_storm`]) is a frozen sequence of request
//! arrivals. [`serve`] replays a storm against a
//! [`ShardedRuntime`]: each request is routed round-robin to a shard
//! whose (virtual-time) server works off admitted requests in arrival
//! order, and an [`AdmissionPolicy`] decides per request whether to
//!
//! * **admit** it at full quality,
//! * **degrade** it — serve it under a [`GoalPatch`]-downgraded goal
//!   (quality-floor downgrade), which becomes the *effective* goal its
//!   records carry and are billed against, or
//! * **shed** it — reject without service.
//!
//! Three policies ship here:
//!
//! * [`AlwaysAdmit`] — admits everything; the queue is unbounded, so
//!   under overload waits grow without bound and goodput collapses.
//! * [`DropTail`] — naive FIFO bound: sheds exactly when the shard's
//!   system occupancy reaches the queue capacity, blind to deadlines.
//! * [`AlertAdmission`] — consults an [`AlertController`]'s belief: a
//!   request whose remaining slack (deadline − predicted queue wait)
//!   the controller predicts infeasible at full quality is first probed
//!   under the degrade patch, and shed only when even the degraded goal
//!   is predicted to miss — i.e. it sheds exactly the requests
//!   predicted to miss anyway.
//!
//! **Determinism.** The storm is generated once and replayed bit-
//! identically against every policy (one uniform per request in every
//! arrival mode; per-request seeds derived by label), the simulator is
//! virtual-time, and the controller's decision path is deterministic —
//! so two [`serve`] runs of the same storm under the same policy
//! produce [`ServingReport`]s with equal
//! [`fingerprint`](ServingReport::fingerprint)s, and differences
//! *across* policies are attributable to admission alone. The serving
//! bench asserts the replay identity per cell.

use crate::executor::ShardedRuntime;
use crate::runtime::SessionSpec;
use crate::telemetry::{AdmissionConstraint, AdmissionProbe};
use alert_core::alert::{AlertController, AlertParams, Observation};
use alert_stats::units::Seconds;
use alert_workload::{
    quality_span, AdmissionVerdict, Goal, GoalPatch, InputRecord, QualitySpan, RequestArrival,
    RequestOutcome, Scenario, ServingReport,
};

/// Default fraction of the family quality span a degraded request's
/// floor drops to (see [`GoalPatch::floor_frac`]).
pub const DEFAULT_DEGRADE_FRAC: f64 = 0.25;

/// Default largest predicted miss probability [`AlertAdmission`]
/// accepts before degrading (and then shedding).
pub const DEFAULT_MISS_THRESHOLD: f64 = 0.1;

/// What the front-end tells a policy about the request it must judge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestContext {
    /// Position in the storm (admission order).
    pub index: usize,
    /// Virtual arrival time.
    pub arrival: Seconds,
    /// Shard the request would be served on.
    pub shard: usize,
    /// Requests currently in that shard's system (in service + queued).
    pub queue_depth: usize,
    /// Per-shard system bound ([`ServingConfig::queue_capacity`]).
    pub queue_capacity: usize,
    /// Queue wait the request would suffer if admitted now (the shard's
    /// backlog at arrival).
    pub predicted_wait: Seconds,
    /// The full-quality goal the request asks for.
    pub goal: Goal,
    /// Inputs the request carries.
    pub inputs_per_request: usize,
}

/// A policy's three-way verdict, with the belief that justified it
/// (belief-based policies only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionDecision {
    /// Serve at full quality.
    Admit {
        /// Predicted miss probability at decision time, if the policy
        /// holds a belief.
        predicted_miss: Option<f64>,
    },
    /// Serve under the patched (downgraded) goal.
    Degrade {
        /// The downgrade to apply to the request's goal before opening
        /// its session (validated; quality-floor form).
        patch: GoalPatch,
        /// Predicted miss probability *under the degraded goal*.
        predicted_miss: Option<f64>,
    },
    /// Reject without service.
    Shed {
        /// Predicted miss probability that justified the shed, if any.
        predicted_miss: Option<f64>,
    },
}

/// An admission policy: judges each arriving request and (optionally)
/// learns from completed service.
pub trait AdmissionPolicy {
    /// The policy's display name (lands in [`ServingReport::policy`]).
    fn name(&self) -> &str;

    /// Judges one arriving request.
    fn assess(&mut self, ctx: &RequestContext) -> AdmissionDecision;

    /// Feedback from one completed input of an admitted request,
    /// delivered in completion order (virtual finish time, then storm
    /// index). Default: ignore.
    fn observe(&mut self, record: &InputRecord) {
        let _ = record;
    }

    /// What the most recent [`AdmissionPolicy::assess`] learned on the
    /// way to its verdict (failing constraint, predicted miss, belief),
    /// for telemetry. Purely observational — nothing reads it back into
    /// a later verdict. Default: none (belief-free policies).
    fn last_probe(&self) -> Option<AdmissionProbe> {
        None
    }
}

impl<P: AdmissionPolicy + ?Sized> AdmissionPolicy for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn assess(&mut self, ctx: &RequestContext) -> AdmissionDecision {
        (**self).assess(ctx)
    }

    fn observe(&mut self, record: &InputRecord) {
        (**self).observe(record);
    }

    fn last_probe(&self) -> Option<AdmissionProbe> {
        (**self).last_probe()
    }
}

/// Admits everything; ignores the queue bound (unbounded backlog).
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &str {
        "Always-admit"
    }

    fn assess(&mut self, _ctx: &RequestContext) -> AdmissionDecision {
        AdmissionDecision::Admit {
            predicted_miss: None,
        }
    }
}

/// Naive FIFO bound: sheds exactly when the shard's system occupancy
/// has reached the queue capacity, blind to deadlines and belief.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropTail;

impl AdmissionPolicy for DropTail {
    fn name(&self) -> &str {
        "Drop-tail"
    }

    fn assess(&mut self, ctx: &RequestContext) -> AdmissionDecision {
        if ctx.queue_depth >= ctx.queue_capacity {
            AdmissionDecision::Shed {
                predicted_miss: None,
            }
        } else {
            AdmissionDecision::Admit {
                predicted_miss: None,
            }
        }
    }
}

/// ALERT-native admission: probes the controller's belief with the
/// request's *remaining slack* (deadline − predicted queue wait) and
/// admits, degrades, or sheds per the predicted miss probability.
///
/// The controller is fed every completed input's
/// (latency, profile-equivalent) pair, so its ξ slowdown belief tracks
/// the serving conditions exactly as an in-session ALERT scheduler's
/// would.
#[derive(Debug, Clone)]
pub struct AlertAdmission {
    controller: AlertController,
    span: QualitySpan,
    degrade: GoalPatch,
    miss_threshold: f64,
    /// What the latest `assess` learned, for telemetry. Write-only on
    /// the verdict path: every branch overwrites it and none reads it.
    last_probe: Option<AdmissionProbe>,
}

impl AlertAdmission {
    /// A policy over an explicit controller and quality span.
    ///
    /// # Errors
    ///
    /// Rejects a malformed degrade patch or a miss threshold outside
    /// `[0, 1)`.
    pub fn new(
        controller: AlertController,
        span: QualitySpan,
        degrade: GoalPatch,
        miss_threshold: f64,
    ) -> Result<Self, crate::Error> {
        degrade.validate().map_err(crate::Error::InvalidSpec)?;
        if !(miss_threshold.is_finite() && miss_threshold > 0.0 && miss_threshold < 1.0) {
            return Err(crate::Error::InvalidSpec(format!(
                "admission miss threshold must be in (0,1), got {miss_threshold}"
            )));
        }
        Ok(AlertAdmission {
            controller,
            span,
            degrade,
            miss_threshold,
            last_probe: None,
        })
    }

    /// A policy whose belief table is built from the runtime's own
    /// family × platform (the same candidates its sessions schedule
    /// over).
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (no candidate fits the
    /// platform) and [`AlertAdmission::new`] validation.
    pub fn for_runtime(
        rt: &ShardedRuntime,
        degrade: GoalPatch,
        miss_threshold: f64,
    ) -> Result<Self, crate::Error> {
        let (table, _) = crate::alert::build_table(rt.family(), rt.platform())
            .map_err(crate::Error::InvalidSpec)?;
        let controller = AlertController::new(table, AlertParams::default())
            .map_err(crate::Error::InvalidSpec)?;
        let span = quality_span(rt.family(), rt.platform());
        AlertAdmission::new(controller, span, degrade, miss_threshold)
    }

    /// Probes the controller with `goal` under the request's idle
    /// period, asking the paper's Eqs. 10–11 question directly: the
    /// probe goal carries `Pr_th = 1 − miss_threshold`, so the
    /// selection's `feasible` flag says whether *some* candidate meets
    /// the quality floor with a deadline-completion probability at the
    /// threshold — without it, the energy-optimal pick legitimately
    /// rides the deadline boundary (pr ≈ 0.5) and its own miss estimate
    /// says nothing about admissibility.
    fn probe(&mut self, goal: &Goal, period: Seconds) -> (bool, Option<f64>) {
        let mut probe_goal = *goal;
        probe_goal.prob_threshold = Some(1.0 - self.miss_threshold);
        match self.controller.decide_with_period(&probe_goal, period) {
            Ok(sel) => {
                let p_miss = (1.0 - sel.estimates.pr_deadline).clamp(0.0, 1.0);
                (sel.feasible, Some(p_miss))
            }
            Err(_) => (false, None),
        }
    }
}

impl AdmissionPolicy for AlertAdmission {
    fn name(&self) -> &str {
        "ALERT"
    }

    fn assess(&mut self, ctx: &RequestContext) -> AdmissionDecision {
        let xi = self.controller.slowdown();
        let belief = Some((xi.mean(), xi.std_dev()));
        // The queue bound binds regardless of belief: past it the wait
        // model no longer describes the system the request would join.
        if ctx.queue_depth >= ctx.queue_capacity {
            self.last_probe = Some(AdmissionProbe {
                constraint: Some(AdmissionConstraint::QueueFull),
                predicted_miss: None,
                belief,
            });
            return AdmissionDecision::Shed {
                predicted_miss: None,
            };
        }
        let slack = Seconds(ctx.goal.deadline.get() - ctx.predicted_wait.get());
        if slack.get() <= 0.0 {
            // The request would wait out its entire deadline in queue:
            // a guaranteed miss, no belief needed.
            self.last_probe = Some(AdmissionProbe {
                constraint: Some(AdmissionConstraint::NoSlack),
                predicted_miss: Some(1.0),
                belief,
            });
            return AdmissionDecision::Shed {
                predicted_miss: Some(1.0),
            };
        }
        // Probe full quality with the deadline shrunk by the predicted
        // wait — the compute budget actually left once service starts.
        let probe_goal = ctx.goal.with_deadline(slack);
        let (ok, predicted_miss) = self.probe(&probe_goal, ctx.goal.deadline);
        if ok {
            self.last_probe = Some(AdmissionProbe {
                constraint: None,
                predicted_miss,
                belief,
            });
            return AdmissionDecision::Admit { predicted_miss };
        }
        // Full quality is predicted to miss: probe the degraded goal
        // (quality-floor downgrade opens faster candidates).
        let mut degraded_goal = probe_goal;
        self.degrade.apply(&mut degraded_goal, Some(self.span));
        let (ok, degraded_miss) = self.probe(&degraded_goal, ctx.goal.deadline);
        if ok {
            self.last_probe = Some(AdmissionProbe {
                constraint: Some(AdmissionConstraint::FullQualityInfeasible),
                predicted_miss: degraded_miss,
                belief,
            });
            return AdmissionDecision::Degrade {
                patch: self.degrade,
                predicted_miss: degraded_miss,
            };
        }
        // Even degraded service is predicted to miss: shed exactly the
        // request that would have missed anyway.
        self.last_probe = Some(AdmissionProbe {
            constraint: Some(AdmissionConstraint::DegradedInfeasible),
            predicted_miss: degraded_miss.or(predicted_miss),
            belief,
        });
        AdmissionDecision::Shed {
            predicted_miss: degraded_miss.or(predicted_miss),
        }
    }

    fn observe(&mut self, record: &InputRecord) {
        let slowdown = record.slowdown.unwrap_or(1.0);
        let profile_equivalent = if slowdown > 0.0 && slowdown.is_finite() {
            Seconds(record.latency.get() / slowdown)
        } else {
            record.latency
        };
        self.controller.observe(&Observation {
            latency: record.latency,
            profile_equivalent,
            idle_power: None,
            idle_cap: record.cap,
        });
    }

    fn last_probe(&self) -> Option<AdmissionProbe> {
        self.last_probe
    }
}

/// Builds one of the named admission policies over `rt`:
/// `"Always-admit"`, `"Drop-tail"`, or `"ALERT"` (with the default
/// degrade patch and miss threshold).
///
/// # Errors
///
/// Unknown names and [`AlertAdmission::for_runtime`] failures.
pub fn admission_policy(
    name: &str,
    rt: &ShardedRuntime,
) -> Result<Box<dyn AdmissionPolicy>, crate::Error> {
    match name {
        "Always-admit" => Ok(Box::new(AlwaysAdmit)),
        "Drop-tail" => Ok(Box::new(DropTail)),
        "ALERT" => Ok(Box::new(AlertAdmission::for_runtime(
            rt,
            GoalPatch::floor_frac(DEFAULT_DEGRADE_FRAC),
            DEFAULT_MISS_THRESHOLD,
        )?)),
        other => Err(crate::Error::InvalidSpec(format!(
            "unknown admission policy {other:?}; known: Always-admit, Drop-tail, ALERT"
        ))),
    }
}

/// Configuration of one serving run: what every request asks for and
/// how the shards queue them.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The full-quality per-request goal offered at admission.
    pub goal: Goal,
    /// Scenario realized per request (with the request's own seed).
    pub scenario: Scenario,
    /// In-session scheduling policy serving admitted requests — shared
    /// by every admission policy so the saturation curve isolates
    /// admission.
    pub policy: String,
    /// Inputs per request. Values below 10 keep the per-request
    /// warm-up prefix empty (`warmup_len = n/10`), so every record is
    /// measured.
    pub inputs_per_request: usize,
    /// Per-shard bound on requests in the system (in service + queued).
    /// [`AlwaysAdmit`] deliberately ignores it.
    pub queue_capacity: usize,
}

impl ServingConfig {
    /// A config with the workspace defaults: the `Default` scenario,
    /// the ALERT in-session policy, 6 inputs per request, capacity 8.
    pub fn new(goal: Goal) -> Self {
        ServingConfig {
            goal,
            scenario: Scenario::default_env(),
            policy: "ALERT".into(),
            inputs_per_request: 6,
            queue_capacity: 8,
        }
    }
}

/// One admitted request still occupying its shard's virtual server.
struct InFlight {
    index: usize,
    shard: usize,
    finish: Seconds,
    records: Vec<InputRecord>,
}

/// Replays a storm against the sharded runtime under one admission
/// policy, producing the per-request outcome log.
///
/// The simulation is virtual-time and work-conserving: shard `k` serves
/// its admitted requests back to back in arrival order, a request's
/// service time is the sum of its inputs' compute latencies, and input
/// `i` of a request is *timely* iff `queue wait + latency_i` meets the
/// per-input deadline in force. Completed requests are fed back to
/// [`AdmissionPolicy::observe`] in completion order before each
/// admission decision.
///
/// # Errors
///
/// Rejects a config with zero inputs per request; propagates session
/// open/run failures.
pub fn serve(
    rt: &mut ShardedRuntime,
    config: &ServingConfig,
    storm: &[RequestArrival],
    policy: &mut dyn AdmissionPolicy,
) -> Result<ServingReport, crate::Error> {
    if config.inputs_per_request == 0 {
        return Err(crate::Error::InvalidSpec(
            "serving config needs at least one input per request".into(),
        ));
    }
    config.goal.validate().map_err(crate::Error::InvalidSpec)?;
    let workers = rt.workers();
    let span = quality_span(rt.family(), rt.platform());
    let mut busy_until = vec![Seconds(0.0); workers];
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut outcomes = Vec::with_capacity(storm.len());
    for req in storm {
        let t = req.at;
        // Deliver completions (finish ≤ arrival) in completion order:
        // virtual finish time, storm index as the tiebreak.
        let mut completed = Vec::new();
        let mut k = 0;
        while k < in_flight.len() {
            if in_flight[k].finish.get() <= t.get() {
                completed.push(in_flight.swap_remove(k));
            } else {
                k += 1;
            }
        }
        completed.sort_by(|a, b| {
            a.finish
                .get()
                .total_cmp(&b.finish.get())
                .then(a.index.cmp(&b.index))
        });
        for f in &completed {
            for r in &f.records {
                policy.observe(r);
            }
        }

        let shard = req.index % workers;
        let queue_depth = in_flight.iter().filter(|f| f.shard == shard).count();
        let predicted_wait = Seconds((busy_until[shard].get() - t.get()).max(0.0));
        let ctx = RequestContext {
            index: req.index,
            arrival: t,
            shard,
            queue_depth,
            queue_capacity: config.queue_capacity,
            predicted_wait,
            goal: config.goal,
            inputs_per_request: config.inputs_per_request,
        };
        let (verdict, patch, predicted_miss) = match policy.assess(&ctx) {
            AdmissionDecision::Admit { predicted_miss } => {
                (AdmissionVerdict::Admitted, None, predicted_miss)
            }
            AdmissionDecision::Degrade {
                patch,
                predicted_miss,
            } => (AdmissionVerdict::Degraded, Some(patch), predicted_miss),
            AdmissionDecision::Shed { predicted_miss } => {
                outcomes.push(RequestOutcome {
                    index: req.index,
                    arrival: t,
                    shard,
                    verdict: AdmissionVerdict::Shed,
                    predicted_miss,
                    wait: Seconds(0.0),
                    effective_min_quality: None,
                    served_inputs: 0,
                    timely_inputs: 0,
                    quality_ok: false,
                });
                continue;
            }
        };

        // Degradation patches the goal *before* the session opens, so
        // the episode's records carry the degraded floor as their
        // effective goal and its summary bills against it.
        let mut goal = config.goal;
        if let Some(p) = &patch {
            p.validate().map_err(crate::Error::InvalidSpec)?;
            p.apply(&mut goal, Some(span));
        }
        let id = rt
            .session(SessionSpec {
                goal,
                scenario: config.scenario.clone(),
                n_inputs: config.inputs_per_request,
                seed: Some(req.seed),
                policy: Some(config.policy.clone()),
            })
            .on_shard(shard)
            .open()?;
        rt.run_to_completion(id)?;
        let episode = rt.close(id)?;

        let service: f64 = episode.records.iter().map(|r| r.latency.get()).sum();
        let start = busy_until[shard].get().max(t.get());
        let wait = Seconds(start - t.get());
        let finish = Seconds(start + service);
        busy_until[shard] = finish;
        let timely = episode
            .records
            .iter()
            .filter(|r| wait.get() + r.latency.get() <= r.deadline.get() * (1.0 + 1e-9))
            .count();
        outcomes.push(RequestOutcome {
            index: req.index,
            arrival: t,
            shard,
            verdict,
            predicted_miss,
            wait,
            effective_min_quality: goal.min_quality,
            served_inputs: episode.records.len(),
            timely_inputs: timely,
            quality_ok: episode.summary.quality_floor_met,
        });
        in_flight.push(InFlight {
            index: req.index,
            shard,
            finish,
            records: episode.records,
        });
    }
    Ok(ServingReport {
        policy: policy.name().to_string(),
        inputs_per_request: config.inputs_per_request,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use alert_workload::{generate_storm, ArrivalProcess, StormSpec};

    fn storm(n: usize, mean_gap: f64) -> Vec<RequestArrival> {
        generate_storm(
            &StormSpec {
                arrival: ArrivalProcess::Periodic,
                n_requests: n,
                mean_gap: Seconds(mean_gap),
                seed: 2020,
            },
            None,
        )
        .expect("valid storm")
    }

    fn runtime(workers: usize) -> ShardedRuntime {
        Runtime::builder()
            .seed(7)
            .build_sharded(workers)
            .expect("builtin policies resolve")
    }

    fn config() -> ServingConfig {
        ServingConfig::new(Goal::minimize_energy(Seconds(0.4), 0.9))
    }

    #[test]
    fn always_admit_serves_every_request() {
        let mut rt = runtime(2);
        let report =
            serve(&mut rt, &config(), &storm(12, 0.05), &mut AlwaysAdmit).expect("serving runs");
        assert_eq!(report.offered(), 12);
        assert_eq!(report.shed(), 0);
        assert_eq!(report.policy, "Always-admit");
        assert!(report
            .outcomes
            .iter()
            .all(|o| o.served_inputs == report.inputs_per_request));
    }

    #[test]
    fn zero_capacity_drop_tail_sheds_everything() {
        let mut rt = runtime(2);
        let mut cfg = config();
        cfg.queue_capacity = 0;
        let report = serve(&mut rt, &cfg, &storm(8, 0.05), &mut DropTail).expect("serving runs");
        assert_eq!(report.shed(), 8);
        assert!((report.shed_rate() - 1.0).abs() < 1e-12);
        assert_eq!(report.goodput(), 0.0);
    }

    #[test]
    fn drop_tail_sheds_exactly_past_the_queue_bound() {
        // One shard, capacity 2, arrivals far faster than service:
        // requests 0 and 1 occupy the system, every later arrival that
        // still sees both in flight is shed.
        let mut rt = runtime(1);
        let mut cfg = config();
        cfg.queue_capacity = 2;
        let report = serve(&mut rt, &cfg, &storm(6, 1e-4), &mut DropTail).expect("serving runs");
        let verdicts: Vec<AdmissionVerdict> = report.outcomes.iter().map(|o| o.verdict).collect();
        assert_eq!(verdicts[0], AdmissionVerdict::Admitted);
        assert_eq!(verdicts[1], AdmissionVerdict::Admitted);
        assert!(
            verdicts[2..].iter().all(|v| *v == AdmissionVerdict::Shed),
            "arrivals past the bound must be shed in order: {verdicts:?}"
        );
    }

    #[test]
    fn unknown_admission_policy_is_rejected() {
        let rt = runtime(1);
        assert!(matches!(
            admission_policy("nope", &rt),
            Err(crate::Error::InvalidSpec(_))
        ));
    }

    #[test]
    fn alert_admission_sheds_guaranteed_misses() {
        // Single shard, huge backlog pressure: once the predicted wait
        // swallows the whole deadline ALERT must shed with certainty 1.
        let mut rt = runtime(1);
        let mut policy = AlertAdmission::for_runtime(
            &rt,
            GoalPatch::floor_frac(DEFAULT_DEGRADE_FRAC),
            DEFAULT_MISS_THRESHOLD,
        )
        .expect("table builds");
        let report =
            serve(&mut rt, &config(), &storm(20, 1e-4), &mut policy).expect("serving runs");
        assert!(report.shed() > 0, "overload must shed");
        let certain: Vec<&RequestOutcome> = report
            .outcomes
            .iter()
            .filter(|o| o.predicted_miss == Some(1.0))
            .collect();
        assert!(
            certain.iter().all(|o| o.verdict == AdmissionVerdict::Shed),
            "a guaranteed miss must never be admitted"
        );
    }
}
