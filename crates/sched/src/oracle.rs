//! The Oracle and OracleStatic reference schemes (paper §5.1).
//!
//! Both are "impractical" by construction: they are built *with* the
//! frozen episode environment and therefore make perfect predictions for
//! every input under every DNN/power configuration.
//!
//! * [`Oracle`] re-optimizes per input — "allows DNN/power settings to
//!   change across inputs, representing the best possible results";
//! * [`OracleStatic`] exhaustively evaluates every configuration over the
//!   whole episode up front and pins the best one — "the best results
//!   without dynamic adaptation". It is the normalization baseline of
//!   Table 4.

use crate::budget::BudgetTracker;
use crate::env::{EnvError, EpisodeEnv};
use crate::scheduler::{Decision, Feedback, InputContext, Scheduler};
use alert_models::inference::StopPolicy;
use alert_models::{ModelFamily, ModelProfile};
use alert_stats::units::{Joules, Seconds, Watts};
use alert_workload::record::VIOLATION_DISQUALIFY_FRACTION;
use alert_workload::{Goal, InputStream, Objective};
use std::sync::Arc;

/// One executable configuration in oracle enumerations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleCandidate {
    /// Device the configuration runs on (episode device index).
    pub device: usize,
    /// Family model index.
    pub model: usize,
    /// Target stage for anytime models (`None` = traditional).
    pub stage: Option<usize>,
    /// Power cap.
    pub cap: Watts,
}

/// Enumerates every (device, model, stage, cap) configuration that fits
/// its device's platform. Device-major with device 0 first, so a
/// single-device episode enumerates in the historical order.
pub fn enumerate(family: &ModelFamily, env: &EpisodeEnv) -> Vec<OracleCandidate> {
    let mut out = Vec::new();
    for device in 0..env.device_count() {
        let platform = env.platform_on(device);
        let caps = platform.power_settings();
        for (mi, m) in family.models().iter().enumerate() {
            if !platform.supports_footprint(m.footprint_gb) {
                continue;
            }
            let stages: Vec<Option<usize>> = match &m.anytime {
                None => vec![None],
                Some(spec) => (0..spec.len()).map(Some).collect(),
            };
            for stage in stages {
                for &cap in &caps {
                    out.push(OracleCandidate {
                        device,
                        model: mi,
                        stage,
                        cap,
                    });
                }
            }
        }
    }
    out
}

/// Realized outcome of one configuration on one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealizedOutcome {
    /// Delivered latency.
    pub latency: Seconds,
    /// Delivered quality at the deadline.
    pub quality: f64,
    /// Period energy.
    pub energy: Joules,
}

/// Evaluates one configuration on input `i` with the ground truth,
/// against the candidate's own device.
///
/// # Errors
///
/// Fails when the candidate's cap is infeasible for its device's
/// platform (never for candidates from [`enumerate`], whose caps are
/// that platform's own settings).
pub fn realize_candidate(
    env: &EpisodeEnv,
    profile: &ModelProfile,
    c: &OracleCandidate,
    i: usize,
    deadline: Seconds,
) -> Result<RealizedOutcome, EnvError> {
    let stop = match c.stage {
        None => StopPolicy::RunToCompletion,
        Some(k) => StopPolicy::AtTimeOrStage(deadline, k),
    };
    let result = env.realize_on(c.device, i, profile, c.cap, stop)?;
    let quality = result.quality_by(deadline, profile.fail_quality);
    let energy = env.period_energy_on(c.device, i, profile, c.cap, &result);
    Ok(RealizedOutcome {
        latency: result.latency,
        quality,
        energy,
    })
}

/// Whether an outcome satisfies the goal's constraints on this single
/// input. The per-input Oracle can (and does) enforce the quality floor
/// input-by-input since it has perfect foresight; the episode-level
/// accounting (matching [`alert_workload::EpisodeSummary`]) treats the
/// floor as an average target instead.
fn satisfies(o: &RealizedOutcome, goal: &Goal, deadline: Seconds) -> bool {
    if o.latency.get() > deadline.get() * (1.0 + 1e-9) {
        return false;
    }
    match goal.objective {
        // lint:allow(no-panic): Goal::validate requires the matching bound for this objective; schedulers only receive validated goals
        Objective::MinimizeEnergy => o.quality >= goal.min_quality.expect("validated") - 1e-12,
        // lint:allow(no-panic): Goal::validate requires the matching bound for this objective; schedulers only receive validated goals
        Objective::MinimizeError => o.energy <= goal.energy_budget.expect("validated"),
    }
}

/// Whether an outcome violates the *per-input* constraints (deadline,
/// energy budget) — the episode-accounting counterpart of [`satisfies`].
fn violates_per_input(o: &RealizedOutcome, goal: &Goal, deadline: Seconds) -> bool {
    if o.latency.get() > deadline.get() * (1.0 + 1e-9) {
        return true;
    }
    match goal.objective {
        Objective::MinimizeEnergy => false,
        // lint:allow(no-panic): Goal::validate requires the matching bound for this objective; schedulers only receive validated goals
        Objective::MinimizeError => o.energy > goal.energy_budget.expect("validated"),
    }
}

/// Objective scalar: smaller is better.
fn objective_key(o: &RealizedOutcome, goal: &Goal) -> f64 {
    match goal.objective {
        Objective::MinimizeEnergy => o.energy.get(),
        Objective::MinimizeError => -o.quality,
    }
}

/// The per-input perfect-knowledge oracle.
pub struct Oracle {
    env: Arc<EpisodeEnv>,
    family: ModelFamily,
    goal: Goal,
    candidates: Vec<OracleCandidate>,
}

impl Oracle {
    /// Builds the oracle for one episode.
    pub fn new(env: Arc<EpisodeEnv>, family: ModelFamily, goal: Goal) -> Self {
        let candidates = enumerate(&family, &env);
        Oracle {
            env,
            family,
            goal,
            candidates,
        }
    }

    fn pick(&self, i: usize, deadline: Seconds) -> (OracleCandidate, RealizedOutcome) {
        let mut best_valid: Option<(OracleCandidate, RealizedOutcome, f64)> = None;
        let mut best_deadline_only: Option<(OracleCandidate, RealizedOutcome)> = None;
        let mut best_any: Option<(OracleCandidate, RealizedOutcome)> = None;
        for &c in &self.candidates {
            let profile = &self.family.models()[c.model];
            // Enumerated caps are platform settings, so realization
            // cannot fail; skip defensively rather than panic.
            let Ok(o) = realize_candidate(&self.env, profile, &c, i, deadline) else {
                continue;
            };
            if satisfies(&o, &self.goal, deadline) {
                let key = objective_key(&o, &self.goal);
                if best_valid.as_ref().is_none_or(|&(_, _, k)| key < k) {
                    best_valid = Some((c, o, key));
                }
            }
            if o.latency.get() <= deadline.get() * (1.0 + 1e-9) {
                let better = best_deadline_only
                    .as_ref()
                    .is_none_or(|(_, cur)| o.quality > cur.quality);
                if better {
                    best_deadline_only = Some((c, o));
                }
            }
            let better = best_any
                .as_ref()
                .is_none_or(|(_, cur)| o.latency < cur.latency);
            if better {
                best_any = Some((c, o));
            }
        }
        if let Some((c, o, _)) = best_valid {
            (c, o)
        } else {
            best_deadline_only
                .or(best_any)
                // lint:allow(no-panic): enumerate() yields at least one candidate for every non-empty family, and families are validated non-empty
                .expect("non-empty candidate set")
        }
    }
}

impl Scheduler for Oracle {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn sync_goal(&mut self, goal: &Goal) {
        // Perfect knowledge includes knowing the requirement in force.
        self.goal = *goal;
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let (c, _) = self.pick(ctx.index, ctx.deadline);
        let stop = match c.stage {
            None => StopPolicy::RunToCompletion,
            Some(k) => StopPolicy::AtTimeOrStage(ctx.deadline, k),
        };
        Decision {
            device: c.device,
            model: c.model,
            cap: c.cap,
            stop,
        }
    }

    fn observe(&mut self, _feedback: &Feedback) {
        // Perfect knowledge: nothing to learn.
    }
}

/// Episode-level score of one static configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticScore {
    /// Fraction of measured inputs violating the goal.
    pub violation_rate: f64,
    /// Mean objective key (smaller = better) over measured inputs.
    pub mean_objective: f64,
    /// Mean energy over measured inputs.
    pub mean_energy: Joules,
    /// Mean quality over measured inputs.
    pub mean_quality: f64,
}

/// Simulates one static configuration over the full episode.
pub fn score_static(
    env: &EpisodeEnv,
    family: &ModelFamily,
    stream: &InputStream,
    goal: &Goal,
    c: &OracleCandidate,
) -> StaticScore {
    let profile = &family.models()[c.model];
    let warmup = stream.warmup_len();
    let mut budget = BudgetTracker::new();
    let mut n = 0usize;
    let mut violations = 0usize;
    let mut sum_obj = 0.0;
    let mut sum_energy = 0.0;
    let mut sum_quality = 0.0;
    let mut floored_timely = 0usize;
    let mut sum_quality_floored = 0.0;
    let mut sum_floor = 0.0;
    for (i, input) in stream.inputs().iter().enumerate() {
        // Score under the requirement *in force at dispatch* — scripted
        // goal changes move deadlines/floors/budgets mid-stream, and the
        // harness run this selection is compared against uses exactly
        // these effective goals (`base` only covers unscripted inputs).
        let g = if i < env.len() { env.goal_of(i) } else { goal };
        let deadline = budget.next_deadline(g.deadline, input.group);
        // Enumerated caps are platform settings (see `Oracle::pick`).
        let Ok(o) = realize_candidate(env, profile, c, i, deadline) else {
            continue;
        };
        budget.consume(o.latency);
        if i < warmup {
            continue;
        }
        n += 1;
        if violates_per_input(&o, g, deadline) {
            violations += 1;
        }
        sum_obj += objective_key(&o, g);
        sum_energy += o.energy.get();
        sum_quality += o.quality;
        if o.latency.get() <= deadline.get() * (1.0 + 1e-9) {
            if let Some(floor) = g.min_quality {
                floored_timely += 1;
                sum_quality_floored += o.quality;
                sum_floor += floor;
            }
        }
    }
    let n_f = n.max(1) as f64;
    let mean_quality = sum_quality / n_f;
    let mut violation_rate = violations as f64 / n_f;
    // Accuracy floor over timely deliveries, against the average floor
    // in force (matches EpisodeSummary::disqualified): a failed floor
    // means full disqualification.
    if floored_timely > 0
        && sum_quality_floored / (floored_timely as f64)
            < sum_floor / (floored_timely as f64) - 1e-12
    {
        violation_rate = 1.0;
    }
    StaticScore {
        violation_rate,
        mean_objective: sum_obj / n_f,
        mean_energy: Joules(sum_energy / n_f),
        mean_quality,
    }
}

/// The best-static-configuration scheme (Table 4's normalization
/// baseline).
pub struct OracleStatic {
    choice: OracleCandidate,
    /// The winning configuration's episode score (diagnostics; for
    /// cell-level selection this is the score on the *first* setting;
    /// `None` when rebuilt from a bare choice).
    pub score: Option<StaticScore>,
}

impl OracleStatic {
    /// Exhaustively picks the best static configuration for one episode:
    /// the lowest mean objective among configurations within the 10%
    /// violation budget, else the lowest violation rate.
    pub fn new(
        env: Arc<EpisodeEnv>,
        family: ModelFamily,
        stream: &InputStream,
        goal: Goal,
    ) -> Self {
        Self::for_cell(&[(env, goal)], family, stream)
    }

    /// The paper's Table 4 baseline: "one fixed setting across inputs" —
    /// and across the cell's whole *requirement range*. One configuration
    /// is pinned for all 35 constraint settings of a cell; it can adapt
    /// neither to the environment nor to requirement changes, which is
    /// exactly what the dynamic schemes are credited for beating
    /// (§5.2: "ALERT outperforms OracleStatic because it adapts to
    /// dynamic variations").
    ///
    /// Selection: maximize the number of settings met (≤10% of inputs in
    /// violation), then minimize the mean objective across settings.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is empty or no candidate fits the platform.
    pub fn for_cell(
        cell: &[(Arc<EpisodeEnv>, Goal)],
        family: ModelFamily,
        stream: &InputStream,
    ) -> Self {
        assert!(!cell.is_empty(), "cell needs at least one setting");
        let candidates = enumerate(&family, &cell[0].0); // lint:allow(no-panic): guarded by the non-empty cell assert above
        let mut best: Option<(OracleCandidate, usize, f64, StaticScore)> = None;
        for c in candidates {
            let mut met = 0usize;
            let mut sum_obj = 0.0;
            let mut first_score: Option<StaticScore> = None;
            for (env, goal) in cell {
                let s = score_static(env, &family, stream, goal, &c);
                if s.violation_rate <= VIOLATION_DISQUALIFY_FRACTION {
                    met += 1;
                }
                sum_obj += s.mean_objective;
                if first_score.is_none() {
                    first_score = Some(s);
                }
            }
            let mean_obj = sum_obj / cell.len() as f64;
            let better = match &best {
                None => true,
                Some((_, best_met, best_obj, _)) => {
                    met > *best_met || (met == *best_met && mean_obj < *best_obj)
                }
            };
            if better {
                // lint:allow(no-panic): first_score is set on the first iteration over the non-empty cell
                best = Some((c, met, mean_obj, first_score.expect("non-empty cell")));
            }
        }
        // lint:allow(no-panic): enumerate() yields at least one candidate for every non-empty family, and families are validated non-empty
        let (choice, _, _, score) = best.expect("non-empty candidate set");
        OracleStatic {
            choice,
            score: Some(score),
        }
    }

    /// Rebuilds the scheme from a previously selected configuration
    /// (cheap; used to replay the cell-level choice on every setting).
    pub fn from_choice(choice: OracleCandidate) -> Self {
        OracleStatic {
            choice,
            score: None,
        }
    }

    /// The pinned configuration.
    pub fn choice(&self) -> OracleCandidate {
        self.choice
    }
}

impl Scheduler for OracleStatic {
    fn name(&self) -> &str {
        "OracleStatic"
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let stop = match self.choice.stage {
            None => StopPolicy::RunToCompletion,
            Some(k) => StopPolicy::AtTimeOrStage(ctx.deadline, k),
        };
        Decision {
            device: self.choice.device,
            model: self.choice.model,
            cap: self.choice.cap,
            stop,
        }
    }

    fn observe(&mut self, _feedback: &Feedback) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_platform::Platform;
    use alert_workload::{Scenario, TaskId};

    fn setup() -> (Arc<EpisodeEnv>, ModelFamily, InputStream, Goal) {
        let platform = Platform::cpu1();
        let family = ModelFamily::image_classification();
        let stream = InputStream::generate(TaskId::Img2, 150, 11);
        let goal = Goal::minimize_energy(Seconds(0.5), 0.90);
        let env = Arc::new(
            EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, &goal, 42).unwrap(),
        );
        (env, family, stream, goal)
    }

    #[test]
    fn enumeration_counts() {
        let (env, family, _, _) = setup();
        let cands = enumerate(&family, &env);
        // 5 traditional + 4 anytime stages = 9 rows × 15 caps.
        assert_eq!(cands.len(), 9 * 15);
    }

    #[test]
    fn oracle_meets_constraints_when_feasible() {
        let (env, family, _, goal) = setup();
        let mut oracle = Oracle::new(env.clone(), family.clone(), goal);
        for i in 0..50 {
            let ctx = InputContext {
                index: i,
                deadline: goal.deadline,
                period: goal.deadline,
                group: None,
            };
            let d = oracle.decide(&ctx);
            let profile = &family.models()[d.model];
            let result = env.realize(i, profile, d.cap, d.stop).unwrap();
            let q = result.quality_by(ctx.deadline, profile.fail_quality);
            assert!(
                result.latency <= ctx.deadline && q >= 0.90 - 1e-12,
                "input {i}: lat {} q {q}",
                result.latency
            );
        }
    }

    #[test]
    fn oracle_beats_static_on_objective() {
        let (env, family, stream, goal) = setup();
        let static_o = OracleStatic::new(env.clone(), family.clone(), &stream, goal);
        let static_score = static_o.score.expect("selection computes a score");
        let mut oracle = Oracle::new(env.clone(), family.clone(), goal);
        // Average oracle energy over measured inputs must be ≤ static's.
        let warmup = stream.warmup_len();
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..stream.len() {
            let ctx = InputContext {
                index: i,
                deadline: goal.deadline,
                period: goal.deadline,
                group: None,
            };
            let d = oracle.decide(&ctx);
            let profile = &family.models()[d.model];
            let result = env.realize(i, profile, d.cap, d.stop).unwrap();
            if i >= warmup {
                sum += env.period_energy(i, profile, d.cap, &result).get();
                n += 1;
            }
        }
        let oracle_mean = sum / n as f64;
        // The dynamic oracle satisfies the constraints on *every* input,
        // while the static baseline may trade up to 10% violations for
        // cheaper inputs — so allow a small margin rather than strict
        // dominance.
        assert!(
            oracle_mean <= static_score.mean_energy.get() * 1.02,
            "oracle {oracle_mean} vs static {}",
            static_score.mean_energy
        );
    }

    #[test]
    fn static_choice_is_feasible_when_possible() {
        let (env, family, stream, goal) = setup();
        let s = OracleStatic::new(env, family, &stream, goal);
        let score = s.score.expect("selection computes a score");
        assert!(
            score.violation_rate <= VIOLATION_DISQUALIFY_FRACTION,
            "violation rate {}",
            score.violation_rate
        );
    }

    #[test]
    fn cell_level_choice_is_a_compromise() {
        // Across a whole cell (several deadlines × floors), the pinned
        // configuration must work for the *tight* settings, so it cannot
        // be the per-setting optimum of the loose ones — the headroom the
        // dynamic schemes get credited for (§5.2).
        let platform = Platform::cpu1();
        let family = ModelFamily::image_classification();
        let stream = InputStream::generate(TaskId::Img2, 120, 11);
        let loose = Goal::minimize_energy(Seconds(0.8), 0.86);
        let tight = Goal::minimize_energy(Seconds(0.15), 0.86);
        let mk_env = |g: &Goal| {
            Arc::new(
                EpisodeEnv::build(&platform, &Scenario::default_env(), &stream, g, 42).unwrap(),
            )
        };
        let cell = vec![(mk_env(&loose), loose), (mk_env(&tight), tight)];
        let cell_static = OracleStatic::for_cell(&cell, family.clone(), &stream);
        let loose_static = OracleStatic::new(mk_env(&loose), family.clone(), &stream, loose);
        // The per-setting optimum for the loose setting is cheaper than
        // the cell-level compromise evaluated on that same setting.
        let cell_on_loose =
            score_static(&cell[0].0, &family, &stream, &loose, &cell_static.choice());
        let loose_on_loose = loose_static.score.expect("score");
        assert!(
            loose_on_loose.mean_energy.get() <= cell_on_loose.mean_energy.get() + 1e-9,
            "loose-optimal {} should not exceed cell compromise {}",
            loose_on_loose.mean_energy,
            cell_on_loose.mean_energy
        );
    }

    #[test]
    fn oracle_places_tight_deadlines_on_the_gpu() {
        // A 50 ms deadline at a 0.90 floor is infeasible on cpu1 (the
        // cheapest qualifying CNN is 60 ms reference × 2.2 class speed)
        // but comfortable on the GPU (× 0.12) — so a perfect-knowledge
        // oracle over a CPU+GPU node must route every input to device 1.
        let node = [Platform::cpu1(), Platform::gpu()];
        let family = ModelFamily::image_classification();
        let stream = InputStream::generate(TaskId::Img2, 100, 11);
        let goal = Goal::minimize_energy(Seconds(0.05), 0.90);
        let env = Arc::new(
            EpisodeEnv::build_hetero(&node, &Scenario::default_env(), &stream, &goal, 42, None)
                .unwrap(),
        );
        // Device-major enumeration covers both platforms' cap tables.
        let cands = enumerate(&family, &env);
        assert!(cands.iter().any(|c| c.device == 0));
        assert!(cands.iter().any(|c| c.device == 1));

        let mut oracle = Oracle::new(env.clone(), family.clone(), goal);
        for i in 0..50 {
            let ctx = InputContext {
                index: i,
                deadline: goal.deadline,
                period: goal.deadline,
                group: None,
            };
            let d = oracle.decide(&ctx);
            assert_eq!(d.device, 1, "input {i} must land on the GPU");
            let profile = &family.models()[d.model];
            let result = env.realize_on(d.device, i, profile, d.cap, d.stop).unwrap();
            let q = result.quality_by(ctx.deadline, profile.fail_quality);
            assert!(
                result.latency <= ctx.deadline && q >= 0.90 - 1e-12,
                "input {i}: lat {} q {q}",
                result.latency
            );
        }
    }

    #[test]
    fn impossible_goal_still_returns_something() {
        let (env, family, _, _) = setup();
        // 1 ms deadline: nothing completes.
        let goal = Goal::minimize_energy(Seconds(0.001), 0.99);
        let mut oracle = Oracle::new(env, family, goal);
        let d = oracle.decide(&InputContext {
            index: 0,
            deadline: goal.deadline,
            period: goal.deadline,
            group: None,
        });
        // Fallback picked *some* configuration.
        let _ = d;
    }
}
