//! Episode environment realization.
//!
//! Before an episode runs, every random quantity is drawn once and frozen:
//! per-input latency scale (from the task's input stream, times any
//! scripted drift), baseline noise primitives, contention primitives for
//! *both* co-runner kinds, arrival jitter, and the co-runners' on/off
//! activity at each dispatch time. The scripted deterministic quantities
//! — the requirement (goal) in force, the enforced power-cap ceiling, the
//! arrival process — are resolved per input at build time too. Freezing
//! buys two things the paper's methodology needs:
//!
//! * every scheme in a comparison faces *bit-identical* conditions, and
//! * the Oracle schemes can evaluate **counterfactual** configurations
//!   exactly — "perfect predictions for every input under every DNN/power
//!   setting" (§5.1) — because the environment's effect on any (model,
//!   cap) pair is a deterministic function of the frozen draws.
//!
//! The dispatch grid is computed **once per scenario**, independent of
//! any scheme's processing latencies (sensor-style arrivals, §2.1), so
//! the co-runner activity pattern, the goal timeline and the cap
//! timeline are identical across schemes — including through cap/goal
//! phase boundaries.
//!
//! # Heterogeneous nodes
//!
//! [`EpisodeEnv::build_hetero`] realizes the same episode across several
//! backends (device `0` is the primary platform, devices `1..` the
//! extras). Every random draw is shared across devices — the frozen
//! per-input state is platform-independent — so a placement decision is
//! a pure counterfactual: the Oracle can ask "what if this input had run
//! on the GPU" and get the exact answer from the same draws. Only the
//! scripted cap timeline is per-device: a
//! [`ScriptEvent::DeviceCapStep`](alert_workload::ScriptEvent) binds to
//! one device, and a
//! [`ScriptEvent::GpuThrottle`](alert_workload::ScriptEvent) binds to
//! every GPU backend by mapping clock steps onto that board's power
//! ceiling. The `*_on` method family ([`EpisodeEnv::realize_on`] etc.)
//! evaluates any device; the legacy single-device methods delegate to
//! device `0`, so single-platform episodes are bit-identical to builds
//! that predate the device axis.

use alert_models::inference::{self, InferenceResult, StopPolicy};
use alert_models::ModelProfile;
use alert_platform::contention::{ContentionDraws, ContentionKind};
use alert_platform::error::PowerError;
use alert_platform::platform::{FreqResponse, NoiseDraws, PlatformId};
use alert_platform::Platform;
use alert_stats::rng::stream_rng;
use alert_stats::units::{Joules, Seconds, Watts};
use alert_workload::{
    ArrivalProcess, ArrivalSampler, Goal, InputStream, QualitySpan, Scenario, ScenarioScript,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Environment-path errors: invalid scenario scripts at build time,
/// infeasible power requests at realize time.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// The scenario script failed validation (see message).
    Script(String),
    /// A requested power cap was infeasible for the platform.
    Power(PowerError),
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::Script(msg) => write!(f, "invalid scenario script: {msg}"),
            EnvError::Power(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EnvError {}

impl From<PowerError> for EnvError {
    fn from(e: PowerError) -> Self {
        EnvError::Power(e)
    }
}

/// The frozen state of one input: random draws plus the scripted
/// deterministic conditions in force at its dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvRealization {
    /// When this input arrives (scenario-defined grid).
    pub dispatch_time: Seconds,
    /// Period until the next input (idle-energy accounting window).
    pub period: Seconds,
    /// Task-dependent per-input latency scale (stream sample × drift).
    pub scale: f64,
    /// The requirement in force at dispatch (base goal + scripted
    /// changes).
    pub goal: Goal,
    /// Enforced power-cap ceiling, if the script caps the platform here.
    pub cap_limit: Option<Watts>,
    /// Whether a memory co-runner is active at dispatch.
    pub mem_active: bool,
    /// Whether a compute co-runner is active at dispatch.
    pub cmp_active: bool,
    /// Memory-contention randomness primitives.
    pub mem_draws: ContentionDraws,
    /// Compute-contention randomness primitives.
    pub cmp_draws: ContentionDraws,
    /// Baseline-noise randomness primitives.
    pub noise: NoiseDraws,
}

impl EnvRealization {
    /// Whether any co-runner is active at dispatch.
    pub fn contention_active(&self) -> bool {
        self.mem_active || self.cmp_active
    }
}

/// A fully realized episode environment.
#[derive(Debug, Clone)]
pub struct EpisodeEnv {
    platform: Platform,
    kind: Option<ContentionKind>,
    realizations: Vec<EnvRealization>,
    /// Extra backends (devices `1..`) of a heterogeneous episode; empty
    /// for single-platform builds.
    extra_platforms: Vec<Platform>,
    /// Per-input scripted cap ceilings of each extra device, indexed
    /// `[device - 1][input]` (device 0's ceiling lives in
    /// [`EnvRealization::cap_limit`] so the frozen state stays
    /// serde-stable).
    extra_cap_limits: Vec<Vec<Option<Watts>>>,
}

/// The scripted cap ceiling in force for `device` on `platform` at
/// horizon fraction `frac`: a device-targeted cap step composed (by
/// `min`) with a GPU clock throttle when the platform is a GPU backend.
/// The global [`ScenarioScript::cap_frac_at`] ceiling is *not* included
/// — it keeps its historical device-0 meaning and is composed by the
/// caller.
fn scripted_device_limit(
    script: &ScenarioScript,
    frac: f64,
    device: usize,
    platform: &Platform,
) -> Option<Watts> {
    let range = platform.cap_range();
    let (lo, hi) = (range.min(), range.max());
    let stepped = script
        .device_cap_frac_at(frac, device)
        .map(|f| Watts(lo.get() + f * (hi.get() - lo.get())));
    let throttled = if platform.id() == PlatformId::Gpu {
        script
            .gpu_throttle_at(frac)
            .and_then(|steps| match &platform.spec().response {
                FreqResponse::Table { table, .. } => Some(table.throttled_power(steps)),
                FreqResponse::Curve(_) => None,
            })
    } else {
        None
    };
    compose_limits(stepped, throttled)
}

/// Min-composition of two optional ceilings.
fn compose_limits(a: Option<Watts>, b: Option<Watts>) -> Option<Watts> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

impl EpisodeEnv {
    /// Builds the environment for `stream` under `scenario` on `platform`.
    ///
    /// Equivalent to [`EpisodeEnv::build_scoped`] without a
    /// [`QualitySpan`]; scenarios that move the quality floor *relative*
    /// to the family range must use the scoped constructor.
    ///
    /// # Errors
    ///
    /// Fails when the scenario script does not validate.
    pub fn build(
        platform: &Platform,
        scenario: &Scenario,
        stream: &InputStream,
        goal: &Goal,
        seed: u64,
    ) -> Result<Self, EnvError> {
        Self::build_scoped(platform, scenario, stream, goal, seed, None)
    }

    /// Builds the environment for `stream` under `scenario` on
    /// `platform`, resolving relative quality-floor patches against
    /// `span` (the serving family's achievable quality range,
    /// [`alert_workload::quality_span`]).
    ///
    /// The arrival grid follows the script's arrival process (the default
    /// is periodic at the effective goal deadline; for grouped tasks the
    /// per-word period equals the per-word share of the sentence budget).
    /// Event marks are resolved against the nominal horizon
    /// `stream.len() × goal.deadline`.
    ///
    /// Under [`ArrivalProcess::Trace`] both the period *and* the
    /// per-input scale come from the script's attached
    /// [`TraceSource`](alert_workload::TraceSource) (fitted onto the
    /// horizon by the process's `TraceFit` mode), replacing the sampled
    /// grid and the stream's own scales; scripted drift still composes
    /// multiplicatively on top, and the per-input arrival draw is still
    /// consumed so switching to or from replay never re-aligns the other
    /// frozen random streams.
    ///
    /// # Errors
    ///
    /// Fails when the scenario script does not validate, when a relative
    /// floor is scripted without a `span`, or when the attached trace
    /// cannot cover the horizon under its fit mode.
    pub fn build_scoped(
        platform: &Platform,
        scenario: &Scenario,
        stream: &InputStream,
        goal: &Goal,
        seed: u64,
        span: Option<QualitySpan>,
    ) -> Result<Self, EnvError> {
        let script = scenario.script();
        script.validate().map_err(EnvError::Script)?;
        if script.uses_relative_floor() && span.is_none() {
            return Err(EnvError::Script(
                "script moves the quality floor relative to the family range; \
                 realize with EpisodeEnv::build_scoped and the family's QualitySpan"
                    .into(),
            ));
        }
        for fit in script.trace_fits() {
            // validate() guarantees the source exists when a trace
            // arrival is scripted.
            // lint:allow(no-panic): validate() guarantees the source exists when a trace arrival is scripted
            let source = script.trace().expect("validated trace attachment");
            source
                .check_horizon(stream.len(), fit)
                .map_err(EnvError::Script)?;
        }
        let mut noise_rng = stream_rng(seed, "episode-noise");
        let mut cont_rng = stream_rng(seed, "episode-contention");
        let mut arrival_rng = stream_rng(seed, "episode-arrival");
        let mut processes = script.contention_processes();
        let kind = scenario.kind();

        let cap_range = platform.cap_range();
        let (cap_min, cap_max) = (cap_range.min(), cap_range.max());
        let horizon = goal.deadline.get() * stream.len() as f64;
        let mut sampler = ArrivalSampler::new();

        let mut realizations = Vec::with_capacity(stream.len());
        let mut now = Seconds::ZERO;
        for (i, input) in stream.inputs().iter().enumerate() {
            let frac = (now.get() / horizon).clamp(0.0, 1.0);
            let eff_goal = script.goal_at(frac, goal, span);
            // Device 0's ceiling composes the global cap step (its
            // historical meaning) with any device-targeted events; when
            // no device events are scripted this reduces to the global
            // value alone, keeping pre-device builds bit-identical.
            let cap_limit = compose_limits(
                script
                    .cap_frac_at(frac)
                    .map(|f| Watts(cap_min.get() + f * (cap_max.get() - cap_min.get()))),
                scripted_device_limit(script, frac, 0, platform),
            );
            // One arrival draw per input regardless of the process in
            // force (trace replay included), so the frozen streams never
            // re-align across arrival switches.
            let arrival_u: f64 = arrival_rng.gen_range(0.0..1.0);
            let (period, base_scale) = match script.arrival_at(frac) {
                ArrivalProcess::Trace { fit } => {
                    // Trace periods bypass the sampler; clear its burst
                    // state so a later switch back to `Bursty` starts a
                    // fresh cycle (same semantics as the sampler's own
                    // `Trace` arm).
                    sampler.reset();
                    // lint:allow(no-panic): validate() guarantees the source exists when a trace arrival is scripted
                    let step = script.trace().expect("validated trace attachment").step(
                        i,
                        stream.len(),
                        fit,
                    );
                    (step.inter_arrival, step.scale)
                }
                process => (
                    sampler.next_period(&process, eff_goal.deadline, arrival_u),
                    input.scale,
                ),
            };
            let mut mem_active = false;
            let mut cmp_active = false;
            for (k, p) in processes.iter_mut() {
                if p.active_at(now) {
                    match k {
                        ContentionKind::Memory => mem_active = true,
                        ContentionKind::Compute => cmp_active = true,
                    }
                }
            }
            realizations.push(EnvRealization {
                dispatch_time: now,
                period,
                scale: base_scale * script.drift_at(frac),
                goal: eff_goal,
                cap_limit,
                mem_active,
                cmp_active,
                mem_draws: ContentionDraws::sample(&mut cont_rng),
                cmp_draws: ContentionDraws::sample(&mut cont_rng),
                noise: NoiseDraws::sample(&mut noise_rng),
            });
            now += period;
        }
        Ok(EpisodeEnv {
            platform: platform.clone(),
            kind,
            realizations,
            extra_platforms: Vec::new(),
            extra_cap_limits: Vec::new(),
        })
    }

    /// Builds a heterogeneous episode: `platforms[0]` is the primary
    /// device, the rest join as devices `1..`. The frozen per-input
    /// state (scale, noise, contention and arrival draws, goal and
    /// global-cap timelines) is built exactly as
    /// [`EpisodeEnv::build_scoped`] builds it on the primary alone — the
    /// draws are platform-independent, so every device faces the same
    /// realized conditions and placement is a pure counterfactual. On
    /// top, each extra device gets its own scripted cap timeline from
    /// device-targeted and GPU-throttle events.
    ///
    /// # Errors
    ///
    /// Fails when `platforms` is empty or the scenario script does not
    /// validate.
    pub fn build_hetero(
        platforms: &[Platform],
        scenario: &Scenario,
        stream: &InputStream,
        goal: &Goal,
        seed: u64,
        span: Option<QualitySpan>,
    ) -> Result<Self, EnvError> {
        let (primary, extras) = platforms
            .split_first()
            .ok_or_else(|| EnvError::Script("hetero build needs at least one platform".into()))?;
        let mut env = Self::build_scoped(primary, scenario, stream, goal, seed, span)?;
        let script = scenario.script();
        let horizon = goal.deadline.get() * stream.len() as f64;
        for (k, platform) in extras.iter().enumerate() {
            let device = k + 1;
            let limits = env
                .realizations
                .iter()
                .map(|r| {
                    // Same fraction expression as the build loop, so
                    // device timelines line up with device 0's grid.
                    let frac = (r.dispatch_time.get() / horizon).clamp(0.0, 1.0);
                    scripted_device_limit(script, frac, device, platform)
                })
                .collect();
            env.extra_platforms.push(platform.clone());
            env.extra_cap_limits.push(limits);
        }
        Ok(env)
    }

    /// The platform this episode runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Number of devices in the episode (`1` for single-platform
    /// builds; [`EpisodeEnv::build_hetero`] adds the rest).
    pub fn device_count(&self) -> usize {
        1 + self.extra_platforms.len()
    }

    /// The platform backing `device` (`0` is the primary).
    pub fn platform_on(&self, device: usize) -> &Platform {
        if device == 0 {
            &self.platform
        } else {
            &self.extra_platforms[device - 1]
        }
    }

    /// The primary contention kind of the scenario, if any (reporting
    /// only; realization honors every scripted co-runner).
    pub fn kind(&self) -> Option<ContentionKind> {
        self.kind
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.realizations.len()
    }

    /// `true` if the episode has no inputs.
    pub fn is_empty(&self) -> bool {
        self.realizations.is_empty()
    }

    /// The frozen state of input `i`.
    pub fn realization(&self, i: usize) -> &EnvRealization {
        &self.realizations[i]
    }

    /// All frozen per-input states, in dispatch order (cross-scheme
    /// bit-identity assertions compare these wholesale).
    pub fn realizations(&self) -> &[EnvRealization] {
        &self.realizations
    }

    /// Whether any co-runner is active at input `i`'s dispatch.
    pub fn active(&self, i: usize) -> bool {
        self.realizations[i].contention_active()
    }

    /// The idle-accounting period of input `i`.
    pub fn period(&self, i: usize) -> Seconds {
        self.realizations[i].period
    }

    /// The requirement in force at input `i`'s dispatch.
    pub fn goal_of(&self, i: usize) -> &Goal {
        &self.realizations[i].goal
    }

    /// The scripted cap ceiling in force for `device` at input `i`, if
    /// any (device 0's ceiling is the one frozen in
    /// [`EnvRealization::cap_limit`]).
    pub fn cap_limit_on(&self, device: usize, i: usize) -> Option<Watts> {
        if device == 0 {
            self.realizations[i].cap_limit
        } else {
            self.extra_cap_limits[device - 1][i]
        }
    }

    /// The cap the platform actually programs when `requested` is asked
    /// for at input `i`: the scripted ceiling clamps silently, exactly
    /// like a RAPL limit the scheduler was not told about.
    pub fn effective_cap(&self, i: usize, requested: Watts) -> Watts {
        self.effective_cap_on(0, i, requested)
    }

    /// [`EpisodeEnv::effective_cap`] for any device.
    pub fn effective_cap_on(&self, device: usize, i: usize, requested: Watts) -> Watts {
        match self.cap_limit_on(device, i) {
            Some(limit) => requested.min(limit),
            None => requested,
        }
    }

    /// The deterministic environment factor input `i` applies to `profile`
    /// (scale × baseline noise × contention inflation of every active
    /// co-runner kind).
    pub fn env_factor(&self, i: usize, profile: &ModelProfile) -> f64 {
        self.env_factor_on(0, i, profile)
    }

    /// [`EpisodeEnv::env_factor`] for any device: the draws are shared
    /// (the frozen state is platform-independent), but each device maps
    /// them through its own noise and contention models, so the same
    /// co-runner hurts a GPU and a CPU differently.
    pub fn env_factor_on(&self, device: usize, i: usize, profile: &ModelProfile) -> f64 {
        let platform = self.platform_on(device);
        let r = &self.realizations[i];
        let mut f = r.scale * platform.noise().factor_from_draws(&r.noise);
        if r.mem_active {
            f *= platform
                .contention_model(ContentionKind::Memory)
                .factor_from_draws(&r.mem_draws, profile.mem_intensity);
        }
        if r.cmp_active {
            f *= platform
                .contention_model(ContentionKind::Compute)
                .factor_from_draws(&r.cmp_draws, profile.rho);
        }
        f
    }

    /// Executes input `i` with `profile` at `cap` under `stop`, after
    /// applying the scripted cap ceiling.
    ///
    /// When a ceiling clamps the request, the execution runs at the
    /// clamped cap but the result's `profile_equivalent` is billed
    /// against the *requested* cap — the caller's profile tables know
    /// nothing of the hidden limit, so the throttling surfaces as
    /// observed slowdown ξ, which is exactly how a controller on real
    /// RAPL-capped hardware experiences an external cap change (§5).
    ///
    /// # Errors
    ///
    /// Fails when the cap is infeasible for the platform — schedulers
    /// pick caps from [`Platform::power_settings`], so this indicates a
    /// malformed caller, reported instead of panicking.
    pub fn realize(
        &self,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        stop: StopPolicy,
    ) -> Result<InferenceResult, EnvError> {
        self.realize_on(0, i, profile, cap, stop)
    }

    /// [`EpisodeEnv::realize`] for any device.
    ///
    /// # Errors
    ///
    /// Fails when the cap is infeasible for that device's platform.
    pub fn realize_on(
        &self,
        device: usize,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        stop: StopPolicy,
    ) -> Result<InferenceResult, EnvError> {
        let platform = self.platform_on(device);
        let eff = self.effective_cap_on(device, i, cap);
        let f = self.env_factor_on(device, i, profile);
        let mut result = inference::execute(profile, platform, eff, f, stop)?;
        if eff != cap {
            let t_requested = inference::profile_latency(profile, platform, cap)?;
            let t_clamped = inference::profile_latency(profile, platform, eff)?;
            if t_clamped.get() > 0.0 {
                result.profile_equivalent = result.profile_equivalent * (t_requested / t_clamped);
            }
        }
        Ok(result)
    }

    /// Power drawn while input `i`'s pipeline idles at `cap`: the base
    /// idle draw plus the extra draw of every active co-runner, never
    /// exceeding the (ceiling-clamped) cap.
    pub fn idle_draw(&self, i: usize, cap: Watts) -> Watts {
        self.idle_draw_on(0, i, cap)
    }

    /// [`EpisodeEnv::idle_draw`] for any device.
    pub fn idle_draw_on(&self, device: usize, i: usize, cap: Watts) -> Watts {
        let platform = self.platform_on(device);
        let cap = self.effective_cap_on(device, i, cap);
        let r = &self.realizations[i];
        let mut draw = platform.idle_draw(cap, None);
        if r.mem_active {
            draw += platform
                .contention_model(ContentionKind::Memory)
                .idle_draw_extra;
        }
        if r.cmp_active {
            draw += platform
                .contention_model(ContentionKind::Compute)
                .idle_draw_extra;
        }
        draw.min(cap)
    }

    /// Period energy of input `i` given the chosen profile/cap and the
    /// realized execution.
    pub fn period_energy(
        &self,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        result: &InferenceResult,
    ) -> Joules {
        self.period_energy_on(0, i, profile, cap, result)
    }

    /// [`EpisodeEnv::period_energy`] for any device.
    pub fn period_energy_on(
        &self,
        device: usize,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        result: &InferenceResult,
    ) -> Joules {
        let platform = self.platform_on(device);
        let cap = self.effective_cap_on(device, i, cap);
        let run_p = inference::run_power(profile, platform, cap);
        let idle_p = self.idle_draw_on(device, i, cap);
        let idle_time = Seconds((self.period(i) - result.latency).get().max(0.0));
        run_p * result.latency + idle_p * idle_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_models::zoo::resnet50;
    use alert_workload::{ArrivalProcess, GoalPatch, ScenarioScript, ScriptEvent, TaskId};

    fn setup(scenario: Scenario) -> (EpisodeEnv, InputStream) {
        let platform = Platform::cpu2();
        let stream = InputStream::generate(TaskId::Img2, 200, 7);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 99).expect("valid");
        (env, stream)
    }

    #[test]
    fn build_is_deterministic() {
        let (a, _) = setup(Scenario::memory_env(3));
        let (b, _) = setup(Scenario::memory_env(3));
        assert_eq!(a.realizations, b.realizations);
    }

    #[test]
    fn default_scenario_never_active() {
        let (env, _) = setup(Scenario::default_env());
        for i in 0..env.len() {
            assert!(!env.active(i));
            assert_eq!(env.realization(i).cap_limit, None);
            assert_eq!(env.goal_of(i), &Goal::minimize_energy(Seconds(0.2), 0.9));
            assert_eq!(env.period(i), Seconds(0.2));
        }
    }

    #[test]
    fn contention_scenario_has_phases() {
        let (env, _) = setup(Scenario::memory_env(3));
        let active = (0..env.len()).filter(|&i| env.active(i)).count();
        assert!(active > 20, "active inputs: {active}");
        assert!(active < env.len() - 20, "never-off contention");
    }

    #[test]
    fn env_factor_reflects_contention_and_model_sensitivity() {
        let (env, _) = setup(Scenario::memory_env(3));
        let model = resnet50();
        let mut mem_sensitive = model.clone();
        mem_sensitive.mem_intensity = 0.9;
        let mut mem_insensitive = model.clone();
        mem_insensitive.mem_intensity = 0.1;
        let mut sens_sum = 0.0;
        let mut insens_sum = 0.0;
        let mut n = 0;
        for i in 0..env.len() {
            if env.active(i) {
                sens_sum += env.env_factor(i, &mem_sensitive);
                insens_sum += env.env_factor(i, &mem_insensitive);
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(
            sens_sum / n as f64 > insens_sum / n as f64 + 0.3,
            "memory-bound model must suffer more"
        );
    }

    #[test]
    fn realize_matches_env_factor() {
        let (env, _) = setup(Scenario::compute_env(5));
        let m = resnet50();
        let cap = Watts(100.0);
        for i in [0, 50, 150] {
            let r = env
                .realize(i, &m, cap, StopPolicy::RunToCompletion)
                .unwrap();
            let expected = inference::profile_latency(&m, env.platform(), cap)
                .expect("feasible preset cap")
                .get()
                * env.env_factor(i, &m);
            assert!((r.latency.get() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn realize_reports_infeasible_caps_instead_of_panicking() {
        // Regression: this used to `expect()` deep in the env path.
        let (env, _) = setup(Scenario::default_env());
        let m = resnet50();
        let err = env.realize(0, &m, Watts(1.0), StopPolicy::RunToCompletion);
        assert!(matches!(err, Err(EnvError::Power(_))), "{err:?}");
    }

    #[test]
    fn build_rejects_invalid_scripts() {
        let platform = Platform::cpu2();
        let stream = InputStream::generate(TaskId::Img2, 10, 7);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let bad = Scenario::from_script(
            "Bad",
            ScenarioScript::new().with(ScriptEvent::CapStep { at: 2.0, frac: 0.5 }),
        );
        let err = EpisodeEnv::build(&platform, &bad, &stream, &goal, 1);
        assert!(matches!(err, Err(EnvError::Script(_))), "{err:?}");
    }

    #[test]
    fn period_energy_includes_idle() {
        let (env, _) = setup(Scenario::default_env());
        let m = resnet50();
        let cap = Watts(100.0);
        let r = env
            .realize(0, &m, cap, StopPolicy::RunToCompletion)
            .unwrap();
        let e = env.period_energy(0, &m, cap, &r);
        let run_only = inference::run_power(&m, env.platform(), cap) * r.latency;
        assert!(e > run_only, "idle energy must be accounted");
    }

    #[test]
    fn counterfactuals_share_randomness() {
        // The same input applies *correlated* conditions to two different
        // models: the oracle property.
        let (env, _) = setup(Scenario::memory_env(3));
        let m1 = resnet50();
        let mut m2 = resnet50();
        m2.ref_latency_s *= 0.5;
        for i in 0..20 {
            let f1 = env.env_factor(i, &m1);
            let f2 = env.env_factor(i, &m2);
            // Same sensitivity → identical factor (scale & draws shared).
            assert!((f1 - f2).abs() < 1e-12);
        }
    }

    #[test]
    fn cap_steps_clamp_realization_exactly_from_their_mark() {
        let scenario = Scenario::from_script(
            "HalfCap",
            ScenarioScript::new().with(ScriptEvent::CapStep { at: 0.5, frac: 0.0 }),
        );
        let (env, _) = setup(scenario);
        let cap_min = env.platform().cap_range().min();
        let m = resnet50();
        let cap = Watts(100.0);
        let n = env.len();
        // Before the mark: unrestricted; after: clamped to the range min.
        assert_eq!(env.effective_cap(0, cap), cap);
        assert_eq!(env.effective_cap(n - 1, cap), cap_min);
        let boundary = (0..n)
            .find(|&i| env.realization(i).cap_limit.is_some())
            .expect("cap step must land");
        assert!(boundary > n / 3 && boundary < 2 * n / 3, "at {boundary}");
        // Realized latency after the mark equals the min-cap latency.
        let r = env
            .realize(n - 1, &m, cap, StopPolicy::RunToCompletion)
            .unwrap();
        let expected = inference::profile_latency(&m, env.platform(), cap_min)
            .expect("min cap feasible")
            .get()
            * env.env_factor(n - 1, &m);
        assert!((r.latency.get() - expected).abs() < 1e-12);
    }

    #[test]
    fn goal_changes_land_on_the_grid_and_reshape_periods() {
        let scenario = Scenario::goal_flip();
        let (env, _) = setup(scenario);
        let base = Seconds(0.2);
        let tightened: Vec<usize> = (0..env.len())
            .filter(|&i| env.goal_of(i).deadline < base)
            .collect();
        assert!(!tightened.is_empty(), "flip must tighten somewhere");
        for &i in &tightened {
            assert!((env.goal_of(i).deadline.get() - 0.12).abs() < 1e-12);
            // Periodic arrivals follow the effective deadline.
            assert!((env.period(i).get() - 0.12).abs() < 1e-12);
        }
        // The flip flips back: the last input runs at the base deadline.
        assert_eq!(env.goal_of(env.len() - 1).deadline, base);
    }

    #[test]
    fn goal_floor_change_is_visible() {
        let scenario = Scenario::from_script(
            "FloorUp",
            ScenarioScript::new().with(ScriptEvent::GoalChange {
                at: 0.5,
                patch: GoalPatch {
                    min_quality: Some(0.95),
                    ..Default::default()
                },
            }),
        );
        let (env, _) = setup(scenario);
        assert_eq!(env.goal_of(0).min_quality, Some(0.9));
        assert_eq!(env.goal_of(env.len() - 1).min_quality, Some(0.95));
    }

    #[test]
    fn relative_floor_needs_a_span_and_resolves_with_one() {
        let platform = Platform::cpu2();
        let stream = InputStream::generate(TaskId::Img2, 100, 7);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let scenario = Scenario::floor_raise();
        // Span-less realization refuses loudly...
        let err = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 3);
        assert!(matches!(err, Err(EnvError::Script(_))), "{err:?}");
        // ...and the scoped path resolves the floor inside the span.
        let span = alert_workload::QualitySpan::new(0.855, 0.935);
        let env =
            EpisodeEnv::build_scoped(&platform, &scenario, &stream, &goal, 3, Some(span)).unwrap();
        assert_eq!(env.goal_of(0).min_quality, Some(0.9));
        let raised = env.goal_of(env.len() - 1).min_quality.unwrap();
        assert!((raised - span.floor_at(0.85)).abs() < 1e-12, "{raised}");
    }

    #[test]
    fn trace_replay_reproduces_recorded_arrivals_and_scales() {
        use alert_workload::{TraceFit, TraceSource, TraceStep};
        // "Record" an environment: its periods and realized scales become
        // the trace; the replay must reproduce both bit-exactly.
        let (orig, stream) = setup(Scenario::drift_ramp());
        let steps: Vec<TraceStep> = (0..orig.len())
            .map(|i| TraceStep {
                inter_arrival: orig.period(i),
                scale: orig.realization(i).scale,
            })
            .collect();
        let source = TraceSource::new("recorded", steps);
        for fit in [TraceFit::Loop, TraceFit::Truncate, TraceFit::Stretch] {
            let replay = Scenario::replay("Replay", source.clone(), fit);
            let (env, _) = setup(replay);
            assert_eq!(env.len(), orig.len());
            for i in 0..env.len() {
                assert_eq!(
                    env.period(i).get().to_bits(),
                    orig.period(i).get().to_bits(),
                    "{fit} period {i}"
                );
                assert_eq!(
                    env.realization(i).scale.to_bits(),
                    orig.realization(i).scale.to_bits(),
                    "{fit} scale {i}"
                );
            }
        }
        let _ = stream;
    }

    #[test]
    fn trace_replay_composes_with_counterfactual_scripts() {
        use alert_workload::{TraceFit, TraceSource, TraceStep};
        let (orig, _) = setup(Scenario::default_env());
        let steps: Vec<TraceStep> = (0..orig.len())
            .map(|i| TraceStep {
                inter_arrival: orig.period(i),
                scale: orig.realization(i).scale,
            })
            .collect();
        let source = TraceSource::new("recorded", steps);
        // Counterfactual: the same traffic under a cap crash and a goal
        // tightening — arrivals/scales stay recorded, conditions change.
        let counter = Scenario::replay_under(
            "ReplayUnderStress",
            source,
            TraceFit::Truncate,
            ScenarioScript::new()
                .with(ScriptEvent::CapStep { at: 0.5, frac: 0.0 })
                .with(ScriptEvent::GoalChange {
                    at: 0.5,
                    patch: GoalPatch::deadline(0.8),
                }),
        );
        let (env, _) = setup(counter);
        let n = env.len();
        for i in 0..n {
            assert_eq!(
                env.period(i).get().to_bits(),
                orig.period(i).get().to_bits()
            );
            assert_eq!(
                env.realization(i).scale.to_bits(),
                orig.realization(i).scale.to_bits()
            );
        }
        // The overlaid events bind: the tail is capped and tightened.
        assert!(env.realization(n - 1).cap_limit.is_some());
        assert!(env.goal_of(n - 1).deadline < env.goal_of(0).deadline);
        // Unlike periodic arrivals, the recorded grid does NOT follow the
        // tightened deadline — it is historical traffic.
        assert_eq!(
            env.period(n - 1).get().to_bits(),
            orig.period(n - 1).get().to_bits()
        );
    }

    #[test]
    fn bursty_restarts_fresh_after_a_trace_segment() {
        use alert_workload::{TraceFit, TraceSource, TraceStep};
        // Regression: while a trace segment is in force the sampler is
        // bypassed; switching back to Bursty must start a fresh burst
        // cycle, not resume mid-cycle from the pre-trace position.
        let bursty = ArrivalProcess::Bursty {
            burst: 4,
            spread: 0.25,
        };
        let source = TraceSource::new(
            "mid",
            vec![TraceStep {
                inter_arrival: Seconds(0.5),
                scale: 1.0,
            }],
        );
        let scenario = Scenario::from_script(
            "BurstTraceBurst",
            ScenarioScript::new()
                .with_arrival(bursty)
                .with(ScriptEvent::ArrivalChange {
                    at: 0.4,
                    process: ArrivalProcess::Trace {
                        fit: TraceFit::Loop,
                    },
                })
                .with(ScriptEvent::ArrivalChange {
                    at: 0.7,
                    process: bursty,
                })
                .with_trace(source),
        );
        let (env, _) = setup(scenario);
        // Find the first input back on the bursty grid after the trace
        // segment (trace periods are 0.5; bursty periods are 0.05 or the
        // cycle-closing 0.65).
        let first_trace = (0..env.len())
            .find(|&i| env.period(i) == Seconds(0.5))
            .expect("trace segment lands");
        let first_back = (first_trace..env.len())
            .find(|&i| env.period(i) != Seconds(0.5))
            .expect("bursty resumes");
        // A fresh cycle starts with the intra-burst spacing, never the
        // cycle-closing gap a mid-cycle resume could produce.
        assert!(
            (env.period(first_back).get() - 0.2 * 0.25).abs() < 1e-12,
            "post-trace burst must restart, got period {}",
            env.period(first_back)
        );
    }

    #[test]
    fn trace_replay_fit_modes_cover_horizon_mismatch() {
        use alert_workload::{TraceFit, TraceSource, TraceStep};
        let short = TraceSource::new(
            "short",
            (0..10)
                .map(|k| TraceStep {
                    inter_arrival: Seconds(0.1 + 0.01 * k as f64),
                    scale: 1.0 + 0.05 * k as f64,
                })
                .collect(),
        );
        // Truncate refuses a 200-input horizon over a 10-step trace...
        let err = || {
            let platform = Platform::cpu2();
            let stream = InputStream::generate(TaskId::Img2, 200, 7);
            let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
            EpisodeEnv::build(
                &platform,
                &Scenario::replay("R", short.clone(), TraceFit::Truncate),
                &stream,
                &goal,
                99,
            )
        };
        assert!(matches!(err(), Err(EnvError::Script(_))));
        // ...Loop wraps, Stretch resamples with time-rescaling.
        let (looped, _) = setup(Scenario::replay("R", short.clone(), TraceFit::Loop));
        for i in 0..looped.len() {
            assert_eq!(
                looped.period(i).get().to_bits(),
                short.steps()[i % 10].inter_arrival.get().to_bits()
            );
        }
        let (stretched, _) = setup(Scenario::replay("R", short.clone(), TraceFit::Stretch));
        let factor = 10.0 / stretched.len() as f64;
        for i in 0..stretched.len() {
            let j = (i * 10) / stretched.len();
            let expected = short.steps()[j].inter_arrival.get() * factor;
            assert_eq!(stretched.period(i).get().to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn drift_ramp_scales_inputs_multiplicatively() {
        let (drifted, stream) = setup(Scenario::drift_ramp());
        let (base, _) = setup(Scenario::default_env());
        for i in 0..drifted.len() {
            let ratio = drifted.realization(i).scale / base.realization(i).scale;
            assert!(
                (1.0..=1.7 + 1e-9).contains(&ratio),
                "input {i}: drift ratio {ratio}"
            );
        }
        // The tail is fully drifted.
        let last = drifted.realization(stream.len() - 1);
        assert!((last.scale / base.realization(stream.len() - 1).scale - 1.7).abs() < 1e-9);
    }

    #[test]
    fn bursty_arrivals_compress_the_grid_but_conserve_load() {
        let (bursty, _) = setup(Scenario::burst_arrival());
        let (base, _) = setup(Scenario::default_env());
        let n = bursty.len();
        let short = (0..n).filter(|&i| bursty.period(i) < Seconds(0.1)).count();
        assert!(short > 20, "bursts must compress periods, got {short}");
        // Same offered load: total horizon within a cycle's slack.
        let t_b: f64 = (0..n).map(|i| bursty.period(i).get()).sum();
        let t_p: f64 = (0..n).map(|i| base.period(i).get()).sum();
        assert!(
            (t_b - t_p).abs() < 4.0 * 0.2,
            "bursty {t_b} vs periodic {t_p}"
        );
    }

    #[test]
    fn poisson_arrivals_are_irregular_and_frozen() {
        let scenario = Scenario::from_script(
            "AllPoisson",
            ScenarioScript::new().with_arrival(ArrivalProcess::Poisson { rate_scale: 1.0 }),
        );
        let (a, _) = setup(scenario.clone());
        let (b, _) = setup(scenario);
        assert_eq!(a.realizations, b.realizations, "frozen across builds");
        let distinct: std::collections::BTreeSet<u64> =
            (0..a.len()).map(|i| a.period(i).get().to_bits()).collect();
        assert!(distinct.len() > a.len() / 2, "Poisson periods must vary");
    }

    #[test]
    fn compound_stress_composes_both_corunners() {
        let (env, _) = setup(Scenario::compound_stress(5));
        let both: Vec<usize> = (0..env.len())
            .filter(|&i| env.realization(i).mem_active && env.realization(i).cmp_active)
            .collect();
        // With two independent random co-runners some overlap is expected
        // for this seed; the factor there reflects both models.
        assert!(!both.is_empty(), "no overlap for this seed");
        let m = resnet50();
        let i = both[0];
        let f_both = env.env_factor(i, &m);
        let noise = env
            .platform()
            .noise()
            .factor_from_draws(&env.realization(i).noise);
        let f_mem = env
            .platform()
            .contention_model(ContentionKind::Memory)
            .factor_from_draws(&env.realization(i).mem_draws, m.mem_intensity);
        let f_cmp = env
            .platform()
            .contention_model(ContentionKind::Compute)
            .factor_from_draws(&env.realization(i).cmp_draws, m.rho);
        let expected = env.realization(i).scale * noise * f_mem * f_cmp;
        assert!((f_both - expected).abs() < 1e-12);
        // Idle draw includes both extras (below the cap).
        let cap = Watts(100.0);
        let base_idle = env.platform().idle_draw(cap, None);
        let extra_mem = env
            .platform()
            .contention_model(ContentionKind::Memory)
            .idle_draw_extra;
        let extra_cmp = env
            .platform()
            .contention_model(ContentionKind::Compute)
            .idle_draw_extra;
        assert_eq!(
            env.idle_draw(i, cap),
            (base_idle + extra_mem + extra_cmp).min(cap)
        );
    }

    fn hetero_setup(scenario: Scenario) -> EpisodeEnv {
        let platforms = [Platform::cpu2(), Platform::gpu()];
        let stream = InputStream::generate(TaskId::Img2, 200, 7);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        EpisodeEnv::build_hetero(&platforms, &scenario, &stream, &goal, 99, None).expect("valid")
    }

    #[test]
    fn hetero_build_shares_the_frozen_grid_bit_exactly() {
        // The whole point of device-as-counterfactual: adding a GPU must
        // not perturb a single frozen draw of the primary device.
        let (single, _) = setup(Scenario::memory_env(3));
        let hetero = hetero_setup(Scenario::memory_env(3));
        assert_eq!(hetero.device_count(), 2);
        assert_eq!(hetero.platform_on(1).id(), PlatformId::Gpu);
        assert_eq!(single.realizations(), hetero.realizations());
        // No device events scripted → no extra-device ceilings either.
        for i in 0..hetero.len() {
            assert_eq!(hetero.cap_limit_on(1, i), None);
        }
    }

    #[test]
    fn legacy_methods_are_device_zero() {
        let env = hetero_setup(Scenario::compute_env(5));
        let m = resnet50();
        let cap = Watts(100.0);
        for i in [0, 50, 150] {
            assert_eq!(env.effective_cap(i, cap), env.effective_cap_on(0, i, cap));
            assert_eq!(
                env.env_factor(i, &m).to_bits(),
                env.env_factor_on(0, i, &m).to_bits()
            );
            assert_eq!(env.idle_draw(i, cap), env.idle_draw_on(0, i, cap));
            let a = env
                .realize(i, &m, cap, StopPolicy::RunToCompletion)
                .unwrap();
            let b = env
                .realize_on(0, i, &m, cap, StopPolicy::RunToCompletion)
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(
                env.period_energy(i, &m, cap, &a),
                env.period_energy_on(0, i, &m, cap, &b)
            );
        }
    }

    #[test]
    fn gpu_realization_uses_the_gpu_platform() {
        let env = hetero_setup(Scenario::default_env());
        let m = resnet50();
        let gpu_cap = Watts(215.0);
        let r = env
            .realize_on(1, 0, &m, gpu_cap, StopPolicy::RunToCompletion)
            .unwrap();
        let expected = inference::profile_latency(&m, env.platform_on(1), gpu_cap)
            .expect("top GPU cap feasible")
            .get()
            * env.env_factor_on(1, 0, &m);
        assert!((r.latency.get() - expected).abs() < 1e-12);
        // A 215 W request is infeasible on the CPU device — the same
        // call against device 0 reports, proving the platforms differ.
        let err = env.realize_on(0, 0, &m, gpu_cap, StopPolicy::RunToCompletion);
        assert!(matches!(err, Err(EnvError::Power(_))), "{err:?}");
    }

    #[test]
    fn device_cap_steps_bind_to_their_device_only() {
        let scenario = Scenario::from_script(
            "GpuCapCrash",
            ScenarioScript::new().with(ScriptEvent::DeviceCapStep {
                at: 0.5,
                device: 1,
                frac: 0.0,
            }),
        );
        let env = hetero_setup(scenario);
        let (baseline, _) = setup(Scenario::default_env());
        // Device 0's frozen state is untouched by a device-1 event...
        assert_eq!(env.realizations(), baseline.realizations());
        // ...while device 1 is clamped to its range floor from the mark.
        let n = env.len();
        let gpu_min = env.platform_on(1).cap_range().min();
        assert_eq!(env.cap_limit_on(1, 0), None);
        assert_eq!(env.cap_limit_on(1, n - 1), Some(gpu_min));
        assert_eq!(env.effective_cap_on(1, n - 1, Watts(215.0)), gpu_min);
    }

    #[test]
    fn gpu_throttle_binds_to_gpu_backends_only() {
        let steps = 6;
        let scenario = Scenario::from_script(
            "Throttle",
            ScenarioScript::new().with(ScriptEvent::GpuThrottle { at: 0.5, steps }),
        );
        let env = hetero_setup(scenario);
        let (baseline, _) = setup(Scenario::default_env());
        // The CPU device never sees a throttle event.
        assert_eq!(env.realizations(), baseline.realizations());
        let expected = match &env.platform_on(1).spec().response {
            FreqResponse::Table { table, .. } => table.throttled_power(steps),
            FreqResponse::Curve(_) => unreachable!("GPU platform uses a table"),
        };
        let n = env.len();
        assert_eq!(env.cap_limit_on(1, 0), None);
        assert_eq!(env.cap_limit_on(1, n - 1), Some(expected));
        assert!(expected < Watts(215.0), "throttle must lower the ceiling");
    }

    #[test]
    fn device_zero_ceiling_is_the_min_of_global_and_targeted_caps() {
        let scenario = Scenario::from_script(
            "MinCompose",
            ScenarioScript::new()
                .with(ScriptEvent::CapStep { at: 0.0, frac: 0.5 })
                .with(ScriptEvent::DeviceCapStep {
                    at: 0.5,
                    device: 0,
                    frac: 0.0,
                }),
        );
        let (env, _) = setup(scenario);
        let range = env.platform().cap_range();
        let (lo, hi) = (range.min(), range.max());
        let half = Watts(lo.get() + 0.5 * (hi.get() - lo.get()));
        let n = env.len();
        // Before the targeted step the global ceiling rules; after, the
        // tighter targeted ceiling wins the min-composition.
        assert_eq!(env.realization(0).cap_limit, Some(half));
        assert_eq!(env.realization(n - 1).cap_limit, Some(lo));
    }
}
