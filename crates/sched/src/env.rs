//! Episode environment realization.
//!
//! Before an episode runs, every random quantity is drawn once and frozen:
//! per-input latency scale (from the task's input stream), baseline noise
//! primitives, contention primitives, and the co-runner's on/off activity
//! at each dispatch time. Freezing the randomness buys two things the
//! paper's methodology needs:
//!
//! * every scheme in a comparison faces *bit-identical* conditions, and
//! * the Oracle schemes can evaluate **counterfactual** configurations
//!   exactly — "perfect predictions for every input under every DNN/power
//!   setting" (§5.1) — because the environment's effect on any (model,
//!   cap) pair is a deterministic function of the frozen draws.
//!
//! Inputs dispatch on a fixed arrival grid (sensor-style periodic inputs,
//! §2.1), so the co-runner's activity pattern is identical across schemes
//! regardless of their processing latencies.

use alert_models::inference::{self, InferenceResult, StopPolicy};
use alert_models::ModelProfile;
use alert_platform::contention::{ContentionDraws, ContentionKind};
use alert_platform::platform::NoiseDraws;
use alert_platform::Platform;
use alert_stats::rng::stream_rng;
use alert_stats::units::{Joules, Seconds, Watts};
use alert_workload::{Goal, InputStream, Scenario};
use serde::{Deserialize, Serialize};

/// The frozen random state of one input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvRealization {
    /// When this input arrives (fixed grid).
    pub dispatch_time: Seconds,
    /// Period until the next input (idle-energy accounting window).
    pub period: Seconds,
    /// Task-dependent per-input latency scale.
    pub scale: f64,
    /// Whether the co-runner is active at dispatch.
    pub contention_active: bool,
    /// Contention randomness primitives.
    pub contention: ContentionDraws,
    /// Baseline-noise randomness primitives.
    pub noise: NoiseDraws,
}

/// A fully realized episode environment.
#[derive(Debug, Clone)]
pub struct EpisodeEnv {
    platform: Platform,
    kind: Option<ContentionKind>,
    realizations: Vec<EnvRealization>,
}

impl EpisodeEnv {
    /// Builds the environment for `stream` under `scenario` on `platform`.
    ///
    /// The arrival grid uses the goal deadline as the period (periodic
    /// sensor input; for grouped tasks the per-word period equals the
    /// per-word share of the sentence budget).
    pub fn build(
        platform: &Platform,
        scenario: &Scenario,
        stream: &InputStream,
        goal: &Goal,
        seed: u64,
    ) -> Self {
        let mut noise_rng = stream_rng(seed, "episode-noise");
        let mut cont_rng = stream_rng(seed, "episode-contention");
        let mut process = scenario.process();
        let kind = scenario.kind();

        let mut realizations = Vec::with_capacity(stream.len());
        let mut now = Seconds::ZERO;
        for input in stream.inputs() {
            let period = goal.deadline;
            let active = match process.as_mut() {
                None => false,
                Some((_, p)) => p.active_at(now),
            };
            realizations.push(EnvRealization {
                dispatch_time: now,
                period,
                scale: input.scale,
                contention_active: active,
                contention: ContentionDraws::sample(&mut cont_rng),
                noise: NoiseDraws::sample(&mut noise_rng),
            });
            now += period;
        }
        EpisodeEnv {
            platform: platform.clone(),
            kind,
            realizations,
        }
    }

    /// The platform this episode runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The contention kind of the scenario, if any.
    pub fn kind(&self) -> Option<ContentionKind> {
        self.kind
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.realizations.len()
    }

    /// `true` if the episode has no inputs.
    pub fn is_empty(&self) -> bool {
        self.realizations.is_empty()
    }

    /// The frozen state of input `i`.
    pub fn realization(&self, i: usize) -> &EnvRealization {
        &self.realizations[i]
    }

    /// Whether the co-runner is active at input `i`'s dispatch.
    pub fn active(&self, i: usize) -> bool {
        self.realizations[i].contention_active
    }

    /// The idle-accounting period of input `i`.
    pub fn period(&self, i: usize) -> Seconds {
        self.realizations[i].period
    }

    /// The deterministic environment factor input `i` applies to `profile`
    /// (scale × baseline noise × contention inflation).
    pub fn env_factor(&self, i: usize, profile: &ModelProfile) -> f64 {
        let r = &self.realizations[i];
        let mut f = r.scale * self.platform.noise().factor_from_draws(&r.noise);
        if r.contention_active {
            if let Some(kind) = self.kind {
                let sens = match kind {
                    ContentionKind::Memory => profile.mem_intensity,
                    ContentionKind::Compute => profile.rho,
                };
                f *= self
                    .platform
                    .contention_model(kind)
                    .factor_from_draws(&r.contention, sens);
            }
        }
        f
    }

    /// Executes input `i` with `profile` at `cap` under `stop`.
    ///
    /// # Panics
    ///
    /// Panics if the cap is infeasible for the platform (callers pick caps
    /// from [`Platform::power_settings`]).
    pub fn realize(
        &self,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        stop: StopPolicy,
    ) -> InferenceResult {
        let f = self.env_factor(i, profile);
        inference::execute(profile, &self.platform, cap, f, stop)
            .expect("cap from the platform's own settings")
    }

    /// Power drawn while input `i`'s pipeline idles at `cap`.
    pub fn idle_draw(&self, i: usize, cap: Watts) -> Watts {
        let kind = if self.realizations[i].contention_active {
            self.kind
        } else {
            None
        };
        self.platform.idle_draw(cap, kind)
    }

    /// Period energy of input `i` given the chosen profile/cap and the
    /// realized execution.
    pub fn period_energy(
        &self,
        i: usize,
        profile: &ModelProfile,
        cap: Watts,
        result: &InferenceResult,
    ) -> Joules {
        let run_p = inference::run_power(profile, &self.platform, cap);
        let idle_p = self.idle_draw(i, cap);
        let idle_time = Seconds((self.period(i) - result.latency).get().max(0.0));
        run_p * result.latency + idle_p * idle_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_models::zoo::resnet50;
    use alert_workload::TaskId;

    fn setup(scenario: Scenario) -> (EpisodeEnv, InputStream) {
        let platform = Platform::cpu2();
        let stream = InputStream::generate(TaskId::Img2, 200, 7);
        let goal = Goal::minimize_energy(Seconds(0.2), 0.9);
        let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 99);
        (env, stream)
    }

    #[test]
    fn build_is_deterministic() {
        let (a, _) = setup(Scenario::memory_env(3));
        let (b, _) = setup(Scenario::memory_env(3));
        assert_eq!(a.realizations, b.realizations);
    }

    #[test]
    fn default_scenario_never_active() {
        let (env, _) = setup(Scenario::default_env());
        for i in 0..env.len() {
            assert!(!env.active(i));
        }
    }

    #[test]
    fn contention_scenario_has_phases() {
        let (env, _) = setup(Scenario::memory_env(3));
        let active = (0..env.len()).filter(|&i| env.active(i)).count();
        assert!(active > 20, "active inputs: {active}");
        assert!(active < env.len() - 20, "never-off contention");
    }

    #[test]
    fn env_factor_reflects_contention_and_model_sensitivity() {
        let (env, _) = setup(Scenario::memory_env(3));
        let model = resnet50();
        let mut mem_sensitive = model.clone();
        mem_sensitive.mem_intensity = 0.9;
        let mut mem_insensitive = model.clone();
        mem_insensitive.mem_intensity = 0.1;
        let mut sens_sum = 0.0;
        let mut insens_sum = 0.0;
        let mut n = 0;
        for i in 0..env.len() {
            if env.active(i) {
                sens_sum += env.env_factor(i, &mem_sensitive);
                insens_sum += env.env_factor(i, &mem_insensitive);
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(
            sens_sum / n as f64 > insens_sum / n as f64 + 0.3,
            "memory-bound model must suffer more"
        );
    }

    #[test]
    fn realize_matches_env_factor() {
        let (env, _) = setup(Scenario::compute_env(5));
        let m = resnet50();
        let cap = Watts(100.0);
        for i in [0, 50, 150] {
            let r = env.realize(i, &m, cap, StopPolicy::RunToCompletion);
            let expected = inference::profile_latency(&m, env.platform(), cap)
                .unwrap()
                .get()
                * env.env_factor(i, &m);
            assert!((r.latency.get() - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn period_energy_includes_idle() {
        let (env, _) = setup(Scenario::default_env());
        let m = resnet50();
        let cap = Watts(100.0);
        let r = env.realize(0, &m, cap, StopPolicy::RunToCompletion);
        let e = env.period_energy(0, &m, cap, &r);
        let run_only = inference::run_power(&m, env.platform(), cap) * r.latency;
        assert!(e > run_only, "idle energy must be accounted");
    }

    #[test]
    fn counterfactuals_share_randomness() {
        // The same input applies *correlated* conditions to two different
        // models: the oracle property.
        let (env, _) = setup(Scenario::memory_env(3));
        let m1 = resnet50();
        let mut m2 = resnet50();
        m2.ref_latency_s *= 0.5;
        for i in 0..20 {
            let f1 = env.env_factor(i, &m1);
            let f2 = env.env_factor(i, &m2);
            // Same sensitivity → identical factor (scale & draws shared).
            assert!((f1 - f2).abs() < 1e-12);
        }
    }
}
