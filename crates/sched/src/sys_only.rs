//! The Sys-only baseline (paper Table 3, §5.2; reference [63]).
//!
//! "Conducts adaptation only at the system level following an existing
//! resource-management system that minimizes energy under soft real-time
//! constraints [63] and uses the fastest candidate DNN to avoid latency
//! violations." The power controller is CALOREE/POET-style: a Kalman
//! filter tracks the ratio of the pinned model's observed latency to its
//! profile, predicted latencies select the minimum-energy cap that still
//! meets the deadline.
//!
//! Its failure mode is structural: pinned to the fastest (least accurate)
//! DNN, it cannot trade accuracy — it violates accuracy floors in the
//! minimize-energy task and leaves accuracy on the table in the
//! minimize-error task (§5.2: "introduces 34% more error").

use crate::scheduler::{Decision, Feedback, InputContext, Scheduler};
use alert_models::inference::{self, StopPolicy};
use alert_models::{ModelFamily, ModelProfile};
use alert_platform::Platform;
use alert_stats::kalman::ScalarKalman;
use alert_stats::units::{Seconds, Watts};
use alert_workload::{Goal, Objective};

/// Sys-only: fastest traditional DNN + [63]-style power management.
pub struct SysOnly {
    device: usize,
    model: usize,
    profile: ModelProfile,
    caps: Vec<Watts>,
    /// Profiled latency per cap for the pinned model.
    t_prof: Vec<Seconds>,
    /// Measured run power per cap.
    p_run: Vec<Watts>,
    /// Latency-ratio filter (observed / profiled), per [63].
    filter: ScalarKalman,
    /// EWMA of measured idle power.
    idle_est: Watts,
    goal: Goal,
}

impl SysOnly {
    /// The fastest traditional model that fits `platform`, if any.
    fn pin(family: &ModelFamily, platform: &Platform) -> Option<(usize, ModelProfile)> {
        family
            .models()
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_anytime() && platform.supports_footprint(m.footprint_gb))
            .min_by(|(_, a), (_, b)| a.ref_latency_s.total_cmp(&b.ref_latency_s))
            .map(|(i, m)| (i, m.clone()))
    }

    fn assemble(
        device: usize,
        model: usize,
        profile: ModelProfile,
        platform: &Platform,
        goal: Goal,
    ) -> Self {
        let caps = platform.power_settings();
        let t_prof = caps
            .iter()
            // lint:allow(no-panic): caps come from the platform's own setting table, so every cap is feasible
            .map(|&c| inference::profile_latency(&profile, platform, c).expect("feasible"))
            .collect();
        let p_run = caps
            .iter()
            .map(|&c| inference::run_power(&profile, platform, c))
            .collect();
        SysOnly {
            device,
            model,
            profile,
            caps,
            t_prof,
            p_run,
            filter: ScalarKalman::new(1.0, 0.1, 0.01, 0.01),
            idle_est: platform.idle_draw(platform.default_cap(), None),
            goal,
        }
    }

    /// Creates the scheme: pins the fastest *traditional* model that fits.
    ///
    /// # Panics
    ///
    /// Panics if no traditional model fits the platform.
    pub fn new(family: &ModelFamily, platform: &Platform, goal: Goal) -> Self {
        let (model, profile) = Self::pin(family, platform)
            // lint:allow(no-panic): documented panic contract — a baseline without its required model is a setup error
            .expect("Sys-only needs a traditional model that fits the platform");
        Self::assemble(0, model, profile, platform, goal)
    }

    /// Creates the scheme on a heterogeneous node: pins the (device,
    /// model) pair with the fastest profiled latency at each device's top
    /// cap — [63]'s "use the fastest candidate DNN" rule generalized
    /// across backends. The placement is static; the [63]-style power
    /// controller then manages that one device's cap (system-level
    /// adaptation does not re-place work mid-stream).
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is empty or no traditional model fits any of
    /// them.
    pub fn new_placed(family: &ModelFamily, platforms: &[&Platform], goal: Goal) -> Self {
        let mut best: Option<(usize, usize, ModelProfile, Seconds)> = None;
        for (d, platform) in platforms.iter().enumerate() {
            let Some((model, profile)) = Self::pin(family, platform) else {
                continue;
            };
            let top = platform.cap_range().max();
            let t = inference::profile_latency(&profile, platform, top)
                // lint:allow(no-panic): the top of the platform's own cap range is always feasible
                .expect("top cap feasible");
            if best.as_ref().is_none_or(|&(_, _, _, bt)| t < bt) {
                best = Some((d, model, profile, t));
            }
        }
        let (device, model, profile, _) = best
            // lint:allow(no-panic): documented panic contract — a baseline without its required model is a setup error
            .expect("Sys-only needs a traditional model that fits a platform");
        Self::assemble(device, model, profile, platforms[device], goal)
    }

    /// The pinned model's family index.
    pub fn model(&self) -> usize {
        self.model
    }

    /// The pinned device.
    pub fn device(&self) -> usize {
        self.device
    }
}

impl Scheduler for SysOnly {
    fn name(&self) -> &str {
        "Sys-only"
    }

    fn sync_goal(&mut self, goal: &Goal) {
        // [63]-style controllers take requirement updates from the
        // runtime; the model stays pinned (that is the scheme's flaw).
        self.goal = *goal;
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let ratio = self.filter.estimate().max(0.1);
        let mut best: Option<(usize, f64)> = None; // (cap idx, energy)
        let mut fastest: usize = self.caps.len() - 1;
        let mut fastest_t = f64::INFINITY;
        for j in 0..self.caps.len() {
            let t_hat = self.t_prof[j].get() * ratio;
            if t_hat < fastest_t {
                fastest_t = t_hat;
                fastest = j;
            }
            if t_hat > ctx.deadline.get() {
                continue;
            }
            let idle = (ctx.period.get() - t_hat).max(0.0);
            let e =
                self.p_run[j].get() * t_hat + self.idle_est.get().min(self.caps[j].get()) * idle;
            if let Objective::MinimizeError = self.goal.objective {
                if let Some(budget) = self.goal.energy_budget {
                    if e > budget.get() {
                        continue;
                    }
                }
            }
            if best.is_none_or(|(_, cur)| e < cur) {
                best = Some((j, e));
            }
        }
        let j = best.map(|(j, _)| j).unwrap_or(fastest);
        Decision {
            device: self.device,
            model: self.model,
            cap: self.caps[j],
            stop: StopPolicy::RunToCompletion,
        }
    }

    fn observe(&mut self, fb: &Feedback) {
        if let Some(r) = fb.result.observed_slowdown() {
            self.filter.update(r);
        }
        if let Some(p) = fb.idle_power {
            // Simple EWMA — [63] filters latency, not idle power.
            self.idle_est = Watts(0.8 * self.idle_est.get() + 0.2 * p.get());
        }
        let _ = &self.profile;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Joules;

    fn ctx(deadline: f64) -> InputContext {
        InputContext {
            index: 0,
            deadline: Seconds(deadline),
            period: Seconds(deadline),
            group: None,
        }
    }

    #[test]
    fn pins_the_fastest_traditional_model() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.5), 0.9);
        let s = SysOnly::new(&family, &platform, goal);
        assert_eq!(family.models()[s.model()].name, "sparse_resnet_8");
    }

    #[test]
    fn loose_deadline_lowers_power() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(2.0), 0.5);
        let mut s = SysOnly::new(&family, &platform, goal);
        let relaxed = s.decide(&ctx(2.0));
        let mut s2 = SysOnly::new(&family, &platform, goal);
        let tight = s2.decide(&ctx(0.05));
        assert!(
            relaxed.cap <= tight.cap,
            "loose deadline {} vs tight {}",
            relaxed.cap,
            tight.cap
        );
    }

    #[test]
    fn contention_pushes_power_up() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.08), 0.5);
        let mut s = SysOnly::new(&family, &platform, goal);
        let before = s.decide(&ctx(0.08));
        // Feed slow observations: ratio 1.8.
        for _ in 0..20 {
            let result = inference::execute(
                &family.models()[s.model()],
                &platform,
                before.cap,
                1.8,
                StopPolicy::RunToCompletion,
            )
            .unwrap();
            s.observe(&Feedback {
                index: 0,
                decision: before,
                quality: 0.9,
                energy: Joules(1.0),
                idle_power: Some(Watts(5.0)),
                deadline: Seconds(0.08),
                result,
            });
        }
        let after = s.decide(&ctx(0.08));
        assert!(
            after.cap >= before.cap,
            "contention should not lower the cap: {} -> {}",
            before.cap,
            after.cap
        );
    }

    #[test]
    fn impossible_deadline_falls_back_to_fastest_cap() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.0001), 0.5);
        let mut s = SysOnly::new(&family, &platform, goal);
        let d = s.decide(&ctx(0.0001));
        // Fastest profiled latency is at the max cap.
        assert_eq!(d.cap, Watts(45.0));
    }
}
