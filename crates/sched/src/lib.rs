//! Scheduler harness for the ALERT reproduction: the ALERT adapter, every
//! baseline scheme of paper Table 3, the session runtime, and the Table 4
//! experiment driver.
//!
//! * [`scheduler`] — the per-input [`Scheduler`](scheduler::Scheduler)
//!   interface (decide → execute → observe) plus snapshot hooks.
//! * [`env`] — frozen episode environments: identical conditions for every
//!   scheme, exact counterfactuals for the oracles.
//! * [`budget`] — shared (sentence) deadline budgets, applied uniformly to
//!   all schemes by the harness.
//! * [`alert`] — ALERT wired to the simulator (+ Any/Trad/\* variants).
//! * [`oracle`] — the per-input Oracle and the OracleStatic baseline.
//! * [`app_only`], [`sys_only`], [`no_coord`] — the state-of-the-art
//!   comparison points of §5.2.
//! * [`registry`] — the open [`Policy`](registry::Policy) trait and the
//!   string-keyed [`PolicyRegistry`](registry::PolicyRegistry) (all nine
//!   paper schemes pre-registered; external crates add their own).
//! * [`runtime`] — the session runtime: a [`Runtime`](runtime::Runtime)
//!   multiplexing long-lived sessions (`session(spec).open()` /
//!   `submit` / `close`), per-input
//!   [`EpisodeEvent`](runtime::EpisodeEvent) emission,
//!   checkpoint/migration, serde [`RunSpec`](runtime::RunSpec).
//! * [`executor`] — the parallel sharded executor:
//!   [`Runtime::drain_parallel`](runtime::Runtime::drain_parallel) and
//!   the long-lived multi-worker
//!   [`ShardedRuntime`](executor::ShardedRuntime), bit-identical to the
//!   serial drain per session.
//! * [`serving`] — the serving front-end: frozen offered-load storms
//!   replayed against the sharded runtime under an
//!   [`AdmissionPolicy`](serving::AdmissionPolicy) (ALERT-native
//!   belief-driven admit/degrade/shed, plus always-admit and drop-tail
//!   baselines), emitting per-request [`ServingReport`]s
//!   (`alert_workload::ServingReport`) for the saturation-curve bench.
//! * [`telemetry`] — the deterministic observability layer: typed
//!   [`TelemetryEvent`](telemetry::TelemetryEvent)s on the existing
//!   event fan-out, deterministic sampling
//!   ([`SamplingSink`](telemetry::SamplingSink)), metric folding
//!   ([`MetricsCollector`](telemetry::MetricsCollector) over
//!   `alert_stats::telemetry`), and the miss-explanation
//!   [`FlightRecorder`](telemetry::FlightRecorder) — all strictly off
//!   the decision value path, so every bit-identity gate holds with
//!   telemetry enabled.
//! * [`capture`] — trace capture: the
//!   [`TraceRecorder`](capture::TraceRecorder) event sink records live
//!   runtime traffic (serial or sharded) into the versioned
//!   `alert-workload` trace format for later replay as a scenario.
//! * [`harness`] — the resumable per-stream
//!   [`SessionEngine`](harness::SessionEngine) and the one-shot
//!   [`run_episode`](harness::run_episode) adapter.
//! * [`metrics`] — Table 4 normalization, violation superscripts,
//!   harmonic means.
//! * [`experiment`] — the sweep driver, a thin adapter over the runtime.

pub mod alert;
pub mod app_only;
pub mod budget;
pub mod capture;
pub mod env;
pub mod error;
pub mod executor;
pub mod experiment;
pub mod harness;
pub mod metrics;
pub mod no_coord;
pub mod oracle;
pub mod registry;
pub mod runtime;
pub mod scheduler;
pub mod serving;
pub mod sys_only;
pub mod telemetry;

/// One-line import surface for serving-first users: the runtime
/// builders, the session options builder, the serving front-end, the
/// unified [`Error`], and the workload types those APIs speak.
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::executor::ShardedRuntime;
    pub use crate::harness::Episode;
    pub use crate::runtime::{Runtime, RuntimeBuilder, SessionOptions, SessionSpec};
    pub use crate::serving::{
        admission_policy, serve, AdmissionDecision, AdmissionPolicy, AlertAdmission, AlwaysAdmit,
        DropTail, RequestContext, ServingConfig,
    };
    pub use crate::telemetry::{
        AdmissionTelemetry, FlightRecorder, MetricsCollector, SamplingSink, TelemetryConfig,
    };
    pub use alert_workload::{
        generate_storm, AdmissionVerdict, ArrivalProcess, Goal, GoalPatch, RequestArrival,
        RequestOutcome, Scenario, ServingReport, StormSpec,
    };
}

pub use alert::AlertScheduler;
pub use app_only::AppOnly;
pub use budget::BudgetTracker;
pub use capture::TraceRecorder;
pub use env::{EnvError, EnvRealization, EpisodeEnv};
pub use error::Error;
pub use executor::ShardedRuntime;
pub use experiment::{run_cell, run_setting, run_table, ExperimentConfig, FamilyKind, SchemeKind};
pub use harness::{run_episode, Episode, SessionEngine, StepError};
pub use metrics::{objective_report, CellStat, ResultTable};
pub use no_coord::NoCoord;
pub use oracle::{Oracle, OracleStatic};
pub use registry::{FnPolicy, Policy, PolicyContext, PolicyRegistry, RegistryError, UnknownPolicy};
pub use runtime::{
    EpisodeEvent, EventSink, FamilySpec, RunSpec, Runtime, RuntimeBuilder, RuntimeError,
    SessionOptions, SessionSnapshot, SessionSpec,
};
pub use scheduler::{Decision, Feedback, InputContext, Scheduler};
pub use serving::{
    admission_policy, serve, AdmissionDecision, AdmissionPolicy, AlertAdmission, AlwaysAdmit,
    DropTail, RequestContext, ServingConfig,
};
pub use sys_only::SysOnly;
pub use telemetry::{
    AdmissionConstraint, AdmissionCounts, AdmissionEvent, AdmissionProbe, AdmissionTelemetry,
    DecisionEvent, FlightEntry, FlightRecorder, MetricsCollector, SamplingSink, SessionFlight,
    TelemetryConfig, TelemetryEvent,
};
