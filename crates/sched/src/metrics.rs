//! Table 4 accounting: normalization, violation counting, aggregation.
//!
//! Every Table 4 cell averages a scheme's objective value over 35
//! constraint settings, *normalized to OracleStatic*, excluding settings
//! the scheme was disqualified on (>10% of inputs in violation) and
//! counting those as the cell's superscript. The bottom row aggregates
//! cells by harmonic mean.

use alert_models::QualityMetric;
use alert_stats::summary::harmonic_mean;
use alert_workload::{EpisodeSummary, Goal, Objective};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The reported objective value of an episode: joules for the
/// minimize-energy task, error units (error % / perplexity) for the
/// minimize-error task. Lower is better for both.
pub fn objective_report(summary: &EpisodeSummary, goal: &Goal, metric: QualityMetric) -> f64 {
    match goal.objective {
        Objective::MinimizeEnergy => summary.avg_energy.get(),
        Objective::MinimizeError => metric.report(summary.avg_quality),
    }
}

/// One Table 4 cell for one scheme, accumulated over constraint settings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellStat {
    /// Normalized objective ratios of qualified settings.
    ratios: Vec<f64>,
    /// Number of disqualified settings (the table superscript).
    pub violations: usize,
    /// Total settings seen.
    pub settings: usize,
}

impl CellStat {
    /// Adds one setting's outcome.
    ///
    /// `baseline` is OracleStatic's objective value for the same setting;
    /// settings where the baseline itself was disqualified contribute to
    /// neither the average nor the superscript (no meaningful ratio
    /// exists).
    pub fn add(&mut self, summary: &EpisodeSummary, objective_value: f64, baseline: Option<f64>) {
        self.settings += 1;
        if summary.disqualified() {
            self.violations += 1;
            return;
        }
        if let Some(base) = baseline {
            if base > 0.0 && objective_value.is_finite() {
                self.ratios.push(objective_value / base);
            }
        }
    }

    /// Mean normalized objective over qualified settings.
    pub fn mean_ratio(&self) -> Option<f64> {
        if self.ratios.is_empty() {
            None
        } else {
            Some(self.ratios.iter().sum::<f64>() / self.ratios.len() as f64)
        }
    }

    /// Number of qualified settings contributing to the mean.
    pub fn qualified(&self) -> usize {
        self.ratios.len()
    }
}

/// A full table: rows × schemes → cells.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultTable {
    /// `cells[row_label][scheme] = stat`.
    pub cells: BTreeMap<String, BTreeMap<String, CellStat>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable access to one cell, created on demand.
    pub fn cell(&mut self, row: &str, scheme: &str) -> &mut CellStat {
        self.cells
            .entry(row.to_string())
            .or_default()
            .entry(scheme.to_string())
            .or_default()
    }

    /// Harmonic mean of a scheme's cell means across rows (Table 4 bottom
    /// row). Returns `None` when no row has a qualified mean.
    pub fn harmonic_mean_for(&self, scheme: &str) -> Option<f64> {
        let means: Vec<f64> = self
            .cells
            .values()
            .filter_map(|row| row.get(scheme))
            .filter_map(|c| c.mean_ratio())
            .collect();
        if means.is_empty() {
            None
        } else {
            harmonic_mean(&means)
        }
    }

    /// All scheme names appearing in the table.
    pub fn schemes(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .cells
            .values()
            .flat_map(|row| row.keys().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Renders the table as aligned text (one line per row label).
    pub fn render(&self) -> String {
        let schemes = self.schemes();
        let mut out = String::new();
        out.push_str(&format!("{:<38}", "row"));
        for s in &schemes {
            out.push_str(&format!("{s:>16}"));
        }
        out.push('\n');
        for (row, cells) in &self.cells {
            out.push_str(&format!("{row:<38}"));
            for s in &schemes {
                match cells.get(s) {
                    Some(c) => {
                        let txt = match c.mean_ratio() {
                            Some(m) if c.violations > 0 => {
                                format!("{m:.2}({})", c.violations)
                            }
                            Some(m) => format!("{m:.2}"),
                            None => format!("--({})", c.violations),
                        };
                        out.push_str(&format!("{txt:>16}"));
                    }
                    None => out.push_str(&format!("{:>16}", "-")),
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<38}", "harmonic mean"));
        for s in &schemes {
            match self.harmonic_mean_for(s) {
                Some(h) => out.push_str(&format!("{h:>16.2}")),
                None => out.push_str(&format!("{:>16}", "-")),
            }
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::{Joules, Seconds};

    fn summary(violation_rate: f64, energy: f64, quality: f64) -> EpisodeSummary {
        EpisodeSummary {
            measured: 100,
            violations: (violation_rate * 100.0) as usize,
            avg_energy: Joules(energy),
            avg_quality: quality,
            avg_latency: Seconds(0.1),
            deadline_miss_rate: 0.0,
            quality_floor_met: true,
            overhead: Seconds::ZERO,
        }
    }

    #[test]
    fn objective_report_units() {
        let s = summary(0.0, 12.5, 0.93);
        let g_e = Goal::minimize_energy(Seconds(0.1), 0.9);
        assert_eq!(
            objective_report(&s, &g_e, QualityMetric::Top5Accuracy),
            12.5
        );
        let g_q = Goal::minimize_error(Seconds(0.1), Joules(5.0));
        let err = objective_report(&s, &g_q, QualityMetric::Top5Accuracy);
        assert!((err - 7.0).abs() < 1e-9);
        // Perplexity metric.
        let s = summary(0.0, 12.5, -120.0);
        assert_eq!(objective_report(&s, &g_q, QualityMetric::Perplexity), 120.0);
    }

    #[test]
    fn cellstat_accumulates_and_disqualifies() {
        let mut c = CellStat::default();
        c.add(&summary(0.0, 10.0, 0.9), 10.0, Some(20.0));
        c.add(&summary(0.0, 30.0, 0.9), 30.0, Some(20.0));
        c.add(&summary(0.5, 99.0, 0.9), 99.0, Some(20.0)); // disqualified
        assert_eq!(c.settings, 3);
        assert_eq!(c.violations, 1);
        assert_eq!(c.qualified(), 2);
        assert!((c.mean_ratio().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_baseline_skips_ratio() {
        let mut c = CellStat::default();
        c.add(&summary(0.0, 10.0, 0.9), 10.0, None);
        assert_eq!(c.settings, 1);
        assert_eq!(c.qualified(), 0);
        assert!(c.mean_ratio().is_none());
    }

    #[test]
    fn table_harmonic_mean() {
        let mut t = ResultTable::new();
        t.cell("row1", "ALERT")
            .add(&summary(0.0, 1.0, 0.9), 5.0, Some(10.0)); // ratio 0.5
        t.cell("row2", "ALERT")
            .add(&summary(0.0, 1.0, 0.9), 10.0, Some(10.0)); // ratio 1.0
        let hm = t.harmonic_mean_for("ALERT").unwrap();
        assert!((hm - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_contains_rows_and_schemes() {
        let mut t = ResultTable::new();
        t.cell("CPU1/img/Default", "ALERT")
            .add(&summary(0.0, 1.0, 0.9), 6.4, Some(10.0));
        t.cell("CPU1/img/Default", "Sys-only")
            .add(&summary(0.2, 1.0, 0.9), 6.4, Some(10.0));
        let txt = t.render();
        assert!(txt.contains("CPU1/img/Default"));
        assert!(txt.contains("ALERT"));
        assert!(txt.contains("Sys-only"));
        assert!(txt.contains("0.64"));
        assert!(txt.contains("--(1)"), "disqualified cell: {txt}");
        assert!(txt.contains("harmonic mean"));
    }
}
