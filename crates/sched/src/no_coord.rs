//! The No-coordination baseline (paper Table 3, §5.2).
//!
//! "Uses both the Anytime DNN for application-level adaptation and the
//! power-management scheme [63] to adapt power, but with these two working
//! independently." Each level keeps a private estimator and a private
//! world-model:
//!
//! * the **application** adapter picks the anytime *target stage* whose
//!   completion it predicts to fit the deadline — but its latency model
//!   assumes the *default power setting*, because it has no idea the
//!   system level exists;
//! * the **system** adapter picks the minimum-energy cap whose predicted
//!   latency fits the deadline — extrapolating from the *last observed
//!   latency*, with no idea which stage the application will target next.
//!
//! The two "can work at cross purposes; e.g., the application switches to
//! a faster DNN to save energy while the system makes more power
//! available" (§5.2) — the classic uncoordinated-controllers pathology
//! ALERT's joint selection exists to avoid.

use crate::scheduler::{Decision, Feedback, InputContext, Scheduler};
use alert_models::inference::{self, StopPolicy};
use alert_models::{ModelFamily, ModelProfile};
use alert_platform::Platform;
use alert_stats::kalman::ScalarKalman;
use alert_stats::units::{Seconds, Watts};
use alert_workload::{Goal, Objective};

/// No-coord: independent app-level and sys-level adaptation.
pub struct NoCoord {
    device: usize,
    model: usize,
    profile: ModelProfile,
    caps: Vec<Watts>,
    t_prof: Vec<Seconds>,
    p_run: Vec<Watts>,
    /// App-level slowdown filter, *relative to the default-cap profile*.
    app_filter: ScalarKalman,
    /// Sys-level latency filter (absolute seconds of the last executions).
    sys_filter: ScalarKalman,
    /// Index of the default cap in `caps`.
    default_idx: usize,
    /// Cap index chosen on the previous input (sys-level memory).
    last_cap_idx: usize,
    idle_est: Watts,
    goal: Goal,
}

impl NoCoord {
    /// The family's first anytime model that fits `platform`, if any.
    fn pin(family: &ModelFamily, platform: &Platform) -> Option<(usize, ModelProfile)> {
        family
            .models()
            .iter()
            .enumerate()
            .find(|(_, m)| m.is_anytime() && platform.supports_footprint(m.footprint_gb))
            .map(|(i, m)| (i, m.clone()))
    }

    /// Creates the scheme around the family's anytime model.
    ///
    /// # Panics
    ///
    /// Panics if the family has no anytime model that fits the platform.
    pub fn new(family: &ModelFamily, platform: &Platform, goal: Goal) -> Self {
        let (model, profile) = Self::pin(family, platform)
            // lint:allow(no-panic): documented panic contract — a baseline without its required model is a setup error
            .expect("No-coord needs an anytime model that fits the platform");
        Self::assemble(0, model, profile, platform, goal)
    }

    /// Creates the scheme on a heterogeneous node: homes the anytime
    /// model on the device where its full run is fastest at that device's
    /// top cap. Like [`crate::sys_only::SysOnly::new_placed`], the
    /// placement is static — neither uncoordinated level re-places work.
    ///
    /// # Panics
    ///
    /// Panics if `platforms` is empty or no anytime model fits any of
    /// them.
    pub fn new_placed(family: &ModelFamily, platforms: &[&Platform], goal: Goal) -> Self {
        let mut best: Option<(usize, usize, ModelProfile, Seconds)> = None;
        for (d, platform) in platforms.iter().enumerate() {
            let Some((model, profile)) = Self::pin(family, platform) else {
                continue;
            };
            let top = platform.cap_range().max();
            let t = inference::profile_latency(&profile, platform, top)
                // lint:allow(no-panic): the top of the platform's own cap range is always feasible
                .expect("top cap feasible");
            if best.as_ref().is_none_or(|&(_, _, _, bt)| t < bt) {
                best = Some((d, model, profile, t));
            }
        }
        let (device, model, profile, _) = best
            // lint:allow(no-panic): documented panic contract — a baseline without its required model is a setup error
            .expect("No-coord needs an anytime model that fits a platform");
        Self::assemble(device, model, profile, platforms[device], goal)
    }

    /// The pinned device.
    pub fn device(&self) -> usize {
        self.device
    }

    fn assemble(
        device: usize,
        model: usize,
        profile: ModelProfile,
        platform: &Platform,
        goal: Goal,
    ) -> Self {
        let caps = platform.power_settings();
        let t_prof: Vec<Seconds> = caps
            .iter()
            // lint:allow(no-panic): caps come from the platform's own setting table, so every cap is feasible
            .map(|&c| inference::profile_latency(&profile, platform, c).expect("feasible"))
            .collect();
        let p_run = caps
            .iter()
            .map(|&c| inference::run_power(&profile, platform, c))
            .collect();
        let default_idx = caps.len() - 1;
        NoCoord {
            device,
            model,
            profile,
            caps,
            t_prof,
            p_run,
            app_filter: ScalarKalman::new(1.0, 0.1, 0.01, 0.01),
            sys_filter: ScalarKalman::new(0.0, 1.0, 0.01, 0.01),
            default_idx,
            last_cap_idx: default_idx,
            idle_est: platform.idle_draw(platform.default_cap(), None),
            goal,
        }
    }
}

impl Scheduler for NoCoord {
    fn name(&self) -> &str {
        "No-coord"
    }

    fn sync_goal(&mut self, goal: &Goal) {
        // Both uncoordinated levels see the new requirement — their
        // pathology is coordination, not awareness.
        self.goal = *goal;
    }

    fn decide(&mut self, ctx: &InputContext) -> Decision {
        let stages = self
            .profile
            .anytime
            .as_ref()
            // lint:allow(no-panic): new() selects an anytime member, so the profile always carries stages
            .expect("anytime model")
            .stages();

        // --- Application level: target the deepest stage whose completion
        // fits the deadline, predicted against the *default cap* profile.
        let app_ratio = self.app_filter.estimate().max(0.1);
        let t_full_default = self.t_prof[self.default_idx].get() * app_ratio;
        let mut target = 0usize;
        for (k, s) in stages.iter().enumerate() {
            if t_full_default * s.frac <= ctx.deadline.get() {
                target = k;
            }
        }

        // --- System level: pick the cheapest cap whose predicted latency
        // fits the deadline, extrapolating the last observed latency by
        // the profile's cap-to-cap ratios, with no knowledge of `target`.
        let last_t = self.sys_filter.estimate();
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.caps.len() {
            let scale = self.t_prof[j].get() / self.t_prof[self.last_cap_idx].get();
            let t_hat = if last_t > 0.0 {
                last_t * scale
            } else {
                self.t_prof[j].get()
            };
            if t_hat > ctx.deadline.get() {
                continue;
            }
            let idle = (ctx.period.get() - t_hat).max(0.0);
            let e =
                self.p_run[j].get() * t_hat + self.idle_est.get().min(self.caps[j].get()) * idle;
            if let Objective::MinimizeError = self.goal.objective {
                if let Some(budget) = self.goal.energy_budget {
                    if e > budget.get() {
                        continue;
                    }
                }
            }
            if best.is_none_or(|(_, cur)| e < cur) {
                best = Some((j, e));
            }
        }
        let j = best.map(|(j, _)| j).unwrap_or(self.default_idx);
        self.last_cap_idx = j;

        Decision {
            device: self.device,
            model: self.model,
            cap: self.caps[j],
            stop: StopPolicy::AtTimeOrStage(ctx.deadline, target),
        }
    }

    fn observe(&mut self, fb: &Feedback) {
        // App level: interprets latency relative to the *default-cap*
        // profile of the fraction it ran — cap effects masquerade as
        // environment slowdown (the miscoordination).
        if fb.result.profile_equivalent.get() > 0.0 {
            let frac_prof_default = self.t_prof[self.default_idx].get()
                * (fb.result.profile_equivalent.get() / self.t_prof[self.last_cap_idx].get());
            if frac_prof_default > 0.0 {
                self.app_filter
                    .update(fb.result.latency.get() / frac_prof_default);
            }
        }
        // Sys level: filters raw latency.
        self.sys_filter.update(fb.result.latency.get());
        if let Some(p) = fb.idle_power {
            self.idle_est = Watts(0.8 * self.idle_est.get() + 0.2 * p.get());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Joules;

    fn ctx(deadline: f64) -> InputContext {
        InputContext {
            index: 0,
            deadline: Seconds(deadline),
            period: Seconds(deadline),
            group: None,
        }
    }

    #[test]
    fn uses_anytime_model() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.5), 0.9);
        let mut s = NoCoord::new(&family, &platform, goal);
        let d = s.decide(&ctx(0.5));
        assert!(family.models()[d.model].is_anytime());
    }

    #[test]
    fn levels_fight_under_low_power() {
        // Once the sys level lowers the cap, execution slows; the app
        // level (blind to the cap) reads that as environmental slowdown
        // and cuts its stage target although time was available.
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let goal = Goal::minimize_energy(Seconds(0.9), 0.9);
        let mut s = NoCoord::new(&family, &platform, goal);
        let mut stage_targets = Vec::new();
        let mut d = s.decide(&ctx(0.9));
        for i in 0..20 {
            let profile = &family.models()[d.model];
            // Environment at profile speed — any slowdown the app sees is
            // purely self-inflicted by the sys level's cap choice.
            let result =
                alert_models::inference::execute(profile, &platform, d.cap, 1.0, d.stop).unwrap();
            if let StopPolicy::AtTimeOrStage(_, k) = d.stop {
                stage_targets.push(k);
            }
            s.observe(&Feedback {
                index: i,
                decision: d,
                quality: 0.9,
                energy: Joules(1.0),
                idle_power: Some(Watts(6.0)),
                deadline: Seconds(0.9),
                result,
            });
            d = s.decide(&ctx(0.9));
        }
        // The sys level dropped the cap below default at some point.
        // (Deadline 0.9 s is loose: plenty of room to save energy.)
        assert!(s.last_cap_idx < s.default_idx, "cap never dropped");
        // And the app level's perceived ratio drifted above 1 even though
        // the true environment factor was exactly 1.0 — the signature of
        // uncoordinated adaptation.
        assert!(
            s.app_filter.estimate() > 1.2,
            "app-level ratio: {}",
            s.app_filter.estimate()
        );
        let _ = stage_targets;
    }
}
