//! Figure 9 — reaction trace: ALERT vs ALERT-Trad through a scripted
//! memory-contention window (minimize error under latency + energy
//! constraints @ CPU1).
//!
//! Paper behaviour to reproduce:
//! * in quiet phases both run the biggest traditional DNN,
//! * when contention hits, ALERT switches to the anytime network at a
//!   lower cap and keeps accuracy high; ALERT-Trad must retreat to small
//!   traditional models and loses more accuracy,
//! * both switch back after the window ends.
//!
//! Setup per the paper's caption: deadline = 1.25× mean latency of the
//! largest anytime DNN (default environment), power limit 35 W, memory
//! contention roughly between inputs 46 and 119.

use alert_bench::{banner, csv_header, csv_row, f, write_json};
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::env::EpisodeEnv;
use alert_sched::harness::run_episode;
use alert_sched::AlertScheduler;
use alert_stats::units::Watts;
use alert_workload::constraints::deadline_unit;
use alert_workload::{Goal, InputStream, Scenario, TaskId};

fn main() {
    banner(
        "Figure 9",
        "Minimize error w/ latency+energy constraints @ CPU1, scripted memory window",
    );
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();
    let unit = deadline_unit(&family, &platform);
    let deadline = unit * 1.25;
    let budget = Watts(35.0) * deadline;
    let goal = Goal::minimize_error(deadline, budget);
    let n = 170;
    let stream = InputStream::generate(TaskId::Img2, n, 9);
    // Contention from input ~46 to ~119 on the fixed dispatch grid.
    let scenario = Scenario::scripted_memory_window(deadline * 46.0, deadline * 119.0);
    let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 2020).expect("valid");

    let mut alert = AlertScheduler::standard(&family, &platform, goal).expect("paper family fits");
    let ep_alert = run_episode(&mut alert, &env, &family, &stream, &goal).expect("episode");
    let mut trad =
        AlertScheduler::traditional_only(&family, &platform, goal).expect("paper family fits");
    let ep_trad = run_episode(&mut trad, &env, &family, &stream, &goal).expect("episode");

    csv_header(&[
        "input",
        "contention",
        "alert_model",
        "alert_cap_w",
        "alert_latency_s",
        "alert_acc_pct",
        "trad_model",
        "trad_cap_w",
        "trad_latency_s",
        "trad_acc_pct",
    ]);
    for i in 0..n {
        let a = &ep_alert.records[i];
        let t = &ep_trad.records[i];
        csv_row(&[
            i.to_string(),
            (if env.active(i) { "1" } else { "0" }).to_string(),
            a.model.clone(),
            f(a.cap.get(), 1),
            f(a.latency.get(), 4),
            f(a.quality * 100.0, 2),
            t.model.clone(),
            f(t.cap.get(), 1),
            f(t.latency.get(), 4),
            f(t.quality * 100.0, 2),
        ]);
    }

    // Phase analysis.
    let phase = |records: &[alert_workload::InputRecord], from: usize, to: usize| {
        let slice = &records[from..to];
        let anytime = slice.iter().filter(|r| r.model.contains("anytime")).count();
        let acc = slice.iter().map(|r| r.quality).sum::<f64>() / slice.len() as f64 * 100.0;
        let cap = slice.iter().map(|r| r.cap.get()).sum::<f64>() / slice.len() as f64;
        (anytime as f64 / slice.len() as f64, acc, cap)
    };
    println!("\nphase summary (fraction anytime, avg accuracy %, avg cap W):");
    for (label, lo, hi) in [
        ("quiet before (20..45)", 20, 45),
        ("contention  (50..115)", 50, 115),
        ("quiet after (125..165)", 125, 165),
    ] {
        let (fa, qa, ca) = phase(&ep_alert.records, lo, hi);
        let (ft, qt, ct) = phase(&ep_trad.records, lo, hi);
        println!(
            "  {label:<24} ALERT: any={} acc={} cap={} | ALERT-Trad: any={} acc={} cap={}",
            f(fa, 2),
            f(qa, 2),
            f(ca, 1),
            f(ft, 2),
            f(qt, 2),
            f(ct, 1)
        );
    }
    let (_, acc_alert, _) = phase(&ep_alert.records, 50, 115);
    let (_, acc_trad, _) = phase(&ep_trad.records, 50, 115);
    println!(
        "\nALERT accuracy under contention exceeds ALERT-Trad by {} points (paper: clearly higher)",
        f(acc_alert - acc_trad, 2)
    );

    write_json(
        "fig9.json",
        &serde_json::json!({
            "alert": ep_alert.records,
            "alert_trad": ep_trad.records,
        }),
    );
}
