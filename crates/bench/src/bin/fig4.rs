//! Figure 4: per-input latency variance of the four tasks across
//! platforms, without co-located jobs (boxplots: 25–75% box, 10/90%
//! whiskers).
//!
//! Paper observations to reproduce:
//! * no single task meets all deadlines on all hardware,
//! * input variance is small except NLP1 (driven by input lengths),
//! * the Embedded board only fits NLP1 (everything else OOMs).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_models::inference;
use alert_platform::Platform;
use alert_stats::rng::stream_rng;
use alert_stats::summary::five_number;
use alert_workload::TaskId;

/// Collects per-input latencies of `task` on `platform` at default power,
/// no contention. Returns `None` when the model does not fit.
pub fn latencies(task: TaskId, platform: &Platform, n: usize, seed: u64) -> Option<Vec<f64>> {
    let model = task.reference_model();
    if !platform.supports_footprint(model.footprint_gb) {
        return None;
    }
    let cap = platform.default_cap();
    let base = inference::profile_latency(&model, platform, cap)
        .expect("feasible")
        .get();
    let mut rng = stream_rng(seed, &format!("fig4-{task}-{}", platform.id()));
    Some(
        (0..n)
            .map(|_| base * task.sample_scale(&mut rng) * platform.noise().sample(&mut rng))
            .collect(),
    )
}

fn main() {
    banner(
        "Figure 4",
        "Latency variance across inputs, per task and platform (no co-located jobs)",
    );
    csv_header(&[
        "task", "platform", "p10_s", "p25_s", "median_s", "p75_s", "p90_s",
    ]);
    for task in TaskId::ALL {
        for platform in Platform::all() {
            match latencies(task, &platform, 3000, 2020) {
                None => println!("{task} on {}: out of memory (skipped)", platform.id()),
                Some(xs) => {
                    let s = five_number(&xs).expect("non-empty");
                    csv_row(&[
                        task.to_string(),
                        platform.id().to_string(),
                        f(s.p10, 4),
                        f(s.p25, 4),
                        f(s.p50, 4),
                        f(s.p75, 4),
                        f(s.p90, 4),
                    ]);
                }
            }
        }
    }
    println!("\nobservations (paper §2.2):");
    let cpu1 = Platform::cpu1();
    let img = latencies(TaskId::Img2, &cpu1, 3000, 2020).unwrap();
    let nlp = latencies(TaskId::Nlp1, &cpu1, 3000, 2020).unwrap();
    let cv = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        v.sqrt() / m
    };
    println!("  IMG2 cv on CPU1: {} (small)", f(cv(&img), 3));
    println!(
        "  NLP1 cv on CPU1: {} (large, input-length driven)",
        f(cv(&nlp), 3)
    );
    let emb = Platform::embedded();
    println!(
        "  Embedded runs NLP1 only: {}",
        TaskId::ALL
            .iter()
            .filter(|t| latencies(**t, &emb, 10, 1).is_some())
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
}
