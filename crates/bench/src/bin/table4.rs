//! Table 4 — the headline evaluation: average energy (minimize-energy
//! task) and error (minimize-error task) normalized to OracleStatic, for
//! every scheme × platform × workload × environment. Superscripts count
//! constraint settings with >10% violations (excluded from the average).
//!
//! Shape checks against the paper:
//! * ALERT and ALERT-Any land close to the dynamic Oracle (93–99%),
//! * both beat OracleStatic clearly on both objectives,
//! * Sys-only piles up accuracy violations, App-only burns energy,
//!   No-coord combines the worst of both.
//!
//! Usage: `table4 [n_inputs] [seed]` (defaults 300, 2020).

use alert_bench::{banner, write_json};
use alert_sched::{run_table, ExperimentConfig, SchemeKind};
use alert_workload::Objective;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let config = ExperimentConfig {
        n_inputs,
        seed,
        ..Default::default()
    };

    banner(
        "Table 4",
        "Energy / error normalized to OracleStatic (smaller is better; (n) = violating settings)",
    );
    println!(
        "[{} inputs per episode, seed {seed}, {} threads]\n",
        config.n_inputs, config.threads
    );

    println!("--- Minimize Energy task: normalized average energy ---");
    let energy_table = run_table(Objective::MinimizeEnergy, &SchemeKind::TABLE4, &config);
    print!("{}", energy_table.render());

    println!("\n--- Minimize Error task: normalized average error ---");
    let error_table = run_table(Objective::MinimizeError, &SchemeKind::TABLE4, &config);
    print!("{}", error_table.render());

    write_json(
        "table4.json",
        &serde_json::json!({
            "config": config,
            "minimize_energy": energy_table,
            "minimize_error": error_table,
        }),
    );

    // Headline shape checks.
    println!("\nshape checks vs paper:");
    for (name, table) in [("energy", &energy_table), ("error", &error_table)] {
        let alert = table.harmonic_mean_for("ALERT");
        let oracle = table.harmonic_mean_for("Oracle");
        if let (Some(a), Some(o)) = (alert, oracle) {
            println!(
                "  {name}: ALERT hm {:.2}, Oracle hm {:.2} -> ALERT within {:.0}% of Oracle (paper: 93-99%)",
                a,
                o,
                100.0 * o / a
            );
        }
        for scheme in ["ALERT-Any", "Sys-only", "App-only", "No-coord"] {
            if let Some(h) = table.harmonic_mean_for(scheme) {
                println!("  {name}: {scheme} harmonic mean {h:.2}");
            }
        }
    }
}
