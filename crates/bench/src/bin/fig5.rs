//! Figure 5: per-input latency variance *with co-located jobs*
//! (memory-intensive STREAM analogue on CPUs, Backprop analogue on GPU).
//!
//! Paper observation to reproduce: the co-runner raises the median, the
//! tail, *and* the spread between them, on every task and platform.

use alert_bench::{banner, csv_header, csv_row, f};
use alert_models::inference;
use alert_platform::contention::ContentionKind;
use alert_platform::Platform;
use alert_stats::rng::stream_rng;
use alert_stats::summary::five_number;
use alert_workload::TaskId;

fn contended_latencies(task: TaskId, platform: &Platform, n: usize, seed: u64) -> Option<Vec<f64>> {
    let model = task.reference_model();
    if !platform.supports_footprint(model.footprint_gb) {
        return None;
    }
    let cap = platform.default_cap();
    let base = inference::profile_latency(&model, platform, cap)
        .expect("feasible")
        .get();
    let kind = ContentionKind::Memory;
    let cmodel = platform.contention_model(kind);
    let sens = model.mem_intensity;
    let mut rng = stream_rng(seed, &format!("fig5-{task}-{}", platform.id()));
    Some(
        (0..n)
            .map(|_| {
                base * task.sample_scale(&mut rng)
                    * platform.noise().sample(&mut rng)
                    * cmodel.sample_factor(&mut rng, sens)
            })
            .collect(),
    )
}

fn main() {
    banner(
        "Figure 5",
        "Latency variance with co-located jobs (STREAM on CPUs / Backprop on GPU)",
    );
    csv_header(&[
        "task", "platform", "p10_s", "p25_s", "median_s", "p75_s", "p90_s",
    ]);
    for task in TaskId::ALL {
        for platform in Platform::all() {
            if let Some(xs) = contended_latencies(task, &platform, 3000, 2020) {
                let s = five_number(&xs).expect("non-empty");
                csv_row(&[
                    task.to_string(),
                    platform.id().to_string(),
                    f(s.p10, 4),
                    f(s.p25, 4),
                    f(s.p50, 4),
                    f(s.p75, 4),
                    f(s.p90, 4),
                ]);
            }
        }
    }

    println!("\ncontended vs quiet medians and tails (IMG2 @ CPU1):");
    let platform = Platform::cpu1();
    let model = TaskId::Img2.reference_model();
    let cap = platform.default_cap();
    let base = inference::profile_latency(&model, &platform, cap)
        .unwrap()
        .get();
    let mut rng = stream_rng(2020, "fig5-compare");
    let quiet: Vec<f64> = (0..3000)
        .map(|_| base * TaskId::Img2.sample_scale(&mut rng) * platform.noise().sample(&mut rng))
        .collect();
    let contended = contended_latencies(TaskId::Img2, &platform, 3000, 2020).unwrap();
    let q = five_number(&quiet).unwrap();
    let c = five_number(&contended).unwrap();
    println!(
        "  quiet    : median {} s, p90 {} s",
        f(q.p50, 4),
        f(q.p90, 4)
    );
    println!(
        "  contended: median {} s, p90 {} s",
        f(c.p50, 4),
        f(c.p90, 4)
    );
    println!(
        "  median grew {}x, tail grew {}x, spread grew {}x (paper: all grow)",
        f(c.p50 / q.p50, 2),
        f(c.p90 / q.p90, 2),
        f((c.p90 - c.p50) / (q.p90 - q.p50).max(1e-12), 2)
    );
}
