//! Figure 8 — ALERT vs Oracle vs OracleStatic on the minimize-energy
//! task: whole-range whiskers (min / mean / max of average energy across
//! the 35 constraint settings) for CPU1 and CPU2 × both workloads × all
//! three environments.
//!
//! Paper shape: ALERT's whole range tracks Oracle closely; OracleStatic
//! has both the worst mean and the worst tail.
//!
//! Usage: `fig8 [n_inputs] [seed]` (defaults 250, 2020).

use alert_bench::{banner, csv_header, csv_row, f, write_json};
use alert_platform::{Platform, PlatformId};
use alert_sched::{run_cell, ExperimentConfig, FamilyKind, SchemeKind};
use alert_workload::{Objective, Scenario};

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(250);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let config = ExperimentConfig {
        n_inputs,
        seed,
        ..Default::default()
    };
    banner(
        "Figure 8",
        "ALERT vs Oracle vs OracleStatic on minimize-energy (whisker: range over settings)",
    );
    let schemes = [
        SchemeKind::OracleStatic,
        SchemeKind::Alert,
        SchemeKind::Oracle,
    ];
    csv_header(&[
        "platform", "workload", "env", "scheme", "min_j", "mean_j", "max_j",
    ]);
    let mut rows = Vec::new();
    for pid in [PlatformId::Cpu1, PlatformId::Cpu2] {
        let platform = Platform::by_id(pid);
        for fam in [FamilyKind::Image, FamilyKind::Sentence] {
            for scenario in Scenario::table3(seed) {
                let outcomes = run_cell(
                    Objective::MinimizeEnergy,
                    fam,
                    &platform,
                    &scenario,
                    &schemes,
                    &config,
                );
                for kind in schemes {
                    let name = kind.name();
                    let energies: Vec<f64> = outcomes
                        .iter()
                        .flat_map(|o| o.episodes.iter())
                        .filter(|e| e.scheme == name && !e.summary.disqualified())
                        .map(|e| e.summary.avg_energy.get())
                        .collect();
                    if energies.is_empty() {
                        continue;
                    }
                    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
                    let max = energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
                    csv_row(&[
                        pid.to_string(),
                        fam.label().to_string(),
                        scenario.name().to_string(),
                        name.to_string(),
                        f(min, 2),
                        f(mean, 2),
                        f(max, 2),
                    ]);
                    rows.push(serde_json::json!({
                        "platform": pid.to_string(),
                        "workload": fam.label(),
                        "env": scenario.name(),
                        "scheme": name,
                        "min": min, "mean": mean, "max": max,
                    }));
                }
            }
        }
    }
    write_json("fig8.json", &rows);
}
