//! Figure 7 — result summary: per-scheme average normalized performance
//! and the percentage of constraint settings violated (>10% of inputs),
//! for both objectives. This is the bar-chart view of Table 4.
//!
//! Usage: `fig7 [n_inputs] [seed]` (defaults 200, 2020 — slightly lighter
//! than table4 since only aggregates are reported).

use alert_bench::{banner, csv_header, csv_row, f, write_json};
use alert_sched::{run_table, ExperimentConfig, SchemeKind};
use alert_workload::Objective;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let config = ExperimentConfig {
        n_inputs,
        seed,
        ..Default::default()
    };
    banner(
        "Figure 7",
        "Summary: normalized performance + violation% per scheme (vs OracleStatic)",
    );

    let mut out = serde_json::Map::new();
    for (label, objective) in [
        ("minimize_energy", Objective::MinimizeEnergy),
        ("minimize_error", Objective::MinimizeError),
    ] {
        let table = run_table(objective, &SchemeKind::TABLE4, &config);
        println!("\n--- {label} ---");
        csv_header(&["scheme", "normalized_perf", "violation_pct"]);
        let mut section = serde_json::Map::new();
        for scheme in table.schemes() {
            let hm = table.harmonic_mean_for(&scheme);
            // Violation%: fraction of (row, setting) combinations the
            // scheme was disqualified on.
            let (viol, total): (usize, usize) = table
                .cells
                .values()
                .filter_map(|row| row.get(&scheme))
                .fold((0, 0), |(v, t), c| (v + c.violations, t + c.settings));
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * viol as f64 / total as f64
            };
            csv_row(&[
                scheme.clone(),
                hm.map_or("-".into(), |h| f(h, 2)),
                f(pct, 1),
            ]);
            section.insert(
                scheme.clone(),
                serde_json::json!({"harmonic_mean": hm, "violation_pct": pct}),
            );
        }
        out.insert(label.to_string(), serde_json::Value::Object(section));
    }
    write_json("fig7.json", &serde_json::Value::Object(out));

    println!("\npaper shape: ALERT/ALERT-Any lowest bars and near-zero violations;");
    println!("Sys-only violates accuracy heavily (min-energy task); App-only and");
    println!("No-coord carry both higher bars and more violations.");
}
