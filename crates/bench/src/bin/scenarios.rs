//! The scheme × scenario matrix: every registered paper scheme against
//! the full named-scenario library (`Scenario::library`) — the paper's
//! three environments plus cap-storm, goal-flip, floor-raise,
//! drift-ramp, burst/Poisson arrivals, session churn, and compound
//! stress. Written
//! to `BENCH_scenarios.json` at the workspace root; CI runs a short grid
//! and gates on it.
//!
//! Three guarantees are asserted *inside* the bench (it aborts on the
//! first violation):
//!
//! * **Frozen-environment bit-identity** — for every cell, the
//!   environment is rebuilt from (scenario, stream, goal, seed) and its
//!   realizations compared wholesale against the shared reference env,
//!   so every scheme of a scenario row provably faced bit-identical
//!   conditions (including through cap/goal phase boundaries).
//! * **Cell completeness** — the matrix has one result per
//!   scheme × scenario pair.
//! * **Churn isolation** — for scenarios scripting session churn, the
//!   measured session is re-run on a `ShardedRuntime` while background
//!   sessions open and close in the scripted waves; its records must be
//!   bit-identical to the undisturbed run.
//!
//! Usage: `scenarios [n_inputs_per_episode] [seed]` (defaults 300, 2020).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_core::lane::{CandidateLane, LaneScratch};
use alert_core::select::select_with_period;
use alert_core::ProbabilityMode;
use alert_platform::Platform;
use alert_sched::alert::build_table_multi;
use alert_sched::env::EpisodeEnv;
use alert_sched::runtime::{EpisodeEvent, Runtime, SessionSpec};
use alert_sched::telemetry::{TelemetryConfig, TelemetryEvent};
use alert_sched::FamilyKind;
use alert_stats::units::{Joules, Seconds, Watts};
use alert_stats::Normal;
use alert_workload::{Goal, InputStream, Scenario};
use std::sync::Arc;

/// The matrix rows: every practical paper scheme plus the two oracle
/// references (all resolved through the policy registry, like any
/// serving deployment would).
const SCHEMES: [&str; 7] = [
    "ALERT",
    "ALERT-Any",
    "App-only",
    "Sys-only",
    "No-coord",
    "Oracle",
    "OracleStatic",
];

struct Cell {
    scheme: &'static str,
    scenario: String,
    stress: bool,
    measured: usize,
    deadline_miss_rate: f64,
    violation_rate: f64,
    avg_energy_j: f64,
    avg_quality: f64,
    decision_overhead_us_mean: f64,
    disqualified: bool,
}

fn base_goal() -> Goal {
    Goal::minimize_energy(Seconds(0.4), 0.9)
}

fn matrix_runtime(seed: u64) -> Runtime {
    Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .build()
        .expect("builtin policy resolves")
}

/// Runs one scenario row: every scheme on the *same* shared frozen
/// environment, with the per-scheme rebuild asserted bit-identical.
fn run_row(
    scenario: &Scenario,
    stream: &InputStream,
    seed: u64,
    identity_checks: &mut usize,
) -> Vec<Cell> {
    let goal = base_goal();
    let platform = alert_platform::Platform::cpu1();
    // Span-aware realization: the library's FloorRaise row expresses its
    // quality floor relative to the serving family's achievable range.
    let span = alert_workload::quality_span(&FamilyKind::Image.family(), &platform);
    let reference = Arc::new(
        EpisodeEnv::build_scoped(&platform, scenario, stream, &goal, seed, Some(span))
            .expect("library scenarios validate"),
    );
    let stress = scenario.name() != "Default";
    SCHEMES
        .iter()
        .map(|&scheme| {
            // The frozen-randomness guarantee, asserted per cell: a
            // rebuild from the same recipe is bit-identical to the env
            // every other scheme of this row runs on.
            let rebuilt =
                EpisodeEnv::build_scoped(&platform, scenario, stream, &goal, seed, Some(span))
                    .expect("library scenarios validate");
            assert_eq!(
                rebuilt.realizations(),
                reference.realizations(),
                "environment realization diverged for {scheme} on {}",
                scenario.name()
            );
            *identity_checks += 1;

            let mut rt = matrix_runtime(seed);
            let id = rt
                .session(SessionSpec::external(goal))
                .policy(scheme)
                .on(stream.clone(), reference.clone())
                .open()
                .expect("registered policy builds");
            rt.run_to_completion(id).expect("episode runs");
            let ep = rt.close(id).expect("session open");
            Cell {
                scheme,
                scenario: scenario.name().to_string(),
                stress,
                measured: ep.summary.measured,
                deadline_miss_rate: ep.summary.deadline_miss_rate,
                violation_rate: ep.summary.violation_rate(),
                avg_energy_j: ep.summary.avg_energy.get(),
                avg_quality: ep.summary.avg_quality,
                decision_overhead_us_mean: ep.summary.overhead.get()
                    / ep.records.len().max(1) as f64
                    * 1e6,
                disqualified: ep.summary.disqualified(),
            }
        })
        .collect()
}

/// One cell of the placement matrix (a node row × scheme × scenario).
struct PlacementCell {
    node: &'static str,
    scheme: &'static str,
    scenario: String,
    measured: usize,
    deadline_miss_rate: f64,
    violation_rate: f64,
    avg_energy_j: f64,
    avg_quality: f64,
    /// Fraction of inputs placed off device 0.
    off_primary_share: f64,
    disqualified: bool,
}

/// The placement node rows: a GPU-primary node and a CPU+GPU node under
/// one shared 230 W envelope (split proportional to max draw: ~192 W to
/// the GPU, ~38 W to the CPU — both keep a usable DVFS range).
fn placement_nodes() -> Vec<(&'static str, Vec<Platform>, Option<Watts>)> {
    vec![
        ("GPU", vec![Platform::gpu()], None),
        (
            "CPU+GPU",
            vec![Platform::cpu1(), Platform::gpu()],
            Some(Watts(230.0)),
        ),
    ]
}

/// The in-bench "lane ≡ reference enumeration" assertion over placement:
/// the SoA fast lane and the full reference enumeration must agree on
/// the selected (device, model, stage, power) for the node's actual
/// heterogeneous candidate table, across beliefs, goals, and probability
/// modes. Returns the number of agreement checks performed.
fn assert_lane_matches_reference(
    node: &str,
    platforms: &[Platform],
    shared_budget: Option<Watts>,
) -> usize {
    let family = FamilyKind::Image.family();
    let refs: Vec<&Platform> = platforms.iter().collect();
    let (table, _) = build_table_multi(&family, &refs, shared_budget).expect("node table builds");
    let lane = CandidateLane::build(&table);
    let mut scratch = LaneScratch::for_lane(&lane);
    let mut checks = 0usize;
    for (mean, std) in [(1.0, 0.02), (1.6, 0.3), (0.8, 0.0)] {
        let xi = Normal::new(mean, std);
        for goal in [
            Goal::minimize_energy(Seconds(0.4), 0.9),
            Goal::minimize_energy(Seconds(0.05), 0.9),
            Goal::minimize_error(Seconds(0.4), Joules(8.0)),
        ] {
            for mode in [ProbabilityMode::Full, ProbabilityMode::MeanOnly] {
                let fast = lane
                    .select_with_period(&mut scratch, &xi, 0.25, &goal, goal.deadline, mode)
                    .expect("valid goal");
                let full = select_with_period(&table, &xi, 0.25, &goal, goal.deadline, mode)
                    .expect("valid goal");
                assert_eq!(
                    fast, full,
                    "lane diverged from reference on {node} (mean={mean} std={std} {goal:?} {mode:?})"
                );
                checks += 1;
            }
        }
    }
    checks
}

/// Runs one placement row: every scheme on the same shared heterogeneous
/// frozen environment, with the per-scheme rebuild asserted bit-identical
/// across *every device's* realization grid and cap-ceiling timeline.
fn run_placement_row(
    node: &'static str,
    platforms: &[Platform],
    shared_budget: Option<Watts>,
    scenario: &Scenario,
    stream: &InputStream,
    seed: u64,
    identity_checks: &mut usize,
) -> Vec<PlacementCell> {
    let goal = base_goal();
    let primary = &platforms[0];
    let span = alert_workload::quality_span(&FamilyKind::Image.family(), primary);
    let build = || {
        EpisodeEnv::build_hetero(platforms, scenario, stream, &goal, seed, Some(span))
            .expect("library scenarios validate")
    };
    let reference = Arc::new(build());
    SCHEMES
        .iter()
        .map(|&scheme| {
            // The frozen-randomness guarantee, extended over placement:
            // a rebuild must match on device 0's realizations *and* on
            // every extra device's scripted cap-ceiling timeline.
            let rebuilt = build();
            assert_eq!(
                rebuilt.realizations(),
                reference.realizations(),
                "environment realization diverged for {scheme} on {node}/{}",
                scenario.name()
            );
            for d in 1..reference.device_count() {
                for i in 0..reference.len() {
                    assert_eq!(
                        rebuilt.cap_limit_on(d, i),
                        reference.cap_limit_on(d, i),
                        "device {d} cap timeline diverged for {scheme} on {node}/{}",
                        scenario.name()
                    );
                }
            }
            *identity_checks += 1;

            let mut builder = Runtime::builder()
                .platform(primary.id())
                .family(FamilyKind::Image)
                .seed(seed);
            for p in &platforms[1..] {
                builder = builder.extra_backend(p.id());
            }
            if let Some(b) = shared_budget {
                builder = builder.shared_budget(b);
            }
            let mut rt = builder.build().expect("builtin policy resolves");
            let id = rt
                .session(SessionSpec::external(goal))
                .policy(scheme)
                .on(stream.clone(), reference.clone())
                .open()
                .expect("registered policy builds");
            rt.run_to_completion(id).expect("episode runs");
            let ep = rt.close(id).expect("session open");
            let off_primary = ep.records.iter().filter(|r| r.device > 0).count();
            PlacementCell {
                node,
                scheme,
                scenario: scenario.name().to_string(),
                measured: ep.summary.measured,
                deadline_miss_rate: ep.summary.deadline_miss_rate,
                violation_rate: ep.summary.violation_rate(),
                avg_energy_j: ep.summary.avg_energy.get(),
                avg_quality: ep.summary.avg_quality,
                off_primary_share: off_primary as f64 / ep.records.len().max(1) as f64,
                disqualified: ep.summary.disqualified(),
            }
        })
        .collect()
}

/// Replays the scripted churn waves against a `ShardedRuntime`: the
/// measured ALERT session steps input by input while background sessions
/// open and close at the scripted marks. Returns
/// (waves, opened, closed) and asserts the measured records are
/// bit-identical to an undisturbed serial run.
fn run_churn(scenario: &Scenario, n_inputs: usize, seed: u64) -> (usize, usize, usize) {
    let waves = scenario.script().churn_waves();
    assert!(!waves.is_empty(), "churn scenario must script waves");
    let spec = SessionSpec {
        goal: base_goal(),
        scenario: scenario.clone(),
        n_inputs,
        seed: Some(seed),
        policy: Some("ALERT".into()),
    };

    // Undisturbed reference.
    let mut rt = matrix_runtime(seed);
    let id = rt.session(spec.clone()).open().expect("spec valid");
    rt.run_to_completion(id).expect("episode runs");
    let reference = rt.close(id).expect("open").records;

    // Churned run: 4 shards, background sessions per scripted wave.
    let mut sharded = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .build_sharded(4)
        .expect("builtin policy resolves");
    let measured = sharded.session(spec.clone()).open().expect("spec valid");
    let mut background: Vec<alert_workload::SessionId> = Vec::new();
    let mut opened = 0usize;
    let mut closed = 0usize;
    let mut wave_iter = waves.iter().peekable();
    let mut records = Vec::with_capacity(n_inputs);
    for i in 0..n_inputs {
        while let Some(&&(at, open, close)) = wave_iter.peek() {
            if (at * n_inputs as f64) as usize > i {
                break;
            }
            wave_iter.next();
            for k in 0..open {
                let bg = sharded
                    .session(SessionSpec {
                        seed: Some(seed ^ (0x5bd1_e995 + (opened + k) as u64)),
                        ..spec.clone()
                    })
                    .open()
                    .expect("spec valid");
                // Give each background session some progress so closes
                // land on part-way sessions, like real churn.
                sharded.submit(bg).expect("open").expect("has inputs");
                background.push(bg);
            }
            opened += open;
            for _ in 0..close.min(background.len()) {
                let bg = background.remove(0);
                sharded.close(bg).expect("open");
                closed += 1;
            }
        }
        let r = sharded
            .submit(measured)
            .expect("open")
            .expect("stream not exhausted");
        records.push(r);
    }
    for bg in background {
        sharded.close(bg).expect("open");
    }
    let churned = sharded.close(measured).expect("open").records;
    assert_eq!(records, churned, "submit records must match the episode's");
    assert_eq!(
        churned, reference,
        "churn must not perturb the measured session (session isolation)"
    );
    (waves.len(), opened, closed)
}

/// Belief convergence under a scripted disturbance, read off the
/// decision-telemetry stream: how many inputs the slowdown posterior
/// takes to settle (the last decision whose posterior mean sits more
/// than 5% from the stream's final posterior), plus the excursion the
/// disturbance caused.
struct Convergence {
    scenario: String,
    decisions: usize,
    inputs_to_settle: usize,
    final_belief_mean: f64,
    peak_belief_mean: f64,
}

fn bench_convergence(scenario: &Scenario, n_inputs: usize, seed: u64) -> Convergence {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut rt = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .telemetry(TelemetryConfig::Full)
        .sink(tx)
        .build()
        .expect("builtin policy resolves");
    let id = rt
        .session(SessionSpec {
            goal: base_goal(),
            scenario: scenario.clone(),
            n_inputs,
            seed: Some(seed),
            policy: Some("ALERT".into()),
        })
        .open()
        .expect("spec valid");
    rt.run_to_completion(id).expect("episode runs");
    rt.close(id).expect("session open");
    drop(rt);
    let means: Vec<f64> = rx
        .iter()
        .filter_map(|e| match e {
            EpisodeEvent::Telemetry {
                event: TelemetryEvent::Decision(d),
            } => Some(d.post_mean),
            _ => None,
        })
        .collect();
    assert_eq!(
        means.len(),
        n_inputs,
        "{}: full telemetry must report every decision",
        scenario.name()
    );
    let final_mean = *means.last().expect("non-empty stream");
    let tol = 0.05 * final_mean.abs().max(1e-9);
    let inputs_to_settle = means
        .iter()
        .rposition(|m| (m - final_mean).abs() > tol)
        .map(|i| i + 1)
        .unwrap_or(0);
    Convergence {
        scenario: scenario.name().to_string(),
        decisions: means.len(),
        inputs_to_settle,
        final_belief_mean: final_mean,
        peak_belief_mean: means.iter().cloned().fold(f64::MIN, f64::max),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 50)
        .unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);

    banner(
        "Scenario matrix",
        "Scheme × scenario grid over the scripted dynamic-environment library",
    );
    println!("[{n_inputs} inputs per episode, seed {seed}]\n");

    let library = Scenario::library(seed);
    let stream = InputStream::generate(alert_workload::TaskId::Img2, n_inputs, seed);
    let mut identity_checks = 0usize;
    let mut cells: Vec<Cell> = Vec::new();

    csv_header(&[
        "scenario",
        "scheme",
        "miss_rate",
        "violation_rate",
        "avg_energy_j",
        "avg_quality",
        "overhead_us",
    ]);
    for scenario in &library {
        for cell in run_row(scenario, &stream, seed, &mut identity_checks) {
            csv_row(&[
                cell.scenario.clone(),
                cell.scheme.to_string(),
                f(cell.deadline_miss_rate, 4),
                f(cell.violation_rate, 4),
                f(cell.avg_energy_j, 3),
                f(cell.avg_quality, 4),
                f(cell.decision_overhead_us_mean, 2),
            ]);
            cells.push(cell);
        }
    }
    assert_eq!(
        cells.len(),
        SCHEMES.len() * library.len(),
        "matrix must be complete"
    );
    assert_eq!(identity_checks, cells.len());

    // Churn isolation, replayed on the sharded serving runtime.
    let churn_scenario = library
        .iter()
        .find(|s| s.name() == "Churn")
        .expect("library has Churn");
    let (waves, opened, closed) = run_churn(churn_scenario, n_inputs.min(120), seed);
    println!(
        "\n[churn isolation verified: {waves} waves, {opened} background sessions opened, \
         {closed} closed — measured session bit-identical]"
    );

    // Belief convergence on the disturbance scenarios, read off the
    // decision-telemetry stream.
    let mut convergence: Vec<Convergence> = Vec::new();
    for name in ["CapStorm", "GoalFlip"] {
        let scenario = library
            .iter()
            .find(|s| s.name() == name)
            .expect("library has disturbance scenario");
        let c = bench_convergence(scenario, n_inputs.min(150), seed);
        assert!(
            c.inputs_to_settle < c.decisions,
            "{name}: belief never settled ({} / {})",
            c.inputs_to_settle,
            c.decisions
        );
        println!(
            "\n[{name}: belief settles after {} / {} inputs (final ξ mean {:.3}, peak {:.3})]",
            c.inputs_to_settle, c.decisions, c.final_belief_mean, c.peak_belief_mean
        );
        convergence.push(c);
    }

    // Placement rows: the same scheme matrix on a GPU-primary node and a
    // shared-budget CPU+GPU node, over the quiescent scenario and the
    // heterogeneous serving scenario (GPU throttle + device-1 cap crash).
    let nodes = placement_nodes();
    let placement_scenarios: Vec<&Scenario> = library
        .iter()
        .filter(|s| s.name() == "Default" || s.name() == "HeteroServing")
        .collect();
    assert_eq!(placement_scenarios.len(), 2, "library names changed");
    let mut lane_checks = 0usize;
    let mut placement_identity_checks = 0usize;
    let mut placement_cells: Vec<PlacementCell> = Vec::new();
    println!("\n[placement matrix: GPU and CPU+GPU nodes]");
    csv_header(&[
        "node",
        "scenario",
        "scheme",
        "miss_rate",
        "violation_rate",
        "avg_energy_j",
        "avg_quality",
        "off_primary_share",
    ]);
    for (node, platforms, budget) in &nodes {
        lane_checks += assert_lane_matches_reference(node, platforms, *budget);
        for scenario in &placement_scenarios {
            for cell in run_placement_row(
                node,
                platforms,
                *budget,
                scenario,
                &stream,
                seed,
                &mut placement_identity_checks,
            ) {
                csv_row(&[
                    cell.node.to_string(),
                    cell.scenario.clone(),
                    cell.scheme.to_string(),
                    f(cell.deadline_miss_rate, 4),
                    f(cell.violation_rate, 4),
                    f(cell.avg_energy_j, 3),
                    f(cell.avg_quality, 4),
                    f(cell.off_primary_share, 3),
                ]);
                placement_cells.push(cell);
            }
        }
    }
    assert_eq!(
        placement_cells.len(),
        SCHEMES.len() * nodes.len() * placement_scenarios.len(),
        "placement matrix must be complete"
    );
    assert_eq!(placement_identity_checks, placement_cells.len());
    for c in placement_cells.iter().filter(|c| c.scheme == "Oracle") {
        // The perfect-knowledge oracle sees every device's scripted
        // future, so it never misses a deadline on any node.
        assert_eq!(
            c.deadline_miss_rate, 0.0,
            "Oracle missed deadlines on {}/{}",
            c.node, c.scenario
        );
    }
    println!(
        "\n[placement verified: {lane_checks} lane≡reference checks, \
         {placement_identity_checks} hetero env identity checks, Oracle 0% miss on all nodes]"
    );

    let doc = serde_json::json!({
        "bench": "scenario_matrix",
        "n_inputs_per_episode": n_inputs,
        "seed": seed,
        "goal": serde_json::json!({
            "objective": "MinimizeEnergy", "deadline_s": 0.4, "min_quality": 0.9,
        }),
        "schemes": SCHEMES,
        "scenarios": library.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
        "env_identity_checks": identity_checks,
        "telemetry": serde_json::json!({
            "belief_convergence": convergence.iter().map(|c| serde_json::json!({
                "scenario": c.scenario,
                "decisions": c.decisions,
                "inputs_to_settle": c.inputs_to_settle,
                "final_belief_mean": c.final_belief_mean,
                "peak_belief_mean": c.peak_belief_mean,
            })).collect::<Vec<_>>(),
        }),
        "churn": serde_json::json!({
            "waves": waves,
            "background_opened": opened,
            "background_closed": closed,
            "isolation_verified": true,
        }),
        "cells": cells.iter().map(|c| serde_json::json!({
            "scheme": c.scheme,
            "scenario": c.scenario,
            "stress": c.stress,
            "measured": c.measured,
            "deadline_miss_rate": c.deadline_miss_rate,
            "violation_rate": c.violation_rate,
            "avg_energy_j": c.avg_energy_j,
            "avg_quality": c.avg_quality,
            "decision_overhead_us_mean": c.decision_overhead_us_mean,
            "disqualified": c.disqualified,
        })).collect::<Vec<_>>(),
        "placement": serde_json::json!({
            "nodes": nodes.iter().map(|(n, platforms, budget)| serde_json::json!({
                "node": n,
                "backends": platforms.iter().map(|p| p.id().to_string()).collect::<Vec<_>>(),
                "shared_budget_w": budget.map(|b| b.get()),
            })).collect::<Vec<_>>(),
            "scenarios": placement_scenarios.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
            "lane_identity_checks": lane_checks,
            "env_identity_checks": placement_identity_checks,
            "cells": placement_cells.iter().map(|c| serde_json::json!({
                "node": c.node,
                "scheme": c.scheme,
                "scenario": c.scenario,
                "measured": c.measured,
                "deadline_miss_rate": c.deadline_miss_rate,
                "violation_rate": c.violation_rate,
                "avg_energy_j": c.avg_energy_j,
                "avg_quality": c.avg_quality,
                "off_primary_share": c.off_primary_share,
                "disqualified": c.disqualified,
            })).collect::<Vec<_>>(),
        }),
    });
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scenarios.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_scenarios.json");
    println!("[matrix written to {}]", path.display());
}
