//! Table 5 — ALERT candidate-set comparison: ALERT (traditional +
//! anytime) vs ALERT-Any vs ALERT-Trad, normalized to OracleStatic.
//!
//! Shape checks against the paper:
//! * all three variants work well (close to each other),
//! * ALERT-Trad accumulates more accuracy violations under contention
//!   (a traditional DNN loses everything when it misses a deadline),
//! * full ALERT edges out ALERT-Any thanks to the slightly more accurate
//!   traditional models in calm phases.
//!
//! Usage: `table5 [n_inputs] [seed]` (defaults 300, 2020).

use alert_bench::{banner, write_json};
use alert_sched::{run_table, ExperimentConfig, SchemeKind};
use alert_workload::Objective;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let config = ExperimentConfig {
        n_inputs,
        seed,
        ..Default::default()
    };

    banner(
        "Table 5",
        "ALERT vs ALERT-Any vs ALERT-Trad, normalized to OracleStatic",
    );

    println!("--- Minimize Energy task ---");
    let energy_table = run_table(Objective::MinimizeEnergy, &SchemeKind::TABLE5, &config);
    print!("{}", energy_table.render());

    println!("\n--- Minimize Error task ---");
    let error_table = run_table(Objective::MinimizeError, &SchemeKind::TABLE5, &config);
    print!("{}", error_table.render());

    write_json(
        "table5.json",
        &serde_json::json!({
            "config": config,
            "minimize_energy": energy_table,
            "minimize_error": error_table,
        }),
    );
}
