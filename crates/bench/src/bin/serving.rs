//! The serving saturation curve: offered load vs goodput / miss-rate /
//! shed-rate per admission policy (Always-admit, Drop-tail, ALERT) over
//! the sharded runtime's serving front-end. Written to
//! `BENCH_serving.json` at the workspace root; CI runs it and gates on
//! the curve.
//!
//! Three guarantees are asserted *inside* the bench (it aborts on the
//! first violation):
//!
//! * **Deterministic replay** — every (policy, load) cell is served
//!   twice from scratch (fresh storm, fresh runtime, fresh policy); the
//!   two outcome-log fingerprints must be bit-equal.
//! * **Admission dominance under overload** — at every load at or past
//!   2× saturation, ALERT admission has strictly higher goodput *and*
//!   strictly lower miss-rate-among-admitted than both baselines.
//! * **Shed monotonicity** — each policy's shed rate is non-decreasing
//!   in offered load.
//!
//! Usage: `serving [n_requests] [seed]` (defaults 120, 2020).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_sched::runtime::{EpisodeEvent, Runtime, SessionSpec};
use alert_sched::serving::{
    admission_policy, serve, AlertAdmission, ServingConfig, DEFAULT_DEGRADE_FRAC,
    DEFAULT_MISS_THRESHOLD,
};
use alert_sched::telemetry::{AdmissionTelemetry, TelemetryEvent};
use alert_sched::ShardedRuntime;
use alert_stats::units::Seconds;
use alert_workload::{
    generate_storm, ArrivalProcess, Goal, GoalPatch, Scenario, ServingReport, StormSpec,
};
use std::collections::BTreeMap;

const WORKERS: usize = 2;
const POLICIES: [&str; 3] = ["Always-admit", "Drop-tail", "ALERT"];
/// Offered load as a multiple of the calibrated saturation point.
const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
/// Loads at or past this multiple must show strict ALERT dominance.
const OVERLOAD: f64 = 2.0;

fn goal() -> Goal {
    Goal::minimize_energy(Seconds(0.4), 0.9)
}

fn runtime(seed: u64) -> ShardedRuntime {
    Runtime::builder()
        .seed(seed)
        .build_sharded(WORKERS)
        .expect("builtin policies resolve")
}

/// Mean per-input service latency of an unloaded episode under the
/// serving goal — the calibration anchor for the saturation point.
fn calibrate_mean_latency(seed: u64) -> f64 {
    let mut rt = Runtime::builder().seed(seed).build().expect("builds");
    let id = rt
        .session(SessionSpec {
            goal: goal(),
            scenario: Scenario::default_env(),
            n_inputs: 60,
            seed: Some(seed),
            policy: None,
        })
        .open()
        .expect("session opens");
    rt.run_to_completion(id).expect("episode runs");
    let episode = rt.close(id).expect("session open");
    let n = episode.records.len().max(1);
    episode.records.iter().map(|r| r.latency.get()).sum::<f64>() / n as f64
}

struct Cell {
    policy: &'static str,
    load: f64,
    mean_gap_s: f64,
    report: ServingReport,
    fingerprint: u64,
}

fn run_cell(
    policy_name: &'static str,
    load: f64,
    mean_gap: f64,
    n_requests: usize,
    seed: u64,
) -> Cell {
    let spec = StormSpec {
        arrival: ArrivalProcess::Poisson { rate_scale: 1.0 },
        n_requests,
        mean_gap: Seconds(mean_gap),
        seed,
    };
    let run = || {
        let storm = generate_storm(&spec, None).expect("valid storm");
        let mut rt = runtime(seed);
        let mut policy = admission_policy(policy_name, &rt).expect("known policy");
        serve(&mut rt, &ServingConfig::new(goal()), &storm, &mut policy).expect("serving runs")
    };
    let report = run();
    let replay = run();
    assert_eq!(
        report.fingerprint(),
        replay.fingerprint(),
        "{policy_name} at load {load}: serving replay diverged — the \
         frozen-storm determinism guarantee is broken"
    );
    let fingerprint = report.fingerprint();
    Cell {
        policy: policy_name,
        load,
        mean_gap_s: mean_gap,
        report,
        fingerprint,
    }
}

/// One instrumented ALERT cell: the same storm re-served under an
/// `AdmissionTelemetry`-wrapped policy. The fingerprint must match the
/// bare cell's (telemetry is non-perturbing) and the decorator's
/// verdict counts the report's.
struct TelemetryCell {
    load: f64,
    admitted: u64,
    degraded: u64,
    shed: u64,
    /// Failing-constraint histogram over non-admit verdicts.
    constraints: BTreeMap<String, u64>,
}

fn run_instrumented_alert(
    load: f64,
    mean_gap: f64,
    n_requests: usize,
    seed: u64,
    expected_fingerprint: u64,
) -> TelemetryCell {
    let spec = StormSpec {
        arrival: ArrivalProcess::Poisson { rate_scale: 1.0 },
        n_requests,
        mean_gap: Seconds(mean_gap),
        seed,
    };
    let storm = generate_storm(&spec, None).expect("valid storm");
    let mut rt = runtime(seed);
    let inner = AlertAdmission::for_runtime(
        &rt,
        GoalPatch::floor_frac(DEFAULT_DEGRADE_FRAC),
        DEFAULT_MISS_THRESHOLD,
    )
    .expect("policy builds");
    let (tx, rx) = std::sync::mpsc::channel();
    let mut policy = AdmissionTelemetry::new(inner, tx);
    let report =
        serve(&mut rt, &ServingConfig::new(goal()), &storm, &mut policy).expect("serving runs");
    assert_eq!(
        report.fingerprint(),
        expected_fingerprint,
        "admission telemetry perturbed the serving fingerprint at load {load}"
    );
    let counts = policy.counts();
    // The report's `admitted()` spans full-quality AND degraded service;
    // the decorator tallies the two verdicts separately.
    assert_eq!(
        (counts.admitted + counts.degraded) as usize,
        report.admitted()
    );
    assert_eq!(counts.degraded as usize, report.degraded());
    assert_eq!(counts.shed as usize, report.shed());
    drop(policy); // releases the sender so the drain below terminates

    let mut constraints = BTreeMap::new();
    let mut events = 0usize;
    for e in rx.iter() {
        if let EpisodeEvent::Telemetry {
            event: TelemetryEvent::Admission(a),
        } = e
        {
            events += 1;
            if let Some(c) = a.constraint {
                *constraints.entry(format!("{c:?}")).or_insert(0u64) += 1;
            }
        }
    }
    assert_eq!(events, n_requests, "one admission event per request");
    TelemetryCell {
        load,
        admitted: counts.admitted,
        degraded: counts.degraded,
        shed: counts.shed,
        constraints,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_requests: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 20)
        .unwrap_or(120);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);

    banner(
        "Serving saturation curve",
        "Offered load vs goodput/miss/shed per admission policy over the sharded runtime",
    );
    let mean_latency = calibrate_mean_latency(seed);
    let inputs_per_request = ServingConfig::new(goal()).inputs_per_request;
    let saturating_gap = inputs_per_request as f64 * mean_latency / WORKERS as f64;
    println!(
        "[{n_requests} requests per cell, seed {seed}, {WORKERS} shards, \
         {inputs_per_request} inputs/request]\n\
         [calibrated mean input latency {mean_latency:.4} s → saturating gap {saturating_gap:.4} s]\n"
    );

    csv_header(&[
        "policy",
        "load",
        "offered",
        "admitted",
        "degraded",
        "shed_rate",
        "goodput",
        "miss_rate_admitted",
    ]);
    let mut cells: Vec<Cell> = Vec::new();
    for &load in &LOADS {
        for policy in POLICIES {
            let cell = run_cell(policy, load, saturating_gap / load, n_requests, seed);
            csv_row(&[
                policy.to_string(),
                f(load, 2),
                cell.report.offered().to_string(),
                cell.report.admitted().to_string(),
                cell.report.degraded().to_string(),
                f(cell.report.shed_rate(), 4),
                f(cell.report.goodput(), 4),
                f(cell.report.miss_rate_admitted(), 4),
            ]);
            cells.push(cell);
        }
    }

    // Admission dominance under overload: ALERT strictly beats both
    // baselines on goodput and miss-rate-among-admitted at every load
    // at or past 2× saturation.
    for &load in LOADS.iter().filter(|&&l| l >= OVERLOAD) {
        let at = |name: &str| {
            cells
                .iter()
                .find(|c| c.policy == name && c.load == load)
                .expect("cell grid is complete")
        };
        let alert = at("ALERT");
        for baseline in ["Always-admit", "Drop-tail"] {
            let base = at(baseline);
            assert!(
                alert.report.goodput() > base.report.goodput(),
                "at {load}x saturation ALERT goodput {:.4} must strictly exceed \
                 {baseline}'s {:.4}",
                alert.report.goodput(),
                base.report.goodput()
            );
            assert!(
                alert.report.miss_rate_admitted() < base.report.miss_rate_admitted(),
                "at {load}x saturation ALERT miss-rate-among-admitted {:.4} must be \
                 strictly below {baseline}'s {:.4}",
                alert.report.miss_rate_admitted(),
                base.report.miss_rate_admitted()
            );
        }
    }
    // Shed monotonicity: more offered load never sheds less.
    for policy in POLICIES {
        let rates: Vec<f64> = LOADS
            .iter()
            .map(|&l| {
                cells
                    .iter()
                    .find(|c| c.policy == policy && c.load == l)
                    .expect("cell grid is complete")
                    .report
                    .shed_rate()
            })
            .collect();
        for w in rates.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{policy}: shed rate must be monotone in offered load, got {rates:?}"
            );
        }
    }
    println!("\n[replay identity asserted for all {} cells]", cells.len());

    // Instrumented ALERT re-runs per load: verdict counts and failing
    // constraints off the admission-telemetry stream, with the serving
    // fingerprint asserted unchanged (telemetry is non-perturbing).
    let telemetry_cells: Vec<TelemetryCell> = LOADS
        .iter()
        .map(|&load| {
            let bare = cells
                .iter()
                .find(|c| c.policy == "ALERT" && c.load == load)
                .expect("cell grid is complete");
            run_instrumented_alert(load, bare.mean_gap_s, n_requests, seed, bare.fingerprint)
        })
        .collect();
    println!(
        "[admission telemetry verified: fingerprints unchanged at all {} loads]",
        telemetry_cells.len()
    );

    let doc = serde_json::json!({
        "bench": "serving_saturation",
        "n_requests": n_requests,
        "seed": seed,
        "workers": WORKERS,
        "inputs_per_request": inputs_per_request,
        "goal": serde_json::json!({
            "objective": "MinimizeEnergy", "deadline_s": 0.4, "min_quality": 0.9,
        }),
        "calibration": serde_json::json!({
            "mean_input_latency_s": mean_latency,
            "saturating_gap_s": saturating_gap,
        }),
        "overload_threshold": OVERLOAD,
        "loads": LOADS,
        "policies": POLICIES,
        "cells": cells.iter().map(|c| serde_json::json!({
            "policy": c.policy,
            "load": c.load,
            "mean_gap_s": c.mean_gap_s,
            "offered": c.report.offered(),
            "admitted": c.report.admitted(),
            "degraded": c.report.degraded(),
            "shed": c.report.shed(),
            "shed_rate": c.report.shed_rate(),
            "goodput": c.report.goodput(),
            "miss_rate_admitted": c.report.miss_rate_admitted(),
            "fingerprint": format!("{:016x}", c.fingerprint),
            "replay_identical": true,
        })).collect::<Vec<_>>(),
        "telemetry": serde_json::json!({
            "policy": "ALERT",
            "cells": telemetry_cells.iter().map(|t| serde_json::json!({
                "load": t.load,
                "admitted": t.admitted,
                "degraded": t.degraded,
                "shed": t.shed,
                "constraints": t.constraints,
                "fingerprint_match": true,
            })).collect::<Vec<_>>(),
        }),
    });
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_serving.json");
    println!("[curve written to {}]", path.display());
}
