//! Figure 2: latency/error/energy trade-offs of the 42 ImageNet DNNs on
//! CPU2, with the lower convex hull of optimal trade-offs.
//!
//! Paper claims to reproduce (shape, not absolute numbers):
//! * the fastest model is ~18× faster than the slowest,
//! * the most accurate has ~7.8× lower top-5 error than the least,
//! * energy spans >20×,
//! * no model is best on both axes; VGG sits far above the hull.

use alert_bench::{banner, csv_header, csv_row, f};
use alert_models::inference;
use alert_models::zoo::imagenet42;
use alert_platform::Platform;
use alert_stats::hull::{lower_convex_hull, Point2};
use alert_stats::rng::stream_rng;
use alert_workload::TaskId;

fn main() {
    banner(
        "Figure 2",
        "Tradeoffs for 42 ImageNet DNNs (CPU2, default power)",
    );
    let platform = Platform::cpu2();
    let cap = platform.default_cap();
    let zoo = imagenet42();
    let mut rng = stream_rng(2020, "fig2-inputs");

    // Average measured latency over a stream of inputs (like the paper's
    // 50 000-image pass, scaled down).
    let n_inputs = 2000;
    let mut rows = Vec::new();
    for m in &zoo {
        let mut sum_t = 0.0;
        let mut sum_e = 0.0;
        for _ in 0..n_inputs {
            let scale = TaskId::Img2.sample_scale(&mut rng);
            let noise = platform.noise().sample(&mut rng);
            let t = inference::profile_latency(m, &platform, cap)
                .expect("feasible")
                .get()
                * scale
                * noise;
            let p = inference::run_power(m, &platform, cap).get();
            sum_t += t;
            sum_e += p * t;
        }
        let avg_t = sum_t / n_inputs as f64;
        let avg_e = sum_e / n_inputs as f64;
        let err5 = (1.0 - m.quality) * 100.0;
        rows.push((m.name.clone(), avg_t, err5, avg_e));
    }

    csv_header(&["model", "latency_s", "top5_err_pct", "energy_j"]);
    for (name, t, err, e) in &rows {
        csv_row(&[name.clone(), f(*t, 4), f(*err, 1), f(*e, 2)]);
    }

    let points: Vec<Point2> = rows
        .iter()
        .enumerate()
        .map(|(i, (_, t, err, _))| Point2::new(*t, *err, i))
        .collect();
    let hull = lower_convex_hull(&points);
    println!("\nlower convex hull (optimal latency/error tradeoffs):");
    for p in &hull {
        println!(
            "  {:<24} {:>7} s  {:>5} %",
            rows[p.idx].0,
            f(p.x, 4),
            f(p.y, 1)
        );
    }

    let t_min = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let t_max = rows.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
    let e_min = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
    let e_max = rows.iter().map(|r| r.2).fold(f64::NEG_INFINITY, f64::max);
    let j_min = rows.iter().map(|r| r.3).fold(f64::INFINITY, f64::min);
    let j_max = rows.iter().map(|r| r.3).fold(f64::NEG_INFINITY, f64::max);
    println!("\nspans (paper: ~18x latency, ~7.8x error, >20x energy):");
    println!("  latency span: {}x", f(t_max / t_min, 1));
    println!("  error   span: {}x", f(e_max / e_min, 1));
    println!("  energy  span: {}x", f(j_max / j_min, 1));
    println!(
        "  models on hull: {} of {} (all others are dominated tradeoffs)",
        hull.len(),
        rows.len()
    );
    let vgg = rows.iter().find(|r| r.0 == "vgg_16").expect("vgg in zoo");
    let dominated = rows.iter().any(|r| r.1 < vgg.1 && r.2 < vgg.2);
    println!("  vgg_16 dominated (paper: yes): {dominated}");
}
