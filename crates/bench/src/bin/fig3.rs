//! Figure 3: ResNet50 on CPU2 under 31 power settings (40–100 W, 2 W
//! steps): per-period energy vs latency for a periodic input stream whose
//! period equals the latency at the 40 W cap.
//!
//! Paper claims to reproduce:
//! * the fastest setting is >2× faster than the slowest,
//! * the 40 W setting consumes the least energy,
//! * the most energy-hungry setting sits mid-range at ≈1.3× the minimum,
//! * the curve is non-monotone — no greedy heuristic can navigate it.

use alert_bench::{banner, csv_header, csv_row, f};
use alert_models::inference;
use alert_models::zoo::resnet50;
use alert_platform::energy::PeriodEnergy;
use alert_platform::Platform;
use alert_stats::units::{Seconds, Watts};

fn main() {
    banner(
        "Figure 3",
        "ResNet50 @ 31 power settings 40-100W (CPU2), period = latency@40W",
    );
    let platform = Platform::cpu2();
    let model = resnet50();
    let caps: Vec<Watts> = platform.cap_range().settings_with_step(Watts(2.0));
    assert_eq!(caps.len(), 31, "paper uses 31 settings");

    let latency_at = |cap: Watts| -> Seconds {
        inference::profile_latency(&model, &platform, cap).expect("feasible")
    };
    let period = latency_at(Watts(40.0));

    csv_header(&["cap_w", "latency_s", "period_energy_j"]);
    let mut rows = Vec::new();
    for &cap in &caps {
        let t = latency_at(cap);
        let run_p = inference::run_power(&model, &platform, cap);
        let idle_p = platform.idle_draw(cap, None);
        let e = PeriodEnergy::from_draws(run_p, t, idle_p, period).total();
        csv_row(&[f(cap.get(), 0), f(t.get(), 4), f(e.get(), 2)]);
        rows.push((cap, t, e));
    }

    let (min_cap, _, e_min) = rows
        .iter()
        .min_by(|a, b| a.2.get().total_cmp(&b.2.get()))
        .unwrap();
    let (max_cap, _, e_max) = rows
        .iter()
        .max_by(|a, b| a.2.get().total_cmp(&b.2.get()))
        .unwrap();
    let span = rows[0].1.get() / rows.last().unwrap().1.get();
    println!("\nshape checks (paper: >2x latency span, min@40W, max mid-range ~1.3x):");
    println!("  latency span 40W/100W : {}x", f(span, 2));
    println!(
        "  least energy at       : {} ({} J)",
        min_cap,
        f(e_min.get(), 2)
    );
    println!(
        "  most  energy at       : {} ({} J)",
        max_cap,
        f(e_max.get(), 2)
    );
    println!(
        "  max/min energy ratio  : {}x",
        f(e_max.get() / e_min.get(), 2)
    );
    let interior = max_cap.get() > 45.0 && max_cap.get() < 95.0;
    println!("  energy max is interior (non-monotone curve): {interior}");
}
