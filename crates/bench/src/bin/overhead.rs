//! §4 overhead measurement: ALERT's per-input scheduler cost relative to
//! inference time.
//!
//! The paper reports 0.6–1.7% of an input's inference time for scheduler
//! computation plus configuration switching. Here we measure the actual
//! wall-clock cost of `AlertController::decide` + `observe` over the
//! candidate tables of each platform and compare it to the simulated mean
//! inference latencies.

use alert_bench::{banner, csv_header, csv_row, f};
use alert_core::alert::{AlertParams, Observation, OverheadPolicy};
use alert_core::AlertController;
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::alert::build_table;
use alert_stats::units::Watts;
use alert_workload::constraints::deadline_unit;
use alert_workload::Goal;
use std::time::Instant;

fn main() {
    banner(
        "Section 4 overhead",
        "Scheduler cost per decision vs inference time (paper: 0.6-1.7%)",
    );
    csv_header(&[
        "platform",
        "family",
        "candidates",
        "mean_decide_us",
        "p99_decide_us",
        "mean_inference_ms",
        "overhead_pct",
    ]);
    for platform in [Platform::cpu1(), Platform::cpu2(), Platform::gpu()] {
        for family in [
            ModelFamily::image_classification(),
            ModelFamily::sentence_prediction(),
        ] {
            if platform.id() == alert_platform::PlatformId::Gpu
                && family.name() == "sentence_prediction"
            {
                continue; // RNN inference is CPU-only (§5.1).
            }
            let (table, _) = build_table(&family, &platform).expect("paper family fits");
            let candidates = table.candidate_count();
            let unit = deadline_unit(&family, &platform);
            let goal = Goal::minimize_error(unit, Watts(35.0) * unit);
            let params = AlertParams {
                overhead: OverheadPolicy::Measured,
                ..Default::default()
            };
            let mut ctl = AlertController::new(table, params).expect("valid params");

            let iterations = 2000;
            let mut costs = Vec::with_capacity(iterations);
            for i in 0..iterations {
                let start = Instant::now();
                let sel = ctl.decide(&goal).expect("valid goal");
                costs.push(start.elapsed().as_secs_f64());
                // Feed plausible feedback to keep the estimators moving.
                let t_prof = ctl.table().t_prof_stage(sel.candidate);
                let jitter = 1.0 + 0.05 * ((i % 7) as f64 - 3.0) / 3.0;
                ctl.observe(&Observation {
                    latency: t_prof * jitter,
                    profile_equivalent: t_prof,
                    idle_power: Some(Watts(6.0)),
                    idle_cap: ctl.table().cap(sel.candidate.power),
                });
            }
            costs.sort_by(f64::total_cmp);
            let mean = costs.iter().sum::<f64>() / costs.len() as f64;
            let p99 = costs[(costs.len() as f64 * 0.99) as usize];
            // Mean inference time at the default cap across candidates.
            let mean_inf = unit.get();
            csv_row(&[
                platform.id().to_string(),
                family.name().to_string(),
                candidates.to_string(),
                f(mean * 1e6, 1),
                f(p99 * 1e6, 1),
                f(mean_inf * 1e3, 2),
                f(100.0 * mean / mean_inf, 3),
            ]);
        }
    }
    println!("\nnote: the controller overhead is measured on real wall-clock time while");
    println!("inference latencies are simulated; the paper's 0.6-1.7% bound includes");
    println!("DNN/power switching costs our simulator does not charge for.");
    println!("ALERT additionally reserves its worst-case measured overhead out of every");
    println!("deadline (OverheadPolicy::Measured), so the scheduler cannot cause misses.");
}
