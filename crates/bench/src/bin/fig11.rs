//! Figure 11 — the distribution of the observed global slowdown factor ξ
//! for image classification on CPU1 under the three environments, overlaid
//! with the Gaussian the Kalman filter assumes.
//!
//! Paper observations to reproduce: the Default distribution is tight
//! (≈[0.99, 1.06]); Compute and Memory are shifted right and widened
//! (≈[1.1, 1.7] / [1.1, 1.9]); none is perfectly Gaussian, yet the
//! Gaussian fit is close enough for the controller (§3.6).

use alert_bench::{banner, csv_header, csv_row, f, write_json};
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::env::EpisodeEnv;
use alert_sched::harness::run_episode;
use alert_sched::AlertScheduler;
use alert_stats::fit::{GaussianFit, KsStatistic};
use alert_stats::units::Seconds;
use alert_stats::Histogram;
use alert_workload::{Goal, InputStream, Scenario, TaskId};

fn main() {
    banner(
        "Figure 11",
        "Distribution of observed ξ for image classification on CPU1",
    );
    let platform = Platform::cpu1();
    let family = ModelFamily::image_classification();
    let stream = InputStream::generate(TaskId::Img2, 1200, 3);
    let goal = Goal::minimize_energy(Seconds(0.5), 0.90);

    let mut out = serde_json::Map::new();
    for scenario in [
        Scenario::default_env(),
        Scenario::compute_env(11),
        Scenario::memory_env(12),
    ] {
        let env = EpisodeEnv::build(&platform, &scenario, &stream, &goal, 77).expect("valid");
        let mut s = AlertScheduler::standard(&family, &platform, goal).expect("paper family fits");
        let ep = run_episode(&mut s, &env, &family, &stream, &goal).expect("episode");
        // Contended scenarios: keep only the samples observed while the
        // co-runner was active (the paper plots the contended regime).
        let xs: Vec<f64> = ep
            .records
            .iter()
            .filter(|r| scenario.name() == "Default" || r.contention_active)
            .filter_map(|r| r.slowdown)
            .collect();

        let fit = GaussianFit::fit(&xs).expect("enough samples");
        let ks = KsStatistic::against_normal(&xs, &fit.distribution()).expect("samples");
        let hist = Histogram::covering(&xs, 24).expect("samples");

        println!("\n--- {} ({} samples) ---", scenario.name(), xs.len());
        println!(
            "  fitted Gaussian: mu = {}, sigma = {}; KS distance = {}",
            f(fit.mu, 4),
            f(fit.sigma, 4),
            f(ks.d, 4)
        );
        csv_header(&["env", "bin_center", "observed_density", "gaussian_density"]);
        let dens = hist.densities();
        for (b, d) in dens.iter().enumerate() {
            let x = hist.bin_center(b);
            csv_row(&[
                scenario.name().to_string(),
                f(x, 4),
                f(*d, 3),
                f(fit.distribution().pdf(x), 3),
            ]);
        }
        out.insert(
            scenario.name().to_string(),
            serde_json::json!({
                "mu": fit.mu, "sigma": fit.sigma, "ks": ks.d,
                "n": xs.len(),
                "lo": hist.lo(), "hi": hist.hi(),
            }),
        );
    }
    write_json("fig11.json", &serde_json::Value::Object(out));
    println!("\npaper shape: Default tight around 1.0; Compute/Memory shifted right");
    println!("and widened; Gaussian imperfect but close (ALERT is robust to this, §3.6).");
}
