//! Figure 6: why single-layer adaptation is insufficient (paper §2.3).
//!
//! Oracle study on CPU1 with the 42-model ImageNet zoo: minimize energy
//! under (deadline × accuracy) constraints using
//! * App-level oracle — best DNN, system default power,
//! * Sys-level oracle — best power, default (most accurate) DNN,
//! * Combined oracle — both free.
//!
//! Paper claims to reproduce: App-only meets every constraint but burns
//! ~60% more energy than Combined; Sys-only cannot meet deadlines below
//! ≈0.3 s at all.

use alert_bench::{banner, csv_header, csv_row, f};
use alert_models::inference;
use alert_models::zoo::imagenet42;
use alert_platform::energy::PeriodEnergy;
use alert_platform::Platform;
use alert_stats::rng::stream_rng;
use alert_stats::units::{Seconds, Watts};
use alert_workload::TaskId;

struct Config {
    model: usize,
    cap: Watts,
}

/// Per-input exhaustive oracle: cheapest config meeting (deadline, accuracy)
/// for this realized input, or `None` if infeasible.
fn best_config(
    zoo: &[alert_models::ModelProfile],
    platform: &Platform,
    configs: &[Config],
    input_factor: f64,
    deadline: Seconds,
    min_acc: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (ci, c) in configs.iter().enumerate() {
        let m = &zoo[c.model];
        if m.quality < min_acc {
            continue;
        }
        let t = inference::profile_latency(m, platform, c.cap)
            .expect("feasible")
            .get()
            * input_factor;
        if t > deadline.get() {
            continue;
        }
        let run_p = inference::run_power(m, platform, c.cap);
        let idle_p = platform.idle_draw(c.cap, None);
        let e = PeriodEnergy::from_draws(run_p, Seconds(t), idle_p, deadline)
            .total()
            .get();
        if best.is_none_or(|(_, cur)| e < cur) {
            best = Some((ci, e));
        }
    }
    best
}

fn main() {
    banner(
        "Figure 6",
        "Minimize energy with latency+accuracy constraints @ CPU1: App vs Sys vs Combined oracles",
    );
    let platform = Platform::cpu1();
    let zoo: Vec<_> = imagenet42()
        .into_iter()
        .filter(|m| platform.supports_footprint(m.footprint_gb))
        .collect();
    let caps = platform.power_settings();
    let default_cap = platform.default_cap();
    let most_accurate = zoo
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.quality.total_cmp(&b.quality))
        .map(|(i, _)| i)
        .expect("non-empty zoo");

    // The three adaptation spaces.
    let app_only: Vec<Config> = (0..zoo.len())
        .map(|m| Config {
            model: m,
            cap: default_cap,
        })
        .collect();
    let sys_only: Vec<Config> = caps
        .iter()
        .map(|&cap| Config {
            model: most_accurate,
            cap,
        })
        .collect();
    let combined: Vec<Config> = (0..zoo.len())
        .flat_map(|m| caps.iter().map(move |&cap| Config { model: m, cap }))
        .collect();

    // 90 inputs, as in the paper.
    let mut rng = stream_rng(2020, "fig6-inputs");
    let inputs: Vec<f64> = (0..90)
        .map(|_| TaskId::Img2.sample_scale(&mut rng) * platform.noise().sample(&mut rng))
        .collect();

    let deadlines = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let accuracies = [0.85, 0.875, 0.90, 0.925, 0.95];

    csv_header(&[
        "deadline_s",
        "min_top5_acc",
        "sys_energy_j",
        "app_energy_j",
        "combined_energy_j",
    ]);
    let mut sums = [0.0_f64; 3];
    let mut feasible_counts = [0usize; 3];
    let mut settings = 0usize;
    let mut app_vs_combined = Vec::new();
    for &d in &deadlines {
        for &a in &accuracies {
            settings += 1;
            let mut avg = [None::<f64>; 3];
            for (si, space) in [&sys_only, &app_only, &combined].iter().enumerate() {
                // A setting counts as met when ≤10% of inputs have no
                // feasible configuration (the Table 4 violation budget);
                // energy averages over the feasible inputs.
                let mut total = 0.0;
                let mut feasible = 0usize;
                for &x in &inputs {
                    if let Some((_, e)) = best_config(&zoo, &platform, space, x, Seconds(d), a) {
                        total += e;
                        feasible += 1;
                    }
                }
                let miss_rate = 1.0 - feasible as f64 / inputs.len() as f64;
                if miss_rate <= 0.10 && feasible > 0 {
                    let e = total / feasible as f64;
                    avg[si] = Some(e);
                    sums[si] += e;
                    feasible_counts[si] += 1;
                }
            }
            if let (Some(app), Some(comb)) = (avg[1], avg[2]) {
                app_vs_combined.push(app / comb);
            }
            let cell = |v: Option<f64>| v.map_or("inf".to_string(), |e| f(e, 2));
            csv_row(&[
                f(d, 1),
                f(a * 100.0, 1),
                cell(avg[0]),
                cell(avg[1]),
                cell(avg[2]),
            ]);
        }
    }

    println!("\nsummary (paper: Sys-only infeasible < 0.3s; App-only ~ +60% energy):");
    println!(
        "  feasible settings — Sys-only: {}/{settings}, App-only: {}/{settings}, Combined: {}/{settings}",
        feasible_counts[0], feasible_counts[1], feasible_counts[2]
    );
    let overhead = app_vs_combined.iter().sum::<f64>() / app_vs_combined.len() as f64;
    println!(
        "  App-only energy vs Combined (feasible settings): {}x",
        f(overhead, 2)
    );
}
