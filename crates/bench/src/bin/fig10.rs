//! Figure 10 — the probabilistic-design ablation: ALERT vs ALERT\*
//! (mean-only estimates) on minimize-error sentence prediction @ CPU1,
//! under the Default and Memory environments, for the three candidate
//! sets (Standard / Traditional-only / Anytime-only).
//!
//! Paper shape: ALERT (full expectations) always at or below ALERT\*'s
//! perplexity; the gap is largest for the Standard set (where the
//! estimator must arbitrate between staircase and step-function quality
//! curves) and under memory contention.
//!
//! Usage: `fig10 [n_inputs] [seed]` (defaults 400 words, 2020).

use alert_bench::{banner, csv_header, csv_row, f, write_json};
use alert_core::alert::AlertParams;
use alert_models::family::CandidateSet;
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::env::EpisodeEnv;
use alert_sched::harness::run_episode;
use alert_sched::AlertScheduler;
use alert_workload::{constraint_grid, InputStream, Objective, Scenario, TaskId};
use std::collections::BTreeMap;

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);

    banner(
        "Figure 10",
        "ALERT vs ALERT* (mean-only) perplexity, sentence prediction @ CPU1",
    );
    let platform = Platform::cpu1();
    let family = ModelFamily::sentence_prediction();
    let stream = InputStream::generate(TaskId::Nlp1, n_inputs, seed);
    let grid = constraint_grid(Objective::MinimizeError, &family, &platform);

    let sets = [
        ("Standard", CandidateSet::Standard),
        ("TradOnly", CandidateSet::TraditionalOnly),
        ("AnyOnly", CandidateSet::AnytimeOnly),
    ];
    let envs = [Scenario::default_env(), Scenario::memory_env(seed)];

    csv_header(&[
        "env",
        "candidate_set",
        "scheme",
        "min_ppl",
        "mean_ppl",
        "max_ppl",
    ]);
    let mut out = BTreeMap::new();
    for scenario in &envs {
        for (set_label, set) in sets {
            for (scheme_label, mean_only) in [("ALERT", false), ("ALERT*", true)] {
                let mut ppls = Vec::new();
                for goal in &grid {
                    let env =
                        EpisodeEnv::build(&platform, scenario, &stream, goal, seed).expect("valid");
                    let params = if mean_only {
                        AlertParams::mean_only()
                    } else {
                        AlertParams::default()
                    };
                    let mut s =
                        AlertScheduler::new(scheme_label, &family, set, &platform, *goal, params)
                            .expect("paper family fits");
                    let ep = run_episode(&mut s, &env, &family, &stream, goal).expect("episode");
                    // Perplexity = -quality score.
                    ppls.push(-ep.summary.avg_quality);
                }
                let min = ppls.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = ppls.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mean = ppls.iter().sum::<f64>() / ppls.len() as f64;
                csv_row(&[
                    scenario.name().to_string(),
                    set_label.to_string(),
                    scheme_label.to_string(),
                    f(min, 1),
                    f(mean, 1),
                    f(max, 1),
                ]);
                out.insert(
                    format!("{}/{set_label}/{scheme_label}", scenario.name()),
                    serde_json::json!({"min": min, "mean": mean, "max": max}),
                );
            }
        }
    }
    write_json("fig10.json", &out);
    println!("\npaper shape: ALERT mean ≤ ALERT* mean in every column; largest gaps");
    println!("for the Standard candidate set and under Memory contention.");
}
