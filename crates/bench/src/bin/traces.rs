//! Trace capture → replay matrix: record every library scenario from a
//! live runtime into the versioned trace format, replay each trace
//! against all registered schemes, and gate the capture→replay loop on
//! **bit-exact** round-trip identity. Written to `BENCH_traces.json` at
//! the workspace root (trace files under `results/traces/`); CI runs a
//! short grid, validates the JSON, and uploads the artifacts.
//!
//! Four guarantees are asserted *inside* the bench (it aborts on the
//! first violation):
//!
//! * **File round-trip identity** — every captured trace, saved to its
//!   `.jsonl` file and loaded back, equals the in-memory capture record
//!   for record (floats compared by bit pattern).
//! * **Capture→replay identity** — replaying a trace recorded from
//!   scenario S via `ArrivalProcess::Trace` reproduces S's per-input
//!   inter-arrival/scale sequence bit-exactly, re-verified for the
//!   rebuilt environment of every scheme cell.
//! * **Counterfactual composability** — the same trace replayed under an
//!   overlay script (cap crash + goal tightening) keeps the recorded
//!   arrival/scale sequence bit-exactly while the overlaid conditions
//!   bind, and produces a full scheme×trace matrix of its own.
//! * **Matrix completeness** — one cell per scheme × trace, in both the
//!   plain-replay and counterfactual matrices.
//!
//! Usage: `traces [n_inputs_per_episode] [seed]` (defaults 240, 2020).

use alert_bench::{banner, csv_header, csv_row, f, results_dir};
use alert_sched::capture::TraceRecorder;
use alert_sched::env::EpisodeEnv;
use alert_sched::runtime::{Runtime, SessionSpec};
use alert_sched::FamilyKind;
use alert_stats::units::Seconds;
use alert_workload::{
    quality_span, Goal, GoalPatch, InputStream, QualitySpan, Scenario, ScenarioScript, ScriptEvent,
    TraceFit, WorkloadTrace,
};
use std::path::PathBuf;
use std::sync::Arc;

/// The matrix rows: every practical paper scheme plus the two oracle
/// references (resolved through the policy registry).
const SCHEMES: [&str; 7] = [
    "ALERT",
    "ALERT-Any",
    "App-only",
    "Sys-only",
    "No-coord",
    "Oracle",
    "OracleStatic",
];

fn base_goal() -> Goal {
    Goal::minimize_energy(Seconds(0.4), 0.9)
}

fn runtime(seed: u64) -> alert_sched::runtime::RuntimeBuilder {
    Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
}

/// Records one scenario through the live runtime's sink; returns the
/// capture and the recorded session id.
fn capture(scenario: &Scenario, n_inputs: usize, seed: u64) -> (WorkloadTrace, u64) {
    let recorder = TraceRecorder::new(scenario.name(), Some(seed));
    let mut rt = runtime(seed)
        .sink(recorder.clone())
        .build()
        .expect("builtin policy resolves");
    let id = rt
        .session(SessionSpec {
            goal: base_goal(),
            scenario: scenario.clone(),
            n_inputs,
            seed: Some(seed),
            policy: Some("ALERT".into()),
        })
        .open()
        .expect("library scenario opens");
    rt.run_to_completion(id).expect("episode runs");
    rt.close(id).expect("session open");
    (recorder.snapshot(), id.0)
}

/// Asserts that `env` replays `trace`'s session sequence bit-exactly.
fn assert_replay_identity(env: &EpisodeEnv, trace: &WorkloadTrace, session: u64, what: &str) {
    let records: Vec<_> = trace.session_records(session).collect();
    assert_eq!(env.len(), records.len(), "{what}: length mismatch");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(
            env.period(i).get().to_bits(),
            r.inter_arrival.get().to_bits(),
            "{what}: inter-arrival diverged at input {i}"
        );
        assert_eq!(
            env.realization(i).scale.to_bits(),
            r.scale.to_bits(),
            "{what}: scale diverged at input {i}"
        );
    }
}

struct Cell {
    scheme: &'static str,
    trace: String,
    counterfactual: bool,
    measured: usize,
    deadline_miss_rate: f64,
    violation_rate: f64,
    avg_energy_j: f64,
    avg_quality: f64,
    disqualified: bool,
}

/// Runs one scheme×trace matrix row on `scenario` (a replay scenario,
/// plain or counterfactual), asserting per cell that a rebuilt
/// environment still replays the trace bit-exactly.
#[allow(clippy::too_many_arguments)]
fn run_row(
    scenario: &Scenario,
    trace: &WorkloadTrace,
    session: u64,
    stream: &InputStream,
    seed: u64,
    span: QualitySpan,
    counterfactual: bool,
    identity_checks: &mut usize,
) -> Vec<Cell> {
    let goal = base_goal();
    let platform = alert_platform::Platform::cpu1();
    let reference = Arc::new(
        EpisodeEnv::build_scoped(&platform, scenario, stream, &goal, seed, Some(span))
            .expect("replay scenario validates"),
    );
    assert_replay_identity(&reference, trace, session, scenario.name());
    SCHEMES
        .iter()
        .map(|&scheme| {
            let rebuilt =
                EpisodeEnv::build_scoped(&platform, scenario, stream, &goal, seed, Some(span))
                    .expect("replay scenario validates");
            assert_eq!(
                rebuilt.realizations(),
                reference.realizations(),
                "environment realization diverged for {scheme} on {}",
                scenario.name()
            );
            assert_replay_identity(&rebuilt, trace, session, scenario.name());
            *identity_checks += 1;

            let mut rt = runtime(seed).build().expect("builtin policy resolves");
            let id = rt
                .session(SessionSpec::external(goal))
                .policy(scheme)
                .on(stream.clone(), reference.clone())
                .open()
                .expect("registered policy builds");
            rt.run_to_completion(id).expect("episode runs");
            let ep = rt.close(id).expect("session open");
            Cell {
                scheme,
                trace: trace.header().source.clone(),
                counterfactual,
                measured: ep.summary.measured,
                deadline_miss_rate: ep.summary.deadline_miss_rate,
                violation_rate: ep.summary.violation_rate(),
                avg_energy_j: ep.summary.avg_energy.get(),
                avg_quality: ep.summary.avg_quality,
                disqualified: ep.summary.disqualified(),
            }
        })
        .collect()
}

/// The counterfactual overlay: a hidden cap crash plus a goal
/// tightening, landing mid-replay.
fn counterfactual_overlay() -> ScenarioScript {
    ScenarioScript::new()
        .with(ScriptEvent::CapStep {
            at: 0.35,
            frac: 0.30,
        })
        .with(ScriptEvent::GoalChange {
            at: 0.5,
            patch: GoalPatch::deadline(0.85),
        })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 50)
        .unwrap_or(240);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);

    banner(
        "Trace capture → replay",
        "Record the scenario library from the runtime, replay as scenarios, gate on bit-exact round trips",
    );
    println!("[{n_inputs} inputs per episode, seed {seed}]\n");

    let library = Scenario::library(seed);
    let stream = InputStream::generate(alert_workload::TaskId::Img2, n_inputs, seed);
    let span = quality_span(
        &FamilyKind::Image.family(),
        &alert_platform::Platform::cpu1(),
    );
    let trace_dir = results_dir().join("traces");
    std::fs::create_dir_all(&trace_dir).expect("create trace dir");

    let mut identity_checks = 0usize;
    let mut cells: Vec<Cell> = Vec::new();
    let mut counter_cells: Vec<Cell> = Vec::new();
    let mut round_trips = Vec::new();

    csv_header(&[
        "trace",
        "scheme",
        "counterfactual",
        "miss_rate",
        "violation_rate",
        "avg_energy_j",
        "avg_quality",
    ]);
    for scenario in &library {
        // 1. Capture the scenario from a live runtime into a trace file.
        let (captured, session) = capture(scenario, n_inputs, seed);
        assert_eq!(captured.len(), n_inputs, "capture covers every input");
        let path = trace_dir.join(format!("{}.jsonl", scenario.name()));
        captured.save(&path).expect("write trace file");

        // 2. Load it back: the disk round trip must be bit-identical.
        let loaded = WorkloadTrace::load(&path).expect("trace file loads");
        assert_eq!(
            captured,
            loaded,
            "disk round trip diverged for {}",
            scenario.name()
        );
        for (a, b) in captured.records().iter().zip(loaded.records()) {
            assert_eq!(
                a.inter_arrival.get().to_bits(),
                b.inter_arrival.get().to_bits()
            );
            assert_eq!(a.scale.to_bits(), b.scale.to_bits());
        }

        // 3. Replay against every scheme; Truncate = exact horizon.
        let source = loaded.replay_source(session).expect("session captured");
        let replay = Scenario::replay(
            format!("Trace:{}", scenario.name()),
            source.clone(),
            TraceFit::Truncate,
        );
        let row = run_row(
            &replay,
            &loaded,
            session,
            &stream,
            seed,
            span,
            false,
            &mut identity_checks,
        );

        // 4. Counterfactual: the same traffic under a cap crash + goal
        //    tightening.
        let counter = Scenario::replay_under(
            format!("Trace:{}+Counterfactual", scenario.name()),
            source,
            TraceFit::Truncate,
            counterfactual_overlay(),
        );
        let counter_row = run_row(
            &counter,
            &loaded,
            session,
            &stream,
            seed,
            span,
            true,
            &mut identity_checks,
        );

        for cell in row.iter().chain(&counter_row) {
            csv_row(&[
                scenario.name().to_string(),
                cell.scheme.to_string(),
                cell.counterfactual.to_string(),
                f(cell.deadline_miss_rate, 4),
                f(cell.violation_rate, 4),
                f(cell.avg_energy_j, 3),
                f(cell.avg_quality, 4),
            ]);
        }
        round_trips.push(serde_json::json!({
            "trace": scenario.name(),
            "file": format!("results/traces/{}.jsonl", scenario.name()),
            "records": captured.len(),
            "session": session,
            "loaded_bit_identical": true,
            "replay_bit_identical": true,
            "counterfactual_bit_identical": true,
        }));
        cells.extend(row);
        counter_cells.extend(counter_row);
    }

    assert_eq!(
        cells.len(),
        SCHEMES.len() * library.len(),
        "replay matrix must be complete"
    );
    assert_eq!(
        counter_cells.len(),
        SCHEMES.len() * library.len(),
        "counterfactual matrix must be complete"
    );
    assert_eq!(identity_checks, cells.len() + counter_cells.len());
    println!(
        "\n[{} traces captured, {} replay cells + {} counterfactual cells, \
         {identity_checks} bit-identity checks]",
        library.len(),
        cells.len(),
        counter_cells.len()
    );

    let cell_json = |c: &Cell| {
        serde_json::json!({
            "scheme": c.scheme,
            "trace": c.trace,
            "counterfactual": c.counterfactual,
            "measured": c.measured,
            "deadline_miss_rate": c.deadline_miss_rate,
            "violation_rate": c.violation_rate,
            "avg_energy_j": c.avg_energy_j,
            "avg_quality": c.avg_quality,
            "disqualified": c.disqualified,
        })
    };
    let doc = serde_json::json!({
        "bench": "trace_replay",
        "n_inputs_per_episode": n_inputs,
        "seed": seed,
        "trace_format_version": alert_workload::trace::TRACE_VERSION,
        "schemes": SCHEMES,
        "traces": library.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
        "round_trip": round_trips,
        "replay_identity_checks": identity_checks,
        "cells": cells.iter().map(cell_json).collect::<Vec<_>>(),
        "counterfactual_cells": counter_cells.iter().map(cell_json).collect::<Vec<_>>(),
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_traces.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_traces.json");
    println!("[matrix written to {}]", path.display());
}
