//! Session-runtime throughput baseline: inputs/sec and per-decision
//! scheduler overhead across a (sessions × workers) grid, written to
//! `BENCH_runtime.json` at the workspace root so later scaling PRs have
//! a machine-readable perf baseline to compare against.
//!
//! `workers == 1` runs the serial `drain_round_robin` (the historical
//! baseline); `workers > 1` runs the sharded parallel executor
//! (`drain_parallel`), whose episodes are bit-identical to the serial
//! drain — the benchmark asserts that on the smallest grid point. The
//! speedup scales with physical cores; `available_parallelism` is
//! recorded in the JSON so single-core CI readings are interpretable.
//!
//! Usage: `runtime [n_inputs_per_session] [seed]` (defaults 300, 2020).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_sched::runtime::{Runtime, SessionSpec};
use alert_sched::{Episode, FamilyKind};
use alert_stats::units::Seconds;
use alert_workload::{Goal, Scenario, SessionId};
use std::time::Instant;

fn scenario_for(i: u64) -> Scenario {
    match i % 3 {
        0 => Scenario::default_env(),
        1 => Scenario::memory_env(300 + i),
        _ => Scenario::compute_env(600 + i),
    }
}

struct Measurement {
    sessions: usize,
    workers: usize,
    inputs_total: usize,
    elapsed_s: f64,
    inputs_per_sec: f64,
    decision_overhead_us_mean: f64,
}

fn build_runtime(sessions: usize, n_inputs: usize, seed: u64) -> Runtime {
    let mut rt = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .policy("ALERT")
        .seed(seed)
        .build()
        .expect("builtin policy");
    for i in 0..sessions as u64 {
        rt.open_session(SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.35 + 0.01 * (i % 6) as f64), 0.9),
            scenario: scenario_for(i),
            n_inputs,
            seed: Some(seed ^ (i.wrapping_mul(0x9e37_79b9))),
            policy: None,
        })
        .expect("open session");
    }
    rt
}

fn measure(sessions: usize, workers: usize, n_inputs: usize, seed: u64) -> Measurement {
    let mut rt = build_runtime(sessions, n_inputs, seed);
    let start = Instant::now();
    let episodes = if workers <= 1 {
        rt.drain_round_robin().expect("drain")
    } else {
        rt.drain_parallel(workers).expect("drain")
    };
    let elapsed = start.elapsed().as_secs_f64();

    let inputs_total: usize = episodes.iter().map(|(_, e)| e.records.len()).sum();
    let overhead_total: f64 = episodes.iter().map(|(_, e)| e.summary.overhead.get()).sum();
    Measurement {
        sessions,
        workers,
        inputs_total,
        elapsed_s: elapsed,
        inputs_per_sec: inputs_total as f64 / elapsed,
        decision_overhead_us_mean: overhead_total / inputs_total as f64 * 1e6,
    }
}

/// Sanity check baked into the benchmark: the parallel drain's episodes
/// are bit-identical to the serial drain's.
fn assert_parallel_matches_serial(n_inputs: usize, seed: u64) {
    let reference: Vec<(SessionId, Episode)> = build_runtime(8, n_inputs, seed)
        .drain_round_robin()
        .expect("drain");
    let parallel = build_runtime(8, n_inputs, seed)
        .drain_parallel(4)
        .expect("drain");
    assert_eq!(reference.len(), parallel.len());
    for ((id, a), (rid, b)) in parallel.iter().zip(&reference) {
        assert_eq!(id, rid);
        assert_eq!(a.records, b.records, "parallel drain diverged on {id}");
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    assert_parallel_matches_serial(n_inputs.min(60), seed);

    banner(
        "Runtime throughput",
        "Concurrent-session serving rate (simulated execution, real scheduling cost)",
    );
    println!("[{n_inputs} inputs per session, seed {seed}, {cores} cores available]\n");
    csv_header(&[
        "sessions",
        "workers",
        "inputs_total",
        "elapsed_s",
        "inputs_per_sec",
        "decision_overhead_us_mean",
    ]);

    let mut results = Vec::new();
    for sessions in [1usize, 8, 64] {
        for workers in [1usize, 2, 4, 8] {
            if workers > sessions {
                continue; // excess workers idle; the grid point is noise
            }
            let m = measure(sessions, workers, n_inputs, seed);
            csv_row(&[
                m.sessions.to_string(),
                m.workers.to_string(),
                m.inputs_total.to_string(),
                f(m.elapsed_s, 3),
                f(m.inputs_per_sec, 0),
                f(m.decision_overhead_us_mean, 2),
            ]);
            results.push(serde_json::json!({
                "sessions": m.sessions,
                "workers": m.workers,
                "inputs_total": m.inputs_total,
                "elapsed_s": m.elapsed_s,
                "inputs_per_sec": m.inputs_per_sec,
                "decision_overhead_us_mean": m.decision_overhead_us_mean,
            }));
        }
    }

    let doc = serde_json::json!({
        "bench": "runtime_sessions",
        "n_inputs_per_session": n_inputs,
        "seed": seed,
        "available_parallelism": cores,
        "results": results,
    });
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runtime.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_runtime.json");
    println!("\n[baseline written to {}]", path.display());
}
