//! Session-runtime throughput baseline: inputs/sec and per-decision
//! scheduler overhead across a (sessions × workers) grid, plus the
//! `decisions` microbench grid (fast-lane vs full-enumeration decision
//! cost under stable and drifting beliefs), written to
//! `BENCH_runtime.json` at the workspace root so later scaling PRs have
//! a machine-readable perf baseline to compare against.
//!
//! `workers == 1` runs the serial `drain_round_robin` (the historical
//! baseline); `workers > 1` runs the sharded parallel executor
//! (`drain_parallel`), whose episodes are bit-identical to the serial
//! drain — the benchmark asserts that on the smallest grid point. The
//! speedup scales with physical cores; `available_parallelism` is
//! recorded in the JSON so single-core CI readings are interpretable.
//!
//! The decisions grid drives one `AlertController` through a decide →
//! observe loop and, for **every** decision, replays the reference full
//! enumeration at the same belief and asserts the two selections are
//! bit-identical — the cached-vs-enumerated guard CI relies on. The
//! verification pass walks the *identical* warmup + measurement
//! trajectory the timing pass then re-walks unasserted (the controller
//! is deterministic), so the assertion covers every timed decision
//! without polluting the measurement.
//!
//! Usage: `runtime [n_inputs_per_session] [seed]` (defaults 300, 2020).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_core::alert::{AlertController, AlertParams, Observation, OverheadPolicy};
use alert_core::select::select_with_period;
use alert_sched::alert::build_table;
use alert_sched::runtime::{Runtime, RuntimeBuilder, SessionSpec};
use alert_sched::telemetry::{FlightRecorder, MetricsCollector, TelemetryConfig};
use alert_sched::{Episode, FamilyKind};
use alert_stats::telemetry::Scope;
use alert_stats::units::{Joules, Seconds, Watts};
use alert_workload::{Goal, Scenario, SessionId};
use std::time::Instant;

fn scenario_for(i: u64) -> Scenario {
    match i % 3 {
        0 => Scenario::default_env(),
        1 => Scenario::memory_env(300 + i),
        _ => Scenario::compute_env(600 + i),
    }
}

struct Measurement {
    sessions: usize,
    workers: usize,
    inputs_total: usize,
    elapsed_s: f64,
    inputs_per_sec: f64,
    decision_overhead_us_mean: f64,
}

fn build_runtime(sessions: usize, n_inputs: usize, seed: u64) -> Runtime {
    build_runtime_with(sessions, n_inputs, seed, |b| b)
}

fn build_runtime_with(
    sessions: usize,
    n_inputs: usize,
    seed: u64,
    configure: impl FnOnce(RuntimeBuilder) -> RuntimeBuilder,
) -> Runtime {
    let builder = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .policy("ALERT")
        .seed(seed);
    let mut rt = configure(builder).build().expect("builtin policy");
    for i in 0..sessions as u64 {
        rt.session(SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.35 + 0.01 * (i % 6) as f64), 0.9),
            scenario: scenario_for(i),
            n_inputs,
            seed: Some(seed ^ (i.wrapping_mul(0x9e37_79b9))),
            policy: None,
        })
        .open()
        .expect("open session");
    }
    rt
}

fn measure(sessions: usize, workers: usize, n_inputs: usize, seed: u64) -> Measurement {
    let mut rt = build_runtime(sessions, n_inputs, seed);
    let start = Instant::now();
    let episodes = if workers <= 1 {
        rt.drain_round_robin().expect("drain")
    } else {
        rt.drain_parallel(workers).expect("drain")
    };
    let elapsed = start.elapsed().as_secs_f64();

    let inputs_total: usize = episodes.iter().map(|(_, e)| e.records.len()).sum();
    let overhead_total: f64 = episodes.iter().map(|(_, e)| e.summary.overhead.get()).sum();
    Measurement {
        sessions,
        workers,
        inputs_total,
        elapsed_s: elapsed,
        inputs_per_sec: inputs_total as f64 / elapsed,
        decision_overhead_us_mean: overhead_total / inputs_total as f64 * 1e6,
    }
}

/// One decision-bench grid point.
struct DecisionMeasurement {
    env: &'static str,
    candidates: usize,
    live_after_pruning: usize,
    warmup: usize,
    decisions: usize,
    decision_us_fast: f64,
    decision_us_full: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    verified_identical: usize,
}

/// The belief-driving observation for step `i`: `stable` replays the
/// profile exactly (the environment the paper calls quiescent — the
/// Kalman state converges and the decision cache takes over); `drift`
/// perturbs every observation so the belief moves on every input and the
/// cache never hits (measuring the pruned SoA enumeration itself).
fn observation_for(env: &str, i: usize, profile: Seconds, cap: Watts) -> Observation {
    let factor = if env == "stable" {
        1.0
    } else {
        // Deterministic bounded wobble, different every step.
        1.3 + 0.25 * (((i as f64) * 0.7).sin())
    };
    Observation {
        latency: profile * factor,
        profile_equivalent: profile,
        idle_power: Some(Watts(6.0)),
        idle_cap: cap,
    }
}

/// Drives `controller` for `n` decide→observe steps starting at
/// observation phase `start`, returning the total fast-lane decision
/// time; when `verify` is set, every decision is replayed through the
/// reference full enumeration and asserted bit-identical (the
/// cached-vs-enumerated guard).
fn drive_decisions(
    controller: &mut AlertController,
    goal: &Goal,
    env: &'static str,
    start: usize,
    n: usize,
    verify: bool,
) -> (f64, f64, usize) {
    let mut fast_s = 0.0;
    let mut full_s = 0.0;
    let mut verified = 0;
    for i in start..start + n {
        let t0 = Instant::now();
        let sel = controller.decide(goal).expect("valid goal");
        let t1 = Instant::now();
        // Reference full enumeration at the same belief and effective
        // deadline (OverheadPolicy::None keeps it equal to the goal's).
        let reference = select_with_period(
            controller.table(),
            &controller.slowdown().distribution(),
            controller.idle_ratio(),
            &goal.with_deadline(sel.deadline),
            goal.deadline,
            controller.params().mode,
        )
        .expect("valid goal");
        let t2 = Instant::now();
        fast_s += (t1 - t0).as_secs_f64();
        full_s += (t2 - t1).as_secs_f64();
        if verify {
            assert_eq!(
                sel, reference,
                "fast-lane selection diverged from full enumeration at {env} step {i}"
            );
            verified += 1;
        }
        let profile = controller.table().t_prof_stage(sel.candidate);
        let cap = controller.table().cap(sel.candidate.power);
        controller.observe(&observation_for(env, i, profile, cap));
    }
    (fast_s, full_s, verified)
}

/// The `bench decisions` grid: per-decision scheduler cost of the fast
/// lane (SoA + pruning + belief-banded cache) against the reference full
/// enumeration, on the CPU1 × image-family candidate table.
fn bench_decisions(n_decisions: usize) -> Vec<DecisionMeasurement> {
    let family = FamilyKind::Image.family();
    let platform = alert_platform::Platform::cpu1();
    let (table, _) = build_table(&family, &platform).expect("paper table builds");
    let goal = Goal::minimize_error(Seconds(0.35), Joules(14.0));
    let params = AlertParams {
        // No overhead reserve: keeps the effective deadline equal to the
        // goal deadline so the reference enumeration call is exact, and
        // keeps the run deterministic.
        overhead: OverheadPolicy::None,
        ..Default::default()
    };
    let mut out = Vec::new();
    let warmup = (n_decisions / 4).max(64);
    for env in ["stable", "drift"] {
        // Verification pass: one continuous run over the *identical*
        // warmup + measurement trajectory the timing pass walks below
        // (the controller is deterministic, so the belief states match
        // step for step) — every decision the timing pass will make is
        // replayed against the reference enumeration here.
        let mut ctl = AlertController::new(table.clone(), params).expect("valid params");
        let (_, _, verified) = drive_decisions(&mut ctl, &goal, env, 0, warmup + n_decisions, true);
        assert_eq!(verified, warmup + n_decisions);

        // Timing pass: fresh controller, same observation phases —
        // unverified warmup to converge the belief, then the measured
        // window continuing at phase `warmup`.
        let mut ctl = AlertController::new(table.clone(), params).expect("valid params");
        let _ = drive_decisions(&mut ctl, &goal, env, 0, warmup, false);
        let stats_before = ctl.cache_stats();
        let (fast_s, full_s, _) = drive_decisions(&mut ctl, &goal, env, warmup, n_decisions, false);
        let stats = ctl.cache_stats();
        out.push(DecisionMeasurement {
            env,
            candidates: ctl.lane().candidate_count(),
            live_after_pruning: ctl.lane().live_count(),
            warmup,
            decisions: n_decisions,
            decision_us_fast: fast_s / n_decisions as f64 * 1e6,
            decision_us_full: full_s / n_decisions as f64 * 1e6,
            speedup: full_s / fast_s,
            cache_hits: stats.hits - stats_before.hits,
            cache_misses: stats.misses - stats_before.misses,
            verified_identical: verified,
        });
    }
    out
}

/// Churn at scale: thousands of sessions opened and closed in waves
/// against a `ShardedRuntime` while one measured session keeps serving.
struct ChurnMeasurement {
    workers: usize,
    waves: usize,
    background_sessions: usize,
    opens_per_sec: f64,
    closes_per_sec: f64,
    isolation_verified: bool,
}

/// Opens `background` sessions in `waves` waves (closing each previous
/// wave as the next lands) against a 4-shard runtime, measuring
/// open/close throughput, while a measured ALERT session is stepped to
/// completion in between — its records must be bit-identical to an
/// undisturbed run (the session-isolation guarantee, now at thousands of
/// sessions instead of tens).
fn bench_churn(n_inputs: usize, seed: u64) -> ChurnMeasurement {
    let workers = 4;
    let waves = 8;
    let per_wave = ((n_inputs * 10).clamp(1_000, 4_000) / waves).max(1);
    let measured_spec = SessionSpec {
        goal: Goal::minimize_energy(Seconds(0.4), 0.9),
        scenario: Scenario::memory_env(seed),
        n_inputs,
        seed: Some(seed),
        policy: Some("ALERT".into()),
    };
    // Tiny background streams: the open/close path itself is what is
    // being metered (stream + env + scheduler construction, routing,
    // fold-and-close), not their serving time.
    let bg_template = measured_spec.clone();
    let bg_spec = move |k: u64| SessionSpec {
        n_inputs: 2,
        seed: Some(seed ^ (0x9e37_79b9_u64.wrapping_mul(k + 1))),
        ..bg_template.clone()
    };

    // Undisturbed reference on a serial runtime.
    let mut rt = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .build()
        .expect("builtin policy");
    let id = rt.session(measured_spec.clone()).open().expect("open");
    rt.run_to_completion(id).expect("episode runs");
    let reference = rt.close(id).expect("close reference session").records;

    // Churned run.
    let mut sharded = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .seed(seed)
        .build_sharded(workers)
        .expect("builtin policy");
    let measured = sharded.session(measured_spec).open().expect("open");
    let mut background: std::collections::VecDeque<SessionId> = std::collections::VecDeque::new();
    let steps_per_wave = n_inputs / waves + 1;
    let (mut opened, mut closed) = (0u64, 0usize);
    let (mut open_s, mut close_s) = (0.0f64, 0.0f64);
    let mut measured_records = Vec::with_capacity(n_inputs);
    for _ in 0..waves {
        let t0 = Instant::now();
        for _ in 0..per_wave {
            background.push_back(sharded.session(bg_spec(opened)).open().expect("open"));
            opened += 1;
        }
        open_s += t0.elapsed().as_secs_f64();
        // At peak churn every shard must be carrying background load
        // (round-robin placement keeps the shards balanced).
        let counts = sharded.shard_session_counts();
        assert!(
            counts.iter().all(|&c| c > 0),
            "unbalanced shards under churn: {counts:?}"
        );
        // The measured session keeps serving through the wave.
        for _ in 0..steps_per_wave {
            if let Some(r) = sharded.submit(measured).expect("submit measured session") {
                measured_records.push(r);
            }
        }
        // The previous wave drains: at most one wave stays alive.
        let t0 = Instant::now();
        while background.len() > per_wave {
            let bg = background.pop_front().expect("len checked");
            sharded.close(bg).expect("close background session");
            closed += 1;
        }
        close_s += t0.elapsed().as_secs_f64();
    }
    // Finish the measured stream, then drain the remaining background.
    while let Some(r) = sharded.submit(measured).expect("submit measured session") {
        measured_records.push(r);
    }
    let churned = sharded
        .close(measured)
        .expect("close measured session")
        .records;
    let t0 = Instant::now();
    for bg in background {
        sharded.close(bg).expect("close background session");
        closed += 1;
    }
    close_s += t0.elapsed().as_secs_f64();

    assert_eq!(
        measured_records, churned,
        "submit records must match the closed episode's"
    );
    assert_eq!(
        churned, reference,
        "churn at scale must not perturb the measured session (isolation)"
    );
    ChurnMeasurement {
        workers,
        waves,
        background_sessions: opened as usize,
        opens_per_sec: opened as f64 / open_s,
        closes_per_sec: closed as f64 / close_s,
        isolation_verified: true,
    }
}

/// Telemetry overhead: the same session grid drained three ways —
/// telemetry off with no sinks (the baseline), telemetry Full with no
/// sinks (the hot-path short-circuit must keep throughput at baseline),
/// and telemetry Full with a metrics collector plus flight recorder
/// attached (records must stay bit-identical and CPU-metered decision
/// overhead within 10% of the baseline).
struct TelemetryMeasurement {
    sessions: usize,
    inputs_total: usize,
    baseline_inputs_per_sec: f64,
    no_sink_full_inputs_per_sec: f64,
    instrumented_inputs_per_sec: f64,
    baseline_overhead_us: f64,
    instrumented_overhead_us: f64,
    /// instrumented / baseline decision overhead (CPU time, not wall).
    overhead_ratio: f64,
    decisions: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
    deadline_misses: u64,
    flight_recording_cost_s: f64,
    records_identical: bool,
}

/// Drains the standard grid once, returning (episodes, wall seconds).
fn timed_drain(
    sessions: usize,
    n_inputs: usize,
    seed: u64,
    configure: impl FnOnce(RuntimeBuilder) -> RuntimeBuilder,
) -> (Vec<(SessionId, Episode)>, f64) {
    let mut rt = build_runtime_with(sessions, n_inputs, seed, configure);
    let start = Instant::now();
    let episodes = rt.drain_round_robin().expect("drain");
    (episodes, start.elapsed().as_secs_f64())
}

/// Best wall-clock rate and lowest CPU overhead over `reps` repetitions
/// — best-of filtering keeps CI scheduler hiccups out of the ratios.
fn best_of(
    reps: usize,
    sessions: usize,
    n_inputs: usize,
    seed: u64,
    configure: impl Fn(RuntimeBuilder) -> RuntimeBuilder,
) -> (Vec<(SessionId, Episode)>, f64, f64) {
    let mut best_rate = 0.0f64;
    let mut best_overhead = f64::INFINITY;
    let mut episodes = Vec::new();
    for _ in 0..reps {
        let (eps, elapsed) = timed_drain(sessions, n_inputs, seed, &configure);
        let inputs: usize = eps.iter().map(|(_, e)| e.records.len()).sum();
        best_rate = best_rate.max(inputs as f64 / elapsed);
        let overhead: f64 = eps.iter().map(|(_, e)| e.summary.overhead.get()).sum();
        best_overhead = best_overhead.min(overhead);
        episodes = eps;
    }
    (episodes, best_rate, best_overhead)
}

fn bench_telemetry(n_inputs: usize, seed: u64) -> (TelemetryMeasurement, String) {
    const REPS: usize = 3;
    let sessions = 8;

    // Baseline: telemetry off, no sinks.
    let (reference, baseline_rate, baseline_overhead) =
        best_of(REPS, sessions, n_inputs, seed, |b| b);
    let inputs_total: usize = reference.iter().map(|(_, e)| e.records.len()).sum();

    // Telemetry configured Full but no sink installed: the empty-sink
    // short-circuit must keep the hot path free of event construction.
    let (_, no_sink_rate, _) = best_of(REPS, sessions, n_inputs, seed, |b| {
        b.telemetry(TelemetryConfig::Full)
    });
    assert!(
        no_sink_rate >= baseline_rate * 0.8,
        "no-sink throughput regressed under TelemetryConfig::Full: \
         {no_sink_rate:.0} vs baseline {baseline_rate:.0} inputs/s"
    );

    // Fully instrumented: metrics collector + flight recorder attached.
    // Fresh sinks per repetition so the kept registry reflects exactly
    // one drain of the grid.
    let mut instrumented_rate = 0.0f64;
    let mut instrumented_overhead = f64::INFINITY;
    let mut instrumented = Vec::new();
    let mut collector = MetricsCollector::new();
    let mut recorder = FlightRecorder::with_capacity(32);
    for _ in 0..REPS {
        collector = MetricsCollector::new();
        recorder = FlightRecorder::with_capacity(32);
        let (c, r) = (collector.clone(), recorder.clone());
        let (eps, elapsed) = timed_drain(sessions, n_inputs, seed, move |b| {
            b.telemetry(TelemetryConfig::Full).sink(c).sink(r)
        });
        let inputs: usize = eps.iter().map(|(_, e)| e.records.len()).sum();
        instrumented_rate = instrumented_rate.max(inputs as f64 / elapsed);
        let overhead: f64 = eps.iter().map(|(_, e)| e.summary.overhead.get()).sum();
        instrumented_overhead = instrumented_overhead.min(overhead);
        instrumented = eps;
    }

    // Non-perturbation, asserted right here in the artifact's source:
    // instrumented records are bit-identical to the baseline's.
    assert_eq!(reference.len(), instrumented.len());
    for ((id, a), (rid, b)) in instrumented.iter().zip(&reference) {
        assert_eq!(id, rid);
        assert_eq!(
            a.records, b.records,
            "telemetry perturbed session {id}'s records"
        );
    }

    // The acceptance bound: CPU-metered decision overhead within 10% of
    // the telemetry-off baseline (emission lives outside the metered
    // decision window, so this measures the claim directly).
    let overhead_ratio = instrumented_overhead / baseline_overhead;
    assert!(
        overhead_ratio <= 1.10,
        "decision overhead with telemetry is {overhead_ratio:.3}x the \
         telemetry-off baseline (> 1.10x)"
    );

    let registry = collector.registry();
    let hits = registry.counter("cache_hits", Scope::Global);
    let misses = registry.counter("cache_misses", Scope::Global);
    let decisions = registry.counter("decisions", Scope::Global);
    let m = TelemetryMeasurement {
        sessions,
        inputs_total,
        baseline_inputs_per_sec: baseline_rate,
        no_sink_full_inputs_per_sec: no_sink_rate,
        instrumented_inputs_per_sec: instrumented_rate,
        baseline_overhead_us: baseline_overhead / inputs_total as f64 * 1e6,
        instrumented_overhead_us: instrumented_overhead / inputs_total as f64 * 1e6,
        overhead_ratio,
        decisions,
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        deadline_misses: registry.counter("deadline_misses", Scope::Global),
        flight_recording_cost_s: recorder.recording_cost().get(),
        records_identical: true,
    };
    (m, registry.snapshot().to_json())
}

/// Sanity check baked into the benchmark: the parallel drain's episodes
/// are bit-identical to the serial drain's.
fn assert_parallel_matches_serial(n_inputs: usize, seed: u64) {
    let reference: Vec<(SessionId, Episode)> = build_runtime(8, n_inputs, seed)
        .drain_round_robin()
        .expect("drain");
    let parallel = build_runtime(8, n_inputs, seed)
        .drain_parallel(4)
        .expect("drain");
    assert_eq!(reference.len(), parallel.len());
    for ((id, a), (rid, b)) in parallel.iter().zip(&reference) {
        assert_eq!(id, rid);
        assert_eq!(a.records, b.records, "parallel drain diverged on {id}");
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    assert_parallel_matches_serial(n_inputs.min(60), seed);

    banner(
        "Runtime throughput",
        "Concurrent-session serving rate (simulated execution, real scheduling cost)",
    );
    println!("[{n_inputs} inputs per session, seed {seed}, {cores} cores available]\n");
    csv_header(&[
        "sessions",
        "workers",
        "inputs_total",
        "elapsed_s",
        "inputs_per_sec",
        "decision_overhead_us_mean",
    ]);

    let mut results = Vec::new();
    for sessions in [1usize, 8, 64] {
        for workers in [1usize, 2, 4, 8] {
            if workers > sessions {
                continue; // excess workers idle; the grid point is noise
            }
            let m = measure(sessions, workers, n_inputs, seed);
            csv_row(&[
                m.sessions.to_string(),
                m.workers.to_string(),
                m.inputs_total.to_string(),
                f(m.elapsed_s, 3),
                f(m.inputs_per_sec, 0),
                f(m.decision_overhead_us_mean, 2),
            ]);
            results.push(serde_json::json!({
                "sessions": m.sessions,
                "workers": m.workers,
                "inputs_total": m.inputs_total,
                "elapsed_s": m.elapsed_s,
                "inputs_per_sec": m.inputs_per_sec,
                "decision_overhead_us_mean": m.decision_overhead_us_mean,
            }));
        }
    }

    // The decision-path microbench: fast lane vs full enumeration, with
    // every selection verified bit-identical between the two paths.
    banner(
        "Decision fast lane",
        "Per-decision scheduler cost: SoA+pruning+cache vs full enumeration (selections verified identical)",
    );
    csv_header(&[
        "env",
        "decisions",
        "decision_us_fast",
        "decision_us_full",
        "speedup",
        "cache_hits",
        "cache_misses",
    ]);
    let decision_grid = bench_decisions((n_inputs * 4).clamp(400, 4000));
    let mut decision_results = Vec::new();
    for m in &decision_grid {
        csv_row(&[
            m.env.to_string(),
            m.decisions.to_string(),
            f(m.decision_us_fast, 3),
            f(m.decision_us_full, 3),
            f(m.speedup, 2),
            m.cache_hits.to_string(),
            m.cache_misses.to_string(),
        ]);
        decision_results.push(serde_json::json!({
            "env": m.env,
            "candidates": m.candidates,
            "live_after_pruning": m.live_after_pruning,
            "warmup": m.warmup,
            "decisions": m.decisions,
            "decision_overhead_us_mean": m.decision_us_fast,
            "decision_overhead_us_mean_full_enum": m.decision_us_full,
            "speedup": m.speedup,
            "cache_hits": m.cache_hits,
            "cache_misses": m.cache_misses,
            "verified_identical": m.verified_identical,
        }));
    }

    // Churn at scale: thousands of open/close operations against the
    // sharded runtime, isolation asserted on a measured session.
    banner(
        "Churn at scale",
        "Session open/close throughput under wave churn on the sharded runtime",
    );
    let churn = bench_churn(n_inputs.min(120), seed);
    csv_header(&[
        "workers",
        "waves",
        "background_sessions",
        "opens_per_sec",
        "closes_per_sec",
    ]);
    csv_row(&[
        churn.workers.to_string(),
        churn.waves.to_string(),
        churn.background_sessions.to_string(),
        f(churn.opens_per_sec, 0),
        f(churn.closes_per_sec, 0),
    ]);
    println!(
        "[churn isolation verified across {} background sessions]",
        churn.background_sessions
    );

    // Telemetry overhead: off vs no-sink-Full vs fully instrumented,
    // with bit-identity and the 10% overhead bound asserted inside.
    banner(
        "Telemetry overhead",
        "Decision cost and throughput with the observability layer off / short-circuited / fully on",
    );
    let (tm, snapshot_json) = bench_telemetry(n_inputs.min(120), seed);
    csv_header(&[
        "baseline_ips",
        "no_sink_full_ips",
        "instrumented_ips",
        "overhead_ratio",
        "cache_hit_rate",
        "deadline_misses",
    ]);
    csv_row(&[
        f(tm.baseline_inputs_per_sec, 0),
        f(tm.no_sink_full_inputs_per_sec, 0),
        f(tm.instrumented_inputs_per_sec, 0),
        f(tm.overhead_ratio, 3),
        f(tm.cache_hit_rate, 4),
        tm.deadline_misses.to_string(),
    ]);
    println!(
        "[records bit-identical with telemetry on; overhead ratio {:.3} <= 1.10]",
        tm.overhead_ratio
    );
    let snapshot_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("TELEMETRY_runtime.json");
    std::fs::write(&snapshot_path, &snapshot_json).expect("write TELEMETRY_runtime.json");
    println!("[metrics snapshot written to {}]", snapshot_path.display());

    let doc = serde_json::json!({
        "bench": "runtime_sessions",
        "n_inputs_per_session": n_inputs,
        "seed": seed,
        "available_parallelism": cores,
        "results": results,
        "decisions": decision_results,
        "telemetry": serde_json::json!({
            "sessions": tm.sessions,
            "inputs_total": tm.inputs_total,
            "baseline_inputs_per_sec": tm.baseline_inputs_per_sec,
            "no_sink_full_inputs_per_sec": tm.no_sink_full_inputs_per_sec,
            "instrumented_inputs_per_sec": tm.instrumented_inputs_per_sec,
            "baseline_overhead_us": tm.baseline_overhead_us,
            "instrumented_overhead_us": tm.instrumented_overhead_us,
            "overhead_ratio": tm.overhead_ratio,
            "decisions": tm.decisions,
            "cache_hits": tm.cache_hits,
            "cache_misses": tm.cache_misses,
            "cache_hit_rate": tm.cache_hit_rate,
            "deadline_misses": tm.deadline_misses,
            "flight_recording_cost_s": tm.flight_recording_cost_s,
            "records_identical": tm.records_identical,
        }),
        "churn": serde_json::json!({
            "workers": churn.workers,
            "waves": churn.waves,
            "background_sessions": churn.background_sessions,
            "opens_per_sec": churn.opens_per_sec,
            "closes_per_sec": churn.closes_per_sec,
            "isolation_verified": churn.isolation_verified,
        }),
    });
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runtime.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_runtime.json");
    println!("\n[baseline written to {}]", path.display());
}
