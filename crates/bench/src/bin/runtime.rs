//! Session-runtime throughput baseline: inputs/sec and per-decision
//! scheduler overhead at 1, 8 and 64 concurrent sessions, written to
//! `BENCH_runtime.json` at the workspace root so later scaling PRs have
//! a machine-readable perf baseline to compare against.
//!
//! Usage: `runtime [n_inputs_per_session] [seed]` (defaults 300, 2020).

use alert_bench::{banner, csv_header, csv_row, f};
use alert_sched::runtime::{Runtime, SessionSpec};
use alert_sched::FamilyKind;
use alert_stats::units::Seconds;
use alert_workload::{Goal, Scenario};
use std::time::Instant;

fn scenario_for(i: u64) -> Scenario {
    match i % 3 {
        0 => Scenario::default_env(),
        1 => Scenario::memory_env(300 + i),
        _ => Scenario::compute_env(600 + i),
    }
}

struct Measurement {
    sessions: usize,
    inputs_total: usize,
    elapsed_s: f64,
    inputs_per_sec: f64,
    decision_overhead_us_mean: f64,
}

fn measure(sessions: usize, n_inputs: usize, seed: u64) -> Measurement {
    let mut rt = Runtime::builder()
        .platform(alert_platform::PlatformId::Cpu1)
        .family(FamilyKind::Image)
        .policy("ALERT")
        .seed(seed)
        .build()
        .expect("builtin policy");
    for i in 0..sessions as u64 {
        rt.open_session(SessionSpec {
            goal: Goal::minimize_energy(Seconds(0.35 + 0.01 * (i % 6) as f64), 0.9),
            scenario: scenario_for(i),
            n_inputs,
            seed: Some(seed ^ (i.wrapping_mul(0x9e37_79b9))),
            policy: None,
        })
        .expect("open session");
    }
    let start = Instant::now();
    let episodes = rt.drain_round_robin().expect("drain");
    let elapsed = start.elapsed().as_secs_f64();

    let inputs_total: usize = episodes.iter().map(|(_, e)| e.records.len()).sum();
    let overhead_total: f64 = episodes.iter().map(|(_, e)| e.summary.overhead.get()).sum();
    Measurement {
        sessions,
        inputs_total,
        elapsed_s: elapsed,
        inputs_per_sec: inputs_total as f64 / elapsed,
        decision_overhead_us_mean: overhead_total / inputs_total as f64 * 1e6,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_inputs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(300);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2020);

    banner(
        "Runtime throughput",
        "Concurrent-session serving rate (simulated execution, real scheduling cost)",
    );
    println!("[{n_inputs} inputs per session, seed {seed}]\n");
    csv_header(&[
        "sessions",
        "inputs_total",
        "elapsed_s",
        "inputs_per_sec",
        "decision_overhead_us_mean",
    ]);

    let mut results = Vec::new();
    for sessions in [1usize, 8, 64] {
        let m = measure(sessions, n_inputs, seed);
        csv_row(&[
            m.sessions.to_string(),
            m.inputs_total.to_string(),
            f(m.elapsed_s, 3),
            f(m.inputs_per_sec, 0),
            f(m.decision_overhead_us_mean, 2),
        ]);
        results.push(serde_json::json!({
            "sessions": m.sessions,
            "inputs_total": m.inputs_total,
            "elapsed_s": m.elapsed_s,
            "inputs_per_sec": m.inputs_per_sec,
            "decision_overhead_us_mean": m.decision_overhead_us_mean,
        }));
    }

    let doc = serde_json::json!({
        "bench": "runtime_sessions",
        "n_inputs_per_session": n_inputs,
        "seed": seed,
        "results": results,
    });
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runtime.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("serialize"),
    )
    .expect("write BENCH_runtime.json");
    println!("\n[baseline written to {}]", path.display());
}
