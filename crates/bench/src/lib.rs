//! Shared helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index). They print human-readable tables
//! plus machine-readable CSV blocks, and write JSON result files under
//! `results/` at the workspace root so `EXPERIMENTS.md` can reference
//! stable artifacts.

use std::fs;
use std::path::PathBuf;

/// Prints a banner for one experiment.
pub fn banner(id: &str, caption: &str) {
    println!("==================================================================");
    println!("{id}: {caption}");
    println!("==================================================================");
}

/// Prints a CSV block header (marks machine-readable output).
pub fn csv_header(columns: &[&str]) {
    println!("csv:{}", columns.join(","));
}

/// Prints one CSV row.
pub fn csv_row(fields: &[String]) {
    println!("csv:{}", fields.join(","));
}

/// The `results/` directory at the workspace root, created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a serializable value as pretty JSON under `results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    fs::write(&path, json).expect("write results file");
    println!("[results written to {}]", path.display());
}

/// Formats a float with fixed precision, aligning tables.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn format_helper() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(0.5, 3), "0.500");
    }
}
