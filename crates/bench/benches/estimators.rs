//! Criterion benches of the estimator kernels on the controller's hot
//! path: Kalman updates, normal CDF / inverse CDF, expected quality, and
//! the full candidate-set selection scan.

use alert_core::alert::ProbabilityMode;
use alert_core::config::{CandidateModel, StagePoint};
use alert_core::{select, Goal};
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::alert::build_table;
use alert_stats::kalman::{AdaptiveKalman, IdlePowerFilter};
use alert_stats::normal::{inv_phi, phi, Normal};
use alert_stats::units::Seconds;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("adaptive_kalman_update", |b| {
        let mut f = AdaptiveKalman::with_defaults();
        let mut x = 1.0;
        b.iter(|| {
            x = if x > 1.2 { 1.0 } else { x + 0.01 };
            black_box(f.update(black_box(x)))
        })
    });
    c.bench_function("idle_filter_update", |b| {
        let mut f = IdlePowerFilter::new(0.3);
        b.iter(|| black_box(f.update(black_box(0.25))))
    });
}

fn bench_normal(c: &mut Criterion) {
    c.bench_function("normal_cdf", |b| {
        let mut x = -4.0;
        b.iter(|| {
            x = if x > 4.0 { -4.0 } else { x + 0.001 };
            black_box(phi(black_box(x)))
        })
    });
    c.bench_function("normal_inv_cdf", |b| {
        let mut p = 0.01;
        b.iter(|| {
            p = if p > 0.99 { 0.01 } else { p + 0.0001 };
            black_box(inv_phi(black_box(p)))
        })
    });
}

fn bench_expected_quality(c: &mut Criterion) {
    let model = CandidateModel::anytime(
        "any",
        vec![
            StagePoint {
                frac: 0.18,
                quality: 0.858,
            },
            StagePoint {
                frac: 0.35,
                quality: 0.904,
            },
            StagePoint {
                frac: 0.62,
                quality: 0.932,
            },
            StagePoint {
                frac: 1.00,
                quality: 0.948,
            },
        ],
        0.005,
    );
    let xi = Normal::new(1.2, 0.12);
    c.bench_function("expected_quality_anytime4", |b| {
        b.iter(|| {
            black_box(alert_core::quality::expected_quality(
                black_box(&xi),
                black_box(&model),
                Seconds(0.35),
                3,
                Seconds(0.4),
            ))
        })
    });
}

fn bench_selection_scan(c: &mut Criterion) {
    let family = ModelFamily::image_classification();
    let platform = Platform::cpu1();
    let (table, _) = build_table(&family, &platform).expect("paper family fits");
    let xi = Normal::new(1.1, 0.08);
    let goal = Goal::minimize_energy(Seconds(0.3), 0.92);
    c.bench_function("select_full_table_135", |b| {
        b.iter(|| {
            black_box(select::select(
                black_box(&table),
                black_box(&xi),
                0.25,
                black_box(&goal),
                ProbabilityMode::Full,
            ))
        })
    });
    let goal_pr = goal.with_prob_threshold(0.95);
    c.bench_function("select_full_table_135_prth", |b| {
        b.iter(|| {
            black_box(select::select(
                black_box(&table),
                black_box(&xi),
                0.25,
                black_box(&goal_pr),
                ProbabilityMode::Full,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_kalman,
    bench_normal,
    bench_expected_quality,
    bench_selection_scan
);
criterion_main!(benches);
