//! Criterion benches of the ALERT controller's per-input cost — the
//! quantity behind the paper's §4 overhead claim (0.6–1.7% of an input's
//! inference time).

use alert_core::alert::{AlertParams, Observation};
use alert_core::{AlertController, Goal};
use alert_models::ModelFamily;
use alert_platform::Platform;
use alert_sched::alert::build_table;
use alert_stats::units::Watts;
use alert_workload::constraints::deadline_unit;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn controller_for(family: &ModelFamily, platform: &Platform) -> (AlertController, Goal) {
    let (table, _) = build_table(family, platform).expect("paper family fits");
    let unit = deadline_unit(family, platform);
    let goal = Goal::minimize_error(unit, Watts(35.0) * unit);
    (
        AlertController::new(table, AlertParams::default()).expect("valid params"),
        goal,
    )
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("alert_decide");
    for (label, family, platform) in [
        (
            "image_cpu1",
            ModelFamily::image_classification(),
            Platform::cpu1(),
        ),
        (
            "image_gpu",
            ModelFamily::image_classification(),
            Platform::gpu(),
        ),
        (
            "sentence_cpu2",
            ModelFamily::sentence_prediction(),
            Platform::cpu2(),
        ),
    ] {
        let (mut ctl, goal) = controller_for(&family, &platform);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(ctl.decide(black_box(&goal))))
        });
    }
    group.finish();
}

fn bench_observe(c: &mut Criterion) {
    let family = ModelFamily::image_classification();
    let platform = Platform::cpu1();
    let (mut ctl, goal) = controller_for(&family, &platform);
    let sel = ctl.decide(&goal).expect("valid goal");
    let t_prof = ctl.table().t_prof_stage(sel.candidate);
    let obs = Observation {
        latency: t_prof * 1.1,
        profile_equivalent: t_prof,
        idle_power: Some(Watts(6.0)),
        idle_cap: Watts(45.0),
    };
    c.bench_function("alert_observe", |b| b.iter(|| ctl.observe(black_box(&obs))));
}

fn bench_full_cycle(c: &mut Criterion) {
    // One complete decide → observe cycle: what ALERT charges per input.
    let family = ModelFamily::image_classification();
    let platform = Platform::cpu1();
    let (mut ctl, goal) = controller_for(&family, &platform);
    c.bench_function("alert_decide_observe_cycle", |b| {
        b.iter(|| {
            let sel = ctl.decide(black_box(&goal)).expect("valid goal");
            let t_prof = ctl.table().t_prof_stage(sel.candidate);
            ctl.observe(&Observation {
                latency: t_prof * 1.05,
                profile_equivalent: t_prof,
                idle_power: Some(Watts(6.0)),
                idle_cap: ctl.table().cap(sel.candidate.power),
            });
            black_box(sel)
        })
    });
}

criterion_group!(benches, bench_decide, bench_observe, bench_full_cycle);
criterion_main!(benches);
