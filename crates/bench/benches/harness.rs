//! Criterion benches of the episode harness: end-to-end episodes for the
//! main schemes (simulator throughput, oracle enumeration cost).

use alert_platform::Platform;
use alert_sched::{run_setting, ExperimentConfig, FamilyKind, SchemeKind};
use alert_workload::{constraint_grid, InputStream, Objective, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_episodes(c: &mut Criterion) {
    let config = ExperimentConfig {
        n_inputs: 100,
        seed: 5,
        threads: 1,
    };
    let platform = Platform::cpu1();
    let family = FamilyKind::Image.family();
    let stream = InputStream::generate(FamilyKind::Image.task(), config.n_inputs, config.seed);
    let goal = constraint_grid(Objective::MinimizeEnergy, &family, &platform)[17];
    let scenario = Scenario::memory_env(config.seed);

    let mut group = c.benchmark_group("episode_100_inputs");
    group.sample_size(20);
    for kind in [
        SchemeKind::Alert,
        SchemeKind::Oracle,
        SchemeKind::OracleStatic,
        SchemeKind::SysOnly,
        SchemeKind::AppOnly,
        SchemeKind::NoCoord,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                black_box(run_setting(
                    kind,
                    black_box(&family),
                    &platform,
                    &scenario,
                    goal,
                    &stream,
                    config.seed,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_episodes);
criterion_main!(benches);
