//! Property-based tests for the statistics substrate.

use alert_stats::hull::{above_hull, lower_convex_hull, pareto_frontier, Point2};
use alert_stats::kalman::{AdaptiveKalman, IdlePowerFilter, ScalarKalman};
use alert_stats::normal::{erf, inv_phi, phi, Normal};
use alert_stats::summary::{five_number, harmonic_mean, percentile, Welford};
use alert_stats::Histogram;
use proptest::prelude::*;

proptest! {
    #[test]
    fn phi_is_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(phi(lo) <= phi(hi) + 1e-15);
    }

    #[test]
    fn phi_symmetry(x in -8.0f64..8.0) {
        prop_assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erf_odd(x in -5.0f64..5.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
    }

    #[test]
    fn inv_phi_roundtrips(p in 1e-9f64..=0.999_999_999) {
        let x = inv_phi(p);
        prop_assert!(x.is_finite());
        prop_assert!((phi(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf(mu in -100.0f64..100.0, sigma in 1e-6f64..100.0, p in 0.001f64..0.999) {
        let n = Normal::new(mu, sigma);
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_sf_complements(mu in -10.0f64..10.0, sigma in 1e-3f64..10.0, x in -50.0f64..50.0) {
        let n = Normal::new(mu, sigma);
        prop_assert!((n.sf(x) + n.cdf(x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn adaptive_kalman_stays_finite(obs in proptest::collection::vec(0.01f64..100.0, 1..200)) {
        let mut f = AdaptiveKalman::with_defaults();
        for &o in &obs {
            f.update(o);
            prop_assert!(f.mean().is_finite());
            prop_assert!(f.variance() > 0.0);
            prop_assert!(f.gain() > 0.0 && f.gain() < 1.0);
        }
    }

    #[test]
    fn adaptive_kalman_converges_to_constant(c in 0.1f64..10.0) {
        let mut f = AdaptiveKalman::with_defaults();
        for _ in 0..400 {
            f.update(c);
        }
        prop_assert!((f.mean() - c).abs() < 1e-3 * c.max(1.0));
    }

    #[test]
    fn scalar_kalman_estimate_between_extremes(obs in proptest::collection::vec(-5.0f64..5.0, 1..100)) {
        let mut f = ScalarKalman::new(0.0, 1.0, 0.001, 0.01);
        for &o in &obs {
            f.update(o);
        }
        let lo = obs.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
        let hi = obs.iter().cloned().fold(f64::NEG_INFINITY, f64::max).max(0.0);
        prop_assert!(f.estimate() >= lo - 1e-9 && f.estimate() <= hi + 1e-9);
    }

    #[test]
    fn idle_filter_stays_in_unit_interval(obs in proptest::collection::vec(0.0f64..2.0, 1..200)) {
        let mut f = IdlePowerFilter::new(0.5);
        for &o in &obs {
            f.update(o);
            prop_assert!((0.0..=1.0).contains(&f.ratio()));
        }
    }

    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 2..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        prop_assert!((w.population_variance() - var).abs() < 1e-4);
    }

    #[test]
    fn percentile_bounded_by_extremes(xs in proptest::collection::vec(-1e3f64..1e3, 1..100), p in 0.0f64..=100.0) {
        let v = percentile(&xs, p).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn five_number_is_sorted(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let f = five_number(&xs).unwrap();
        prop_assert!(f.p10 <= f.p25 && f.p25 <= f.p50 && f.p50 <= f.p75 && f.p75 <= f.p90);
    }

    #[test]
    fn harmonic_le_arithmetic(xs in proptest::collection::vec(0.01f64..1e3, 1..50)) {
        let hm = harmonic_mean(&xs).unwrap();
        let am = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!(hm <= am + 1e-9);
        prop_assert!(hm > 0.0);
    }

    #[test]
    fn hull_members_below_all_points(
        coords in proptest::collection::vec((0.01f64..10.0, 0.01f64..10.0), 3..60)
    ) {
        let pts: Vec<Point2> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(x, y, i))
            .collect();
        let hull = lower_convex_hull(&pts);
        prop_assert!(!hull.is_empty());
        for &p in &pts {
            prop_assert!(above_hull(&hull, p, 1e-7));
        }
        // Hull x must be strictly increasing.
        for w in hull.windows(2) {
            prop_assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn frontier_contains_no_dominated_point(
        coords in proptest::collection::vec((0.01f64..10.0, 0.01f64..10.0), 2..60)
    ) {
        let pts: Vec<Point2> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(x, y, i))
            .collect();
        let frontier = pareto_frontier(&pts);
        for f in &frontier {
            for p in &pts {
                let dominates = p.x <= f.x && p.y <= f.y && (p.x < f.x || p.y < f.y);
                prop_assert!(!dominates, "{p:?} dominates frontier member {f:?}");
            }
        }
    }

    #[test]
    fn histogram_conserves_count(xs in proptest::collection::vec(-10.0f64..10.0, 0..300)) {
        let mut h = Histogram::new(-5.0, 5.0, 10).unwrap();
        for &x in &xs {
            h.add(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }
}
