//! Fixed-bin histograms with density normalization.
//!
//! Used to regenerate paper Fig. 11: the empirical distribution of the
//! observed global slowdown factor ξ, overlaid with the Gaussian the Kalman
//! filter assumes.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equally sized bins.
///
/// Values below `lo` or at/above `hi` are counted in underflow/overflow
/// buckets so that no observation is silently dropped.
///
/// # Examples
///
/// ```
/// use alert_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for x in [1.0, 1.5, 4.0, 9.9, -3.0, 11.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[2, 0, 1, 0, 1]);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal bins over `[lo, hi)`.
    ///
    /// Returns `None` if the range is empty/invalid or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || bins == 0 {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Creates a histogram sized to cover `xs` with `bins` bins, with a
    /// small margin so the max lands inside the last bin.
    ///
    /// Returns `None` when `xs` has no finite values or `bins == 0`.
    pub fn covering(xs: &[f64], bins: usize) -> Option<Self> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        let span = (hi - lo).max(1e-12);
        let mut h = Histogram::new(lo, hi + span * 1e-9, bins)?;
        for &x in &finite {
            h.add(x);
        }
        Some(h)
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Guard against floating-point edge landing one past the end.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Per-bin relative frequency (fraction of in-range observations), the
    /// y-axis used by paper Fig. 11.
    pub fn frequencies(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / in_range as f64)
            .collect()
    }

    /// Per-bin probability density (frequency divided by bin width), so the
    /// histogram integrates to one and can be overlaid on a PDF.
    pub fn densities(&self) -> Vec<f64> {
        let w = self.bin_width();
        self.frequencies().iter().map(|f| f / w).collect()
    }

    /// Lower edge of the histogram range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the histogram range.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn bins_values_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(0.0);
        h.add(0.24);
        h.add(0.25);
        h.add(0.5);
        h.add(0.99);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
        for i in 0..100 {
            h.add((i as f64 * 0.097) % 10.0);
        }
        let s: f64 = h.frequencies().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn densities_integrate_to_one() {
        let mut h = Histogram::new(-2.0, 2.0, 16).unwrap();
        for i in 0..1000 {
            h.add(-2.0 + 4.0 * (i as f64 / 1000.0));
        }
        let integral: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covering_includes_extremes() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        let h = Histogram::covering(&xs, 5).unwrap();
        assert_eq!(h.total(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn covering_rejects_empty() {
        assert!(Histogram::covering(&[], 5).is_none());
        assert!(Histogram::covering(&[f64::NAN], 5).is_none());
    }

    #[test]
    fn bin_centers_are_monotone() {
        let h = Histogram::new(0.0, 1.0, 10).unwrap();
        for i in 1..10 {
            assert!(h.bin_center(i) > h.bin_center(i - 1));
        }
        assert!((h.bin_center(0) - 0.05).abs() < 1e-12);
    }
}
