//! Lower convex hulls and Pareto frontiers of 2-D point sets.
//!
//! Paper Fig. 2 plots 42 ImageNet networks in (inference latency, top-5
//! error) space and draws the *lower convex hull*: the curve of optimal
//! latency/accuracy trade-offs. Networks above the hull are dominated. The
//! same machinery backs the oracle's search diagnostics and the DNN-family
//! builders, which pick hull (or frontier) models as candidate sets.

use serde::{Deserialize, Serialize};

/// A 2-D point with an opaque payload index.
///
/// `idx` lets callers map hull/frontier members back to the original
/// collection (e.g. a model id).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point2 {
    /// x coordinate (for Fig. 2: latency in seconds).
    pub x: f64,
    /// y coordinate (for Fig. 2: top-5 error in percent).
    pub y: f64,
    /// Caller-defined index into the source collection.
    pub idx: usize,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64, idx: usize) -> Self {
        Point2 { x, y, idx }
    }
}

/// Cross product `(b − a) × (c − a)`; positive when `c` lies to the left of
/// the directed line `a → b`.
fn cross(a: Point2, b: Point2, c: Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Computes the lower convex hull of a point set, sorted by `x`.
///
/// The result is the chain of points such that every input point lies on or
/// above every hull segment. Duplicate x values keep only the lowest y.
/// Non-finite points are dropped. Returns an empty vector for an empty
/// input.
///
/// # Examples
///
/// ```
/// use alert_stats::hull::{lower_convex_hull, Point2};
///
/// let pts = vec![
///     Point2::new(0.0, 3.0, 0),
///     Point2::new(1.0, 1.0, 1),
///     Point2::new(2.0, 2.5, 2), // above the 0-1-3 chain: excluded
///     Point2::new(3.0, 0.5, 3),
/// ];
/// let hull = lower_convex_hull(&pts);
/// let ids: Vec<usize> = hull.iter().map(|p| p.idx).collect();
/// assert_eq!(ids, vec![0, 1, 3]);
/// ```
pub fn lower_convex_hull(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points
        .iter()
        .copied()
        .filter(|p| p.x.is_finite() && p.y.is_finite())
        .collect();
    if pts.len() <= 1 {
        return pts;
    }
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    // Collapse duplicate x, keeping the lowest y (sorted order guarantees
    // the first of each x-run is lowest).
    pts.dedup_by(|next, kept| (next.x - kept.x).abs() < f64::EPSILON * kept.x.abs().max(1.0));

    let mut hull: Vec<Point2> = Vec::with_capacity(pts.len());
    for p in pts {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            // For a *lower* hull we need every turn to be counter-clockwise;
            // pop `b` while the chain a→b→p does not turn left.
            if cross(a, b, p) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull
}

/// Computes the Pareto frontier for "smaller is better on both axes".
///
/// A point is on the frontier iff no other point is ≤ on both coordinates
/// and < on at least one. This is the set of non-dominated DNNs — a superset
/// of the lower convex hull members (the hull additionally requires
/// convexity).
pub fn pareto_frontier(points: &[Point2]) -> Vec<Point2> {
    let mut pts: Vec<Point2> = points
        .iter()
        .copied()
        .filter(|p| p.x.is_finite() && p.y.is_finite())
        .collect();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let mut frontier: Vec<Point2> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in pts {
        if p.y < best_y {
            frontier.push(p);
            best_y = p.y;
        }
    }
    frontier
}

/// Returns `true` if point `p` lies on or above the polyline `hull`
/// (interpreted as a lower bound curve), within tolerance `eps`.
///
/// Points outside the hull's x-range are considered above it (the hull
/// asserts nothing there).
pub fn above_hull(hull: &[Point2], p: Point2, eps: f64) -> bool {
    if hull.len() < 2 {
        return true;
    }
    let (Some(first), Some(last)) = (hull.first(), hull.last()) else {
        return true;
    };
    if p.x < first.x || p.x > last.x {
        return true;
    }
    for w in hull.windows(2) {
        let &[a, b] = w else { continue };
        if p.x >= a.x && p.x <= b.x {
            let t = if b.x > a.x {
                (p.x - a.x) / (b.x - a.x)
            } else {
                0.0
            };
            let y_line = a.y + t * (b.y - a.y);
            return p.y >= y_line - eps;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point2> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point2::new(x, y, i))
            .collect()
    }

    #[test]
    fn hull_of_empty_and_singleton() {
        assert!(lower_convex_hull(&[]).is_empty());
        let one = pts(&[(1.0, 2.0)]);
        assert_eq!(lower_convex_hull(&one).len(), 1);
    }

    #[test]
    fn hull_excludes_dominated_interior() {
        let p = pts(&[(0.0, 10.0), (1.0, 4.0), (2.0, 6.0), (3.0, 1.0), (4.0, 0.9)]);
        let hull = lower_convex_hull(&p);
        let ids: Vec<usize> = hull.iter().map(|q| q.idx).collect();
        // (2,6) is above the chain; (1,4) is above segment (0,10)-(3,1)?
        // Line from (0,10) to (3,1): at x=1 y=7 → (1,4) is below, so it stays.
        assert!(ids.contains(&0));
        assert!(ids.contains(&1));
        assert!(!ids.contains(&2));
        assert!(ids.contains(&3));
        assert!(ids.contains(&4));
    }

    #[test]
    fn all_points_above_hull() {
        let p = pts(&[
            (0.015, 25.0),
            (0.03, 12.0),
            (0.05, 9.0),
            (0.08, 8.5),
            (0.1, 6.0),
            (0.18, 4.2),
            (0.27, 3.5),
            (0.06, 20.0),
            (0.12, 9.0),
        ]);
        let hull = lower_convex_hull(&p);
        for &q in &p {
            assert!(above_hull(&hull, q, 1e-9), "{q:?} below hull");
        }
    }

    #[test]
    fn hull_is_convex() {
        let p = pts(&[
            (0.0, 5.0),
            (1.0, 3.0),
            (2.0, 2.0),
            (3.0, 1.5),
            (4.0, 1.4),
            (5.0, 1.39),
        ]);
        let hull = lower_convex_hull(&p);
        for w in hull.windows(3) {
            assert!(
                cross(w[0], w[1], w[2]) > 0.0,
                "hull must turn strictly left at every vertex"
            );
        }
    }

    #[test]
    fn duplicate_x_keeps_lowest_y() {
        let p = pts(&[(1.0, 5.0), (1.0, 2.0), (2.0, 1.0)]);
        let hull = lower_convex_hull(&p);
        assert_eq!(hull.len(), 2);
        assert_eq!(hull[0].y, 2.0);
    }

    #[test]
    fn frontier_superset_of_hull_membership() {
        let p = pts(&[
            (1.0, 10.0),
            (2.0, 6.0),
            (3.0, 5.0), // on frontier but above hull chord (2,6)-(5,1)
            (5.0, 1.0),
            (4.0, 8.0), // dominated by (3,5)
        ]);
        let frontier = pareto_frontier(&p);
        let f_ids: Vec<usize> = frontier.iter().map(|q| q.idx).collect();
        assert_eq!(f_ids, vec![0, 1, 2, 3]);
        let hull = lower_convex_hull(&p);
        let h_ids: Vec<usize> = hull.iter().map(|q| q.idx).collect();
        for id in &h_ids {
            assert!(
                f_ids.contains(id) || *id == 4,
                "hull member {id} not on frontier"
            );
        }
        assert!(
            !h_ids.contains(&2),
            "non-convex point should be off the hull"
        );
    }

    #[test]
    fn frontier_is_strictly_decreasing() {
        let p = pts(&[(1.0, 3.0), (2.0, 3.0), (3.0, 2.0), (4.0, 2.0)]);
        let frontier = pareto_frontier(&p);
        for w in frontier.windows(2) {
            assert!(w[1].y < w[0].y);
            assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn non_finite_points_dropped() {
        let p = vec![
            Point2::new(f64::NAN, 1.0, 0),
            Point2::new(1.0, 1.0, 1),
            Point2::new(2.0, f64::INFINITY, 2),
        ];
        let hull = lower_convex_hull(&p);
        assert_eq!(hull.len(), 1);
        assert_eq!(hull[0].idx, 1);
    }
}
