//! Scalar newtypes for physical quantities.
//!
//! ALERT juggles three quantities with incompatible units — latency in
//! seconds, power in watts, energy in joules — and converts between them
//! constantly (energy = power × time; Eq. 9 of the paper multiplies a power
//! cap by a predicted latency). A silent swap of two `f64` arguments is the
//! classic bug in this kind of code, so the public APIs of every crate in
//! the workspace trade in these newtypes instead of bare floats.
//!
//! The types are deliberately thin: `Copy`, zero-cost, with only the
//! physically meaningful arithmetic implemented. Dimensionless math inside
//! estimator kernels can always drop to `f64` via [`Seconds::get`] and
//! friends.
//!
//! # Examples
//!
//! ```
//! use alert_stats::units::{Joules, Seconds, Watts};
//!
//! let cap = Watts(45.0);
//! let latency = Seconds(0.080);
//! let energy: Joules = cap * latency;
//! assert!((energy.get() - 3.6).abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` value.
            #[inline]
            pub fn get(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }
    };
}

scalar_unit!(
    /// A duration or latency in seconds.
    Seconds,
    "s"
);
scalar_unit!(
    /// Electrical power in watts.
    Watts,
    "W"
);
scalar_unit!(
    /// Energy in joules.
    Joules,
    "J"
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power × time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    /// Energy = time × power.
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power = energy / time.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time = energy / power.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Seconds {
    /// Constructs a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1e3)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let e = Watts(10.0) * Seconds(2.5);
        assert_eq!(e, Joules(25.0));
        let e2 = Seconds(2.5) * Watts(10.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_divides_back() {
        let e = Joules(25.0);
        assert_eq!(e / Seconds(2.5), Watts(10.0));
        assert_eq!(e / Watts(10.0), Seconds(2.5));
    }

    #[test]
    fn like_ratio_is_dimensionless() {
        let ratio: f64 = Seconds(3.0) / Seconds(1.5);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn ordering_and_clamp() {
        assert!(Watts(3.0) < Watts(4.0));
        assert_eq!(Watts(5.0).clamp(Watts(1.0), Watts(4.0)), Watts(4.0));
        assert_eq!(Watts(0.5).clamp(Watts(1.0), Watts(4.0)), Watts(1.0));
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Seconds(1.0).clamp(Seconds(2.0), Seconds(1.0));
    }

    #[test]
    fn millis_roundtrip() {
        let s = Seconds::from_millis(125.0);
        assert!((s.get() - 0.125).abs() < 1e-15);
        assert!((s.as_millis() - 125.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_units() {
        let total: Joules = [Joules(1.0), Joules(2.0), Joules(3.5)].into_iter().sum();
        assert_eq!(total, Joules(6.5));
    }

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Watts(12.3456)), "12.35 W");
        assert_eq!(format!("{:.1}", Seconds(0.05)), "0.1 s");
    }

    #[test]
    fn scalar_arithmetic() {
        assert_eq!(Watts(10.0) * 2.0, Watts(20.0));
        assert_eq!(2.0 * Watts(10.0), Watts(20.0));
        assert_eq!(Joules(10.0) / 4.0, Joules(2.5));
        let mut x = Seconds(1.0);
        x += Seconds(0.5);
        x -= Seconds(0.25);
        assert_eq!(x, Seconds(1.25));
        assert_eq!(-x, Seconds(-1.25));
        assert_eq!((-x).abs(), x);
    }
}
