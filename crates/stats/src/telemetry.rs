//! The metric substrate of the observability layer: a static-name
//! registry of counters, gauges and log-bucketed histograms, plus the
//! bounded ring buffer backing the flight recorder.
//!
//! Everything here is deterministic by construction — metric names are
//! `'static` string literals (enforced workspace-wide by the
//! `metric-name-discipline` lint rule), storage is `BTreeMap`-ordered,
//! and [`MetricsSnapshot::to_json`] emits byte-identical JSON for
//! semantically identical registries regardless of insertion order
//! (the same discipline as `LINT.json`: sorted keys,
//! shortest-round-trip floats).
//!
//! The registry lives in the stats crate (the leaf of the workspace
//! DAG) so the scheduler, runtime, executor and serving front-end can
//! all record into it without new edges in the layer graph.

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Where a metric sample is attributed: the whole process, one session,
/// or one executor shard.
///
/// `Ord` is derived (global first, then sessions by id, then shards by
/// id) so scoped metrics land in a stable order inside snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Scope {
    /// Process-wide aggregate.
    Global,
    /// One runtime session, by session id.
    Session(u64),
    /// One executor shard, by shard index.
    Shard(u64),
}

impl Scope {
    /// The scope's snapshot-key suffix (empty for [`Scope::Global`]).
    fn suffix(&self) -> String {
        match self {
            Scope::Global => String::new(),
            Scope::Session(id) => format!("@session:{id}"),
            Scope::Shard(id) => format!("@shard:{id}"),
        }
    }
}

/// Registry key: a static metric name qualified by a [`Scope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: &'static str,
    scope: Scope,
}

/// A histogram over `log2(x)` for positive `x`: fixed relative
/// resolution across decades, the right shape for latencies and costs.
///
/// Non-positive and non-finite observations are counted in a dedicated
/// bucket instead of being dropped silently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    inner: Histogram,
    nonpositive: u64,
}

impl LogHistogram {
    /// A log-bucketed histogram covering `[min, max)` in value space
    /// (both must be positive and ordered), with `bins` equal bins in
    /// `log2` space. Returns `None` for an empty/invalid range.
    pub fn new(min: f64, max: f64, bins: usize) -> Option<Self> {
        if !(min.is_finite() && max.is_finite()) || min <= 0.0 || min >= max {
            return None;
        }
        Some(LogHistogram {
            inner: Histogram::new(min.log2(), max.log2(), bins)?,
            nonpositive: 0,
        })
    }

    /// The default range for time-like observations: 1 µs to ~16 s,
    /// 48 bins (two per octave). The range is statically valid, so this
    /// only returns `None` if [`LogHistogram::new`]'s contract changes.
    pub fn time_range() -> Option<Self> {
        LogHistogram::new(1e-6, 16.0, 48)
    }

    /// Records one observation. Values that are not finite and positive
    /// go to the `nonpositive` bucket.
    pub fn observe(&mut self, x: f64) {
        if x.is_finite() && x > 0.0 {
            self.inner.add(x.log2());
        } else {
            self.nonpositive += 1;
        }
    }

    /// Total number of observations, including out-of-range and
    /// non-positive ones.
    pub fn total(&self) -> u64 {
        self.inner.total() + self.nonpositive
    }

    /// Per-bin raw counts (in `log2` space, ascending).
    pub fn counts(&self) -> &[u64] {
        self.inner.counts()
    }

    /// Count of non-positive / non-finite observations.
    pub fn nonpositive(&self) -> u64 {
        self.nonpositive
    }

    /// The underlying `log2`-space histogram.
    pub fn inner(&self) -> &Histogram {
        &self.inner
    }
}

/// Serializable view of one [`LogHistogram`] inside a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Lower edge of the covered range, in `log2` space.
    pub log2_lo: f64,
    /// Upper edge of the covered range, in `log2` space.
    pub log2_hi: f64,
    /// Per-bin counts, ascending.
    pub counts: Vec<u64>,
    /// Observations below the range.
    pub underflow: u64,
    /// Observations at/above the range.
    pub overflow: u64,
    /// Non-positive / non-finite observations.
    pub nonpositive: u64,
}

/// The registry: every metric the process records, keyed by static name
/// and scope.
///
/// Names must be `'static` string literals supplied at the call site —
/// no `format!` on the recording path (lint-enforced). Scoping is the
/// dynamic axis: the same name may be recorded under many sessions or
/// shards, and [`MetricsRegistry::snapshot`] renders each as
/// `name@session:k` / `name@shard:k`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Pre-registers a counter at zero so it appears in snapshots even
    /// if never incremented.
    pub fn declare_counter(&mut self, name: &'static str, scope: Scope) {
        self.counters.entry(MetricKey { name, scope }).or_insert(0);
    }

    /// Pre-registers a gauge at zero.
    pub fn declare_gauge(&mut self, name: &'static str, scope: Scope) {
        self.gauges.entry(MetricKey { name, scope }).or_insert(0.0);
    }

    /// Pre-registers a histogram with an explicit log-space range;
    /// ignored (keeps the existing series) if already declared or the
    /// range is invalid.
    pub fn declare_histogram(
        &mut self,
        name: &'static str,
        scope: Scope,
        min: f64,
        max: f64,
        bins: usize,
    ) {
        if let Some(h) = LogHistogram::new(min, max, bins) {
            self.histograms
                .entry(MetricKey { name, scope })
                .or_insert(h);
        }
    }

    /// Adds `n` to a counter (registering it on first touch).
    pub fn counter_add(&mut self, name: &'static str, scope: Scope, n: u64) {
        *self.counters.entry(MetricKey { name, scope }).or_insert(0) += n;
    }

    /// Sets a gauge to `value` (registering it on first touch).
    /// Non-finite values are ignored so snapshots stay serializable.
    pub fn gauge_set(&mut self, name: &'static str, scope: Scope, value: f64) {
        if value.is_finite() {
            self.gauges.insert(MetricKey { name, scope }, value);
        }
    }

    /// Records one observation into a histogram, creating it with the
    /// default time range ([`LogHistogram::time_range`]) on first touch.
    pub fn histogram_observe(&mut self, name: &'static str, scope: Scope, x: f64) {
        let key = MetricKey { name, scope };
        if let std::collections::btree_map::Entry::Vacant(e) = self.histograms.entry(key) {
            if let Some(h) = LogHistogram::time_range() {
                e.insert(h);
            }
        }
        if let Some(h) = self.histograms.get_mut(&key) {
            h.observe(x);
        }
    }

    /// Reads a counter back (0 if never touched).
    pub fn counter(&self, name: &'static str, scope: Scope) -> u64 {
        self.counters
            .get(&MetricKey { name, scope })
            .copied()
            .unwrap_or(0)
    }

    /// Reads a gauge back, if it was ever set.
    pub fn gauge(&self, name: &'static str, scope: Scope) -> Option<f64> {
        self.gauges.get(&MetricKey { name, scope }).copied()
    }

    /// Reads a histogram back, if it was ever touched.
    pub fn histogram(&self, name: &'static str, scope: Scope) -> Option<&LogHistogram> {
        self.histograms.get(&MetricKey { name, scope })
    }

    /// Merges another registry into this one (counters add, gauges take
    /// the other's value, histogram bins add when shapes match, else
    /// the other's series wins). Used to fold per-shard registries into
    /// a global one after a parallel drain.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(*k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.insert(*k, h.clone());
        }
    }

    /// A deterministic, serializable view of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (format!("{}{}", k.name, k.scope.suffix()), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (format!("{}{}", k.name, k.scope.suffix()), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        format!("{}{}", k.name, k.scope.suffix()),
                        HistogramSnapshot {
                            log2_lo: h.inner.lo(),
                            log2_hi: h.inner.hi(),
                            counts: h.inner.counts().to_vec(),
                            underflow: h.inner.underflow(),
                            overflow: h.inner.overflow(),
                            nonpositive: h.nonpositive,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// The serializable form of a [`MetricsRegistry`]: sorted string keys
/// (`name`, `name@session:k`, `name@shard:k`), ready for
/// byte-deterministic JSON.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins point-in-time values (always finite).
    pub gauges: BTreeMap<String, f64>,
    /// Log-bucketed distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Pretty-printed JSON with sorted keys and shortest-round-trip
    /// floats: two semantically equal snapshots serialize to identical
    /// bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }
}

/// A bounded FIFO buffer that drops its *oldest* entry on overflow: the
/// storage discipline of the flight recorder (keep the last N
/// decisions, evict the least recent).
///
/// Capacity 0 is legal and degenerate — every push is immediately
/// evicted. Serialization preserves logical (oldest-first) order, so a
/// serde round trip reproduces iteration order exactly. (The serde
/// impls are hand-written: the vendored serde shim's derive does not
/// handle generic types.)
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
}

impl<T: Serialize> Serialize for RingBuffer<T> {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert(
            "capacity".to_string(),
            serde::Value::U64(self.capacity as u64),
        );
        m.insert(
            "items".to_string(),
            serde::Value::Array(self.items.iter().map(Serialize::to_value).collect()),
        );
        serde::Value::Object(m)
    }
}

impl<T: Deserialize> Deserialize for RingBuffer<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::new("expected object for RingBuffer"));
        };
        let capacity = m
            .get("capacity")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| serde::Error::new("expected capacity for RingBuffer"))?
            as usize;
        let items: VecDeque<T> = match m.get("items") {
            Some(serde::Value::Array(a)) => {
                a.iter().map(T::from_value).collect::<Result<_, _>>()?
            }
            _ => return Err(serde::Error::new("expected items array for RingBuffer")),
        };
        if items.len() > capacity {
            return Err(serde::Error::new("RingBuffer items exceed capacity"));
        }
        Ok(RingBuffer { capacity, items })
    }
}

impl<T> RingBuffer<T> {
    /// An empty buffer holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity,
            items: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends `item`, returning the evicted entry when the buffer was
    /// full (with capacity 0, the pushed item itself bounces back).
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.capacity == 0 {
            return Some(item);
        }
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Oldest-to-newest iteration over retained entries.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<&T> {
        self.items.back()
    }

    /// Drops all retained entries (the capacity is kept).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<T: Clone> RingBuffer<T> {
    /// Retained entries, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_insertion_order_independent() {
        let mut a = MetricsRegistry::new();
        a.counter_add("decisions", Scope::Session(2), 5);
        a.counter_add("decisions", Scope::Session(1), 3);
        a.gauge_set("belief_mean", Scope::Global, 1.25);
        a.histogram_observe("latency_s", Scope::Shard(0), 0.01);

        let mut b = MetricsRegistry::new();
        b.histogram_observe("latency_s", Scope::Shard(0), 0.01);
        b.gauge_set("belief_mean", Scope::Global, 1.25);
        b.counter_add("decisions", Scope::Session(1), 3);
        b.counter_add("decisions", Scope::Session(2), 5);

        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
    }

    #[test]
    fn scoped_keys_render_and_sort_deterministically() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hits", Scope::Shard(1), 1);
        r.counter_add("hits", Scope::Global, 2);
        r.counter_add("hits", Scope::Session(7), 3);
        let snap = r.snapshot();
        let keys: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(keys, vec!["hits", "hits@session:7", "hits@shard:1"]);
        assert_eq!(snap.counters["hits"], 2);
        assert_eq!(snap.counters["hits@session:7"], 3);
        assert_eq!(snap.counters["hits@shard:1"], 1);
    }

    #[test]
    fn declared_metrics_appear_at_zero() {
        let mut r = MetricsRegistry::new();
        r.declare_counter("sheds", Scope::Global);
        r.declare_gauge("idle_ratio", Scope::Global);
        r.declare_histogram("cost_s", Scope::Global, 1e-9, 1.0, 30);
        let snap = r.snapshot();
        assert_eq!(snap.counters["sheds"], 0);
        assert_eq!(snap.gauges["idle_ratio"], 0.0);
        assert_eq!(snap.histograms["cost_s"].counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn nonfinite_gauge_writes_are_ignored() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("g", Scope::Global, f64::NAN);
        r.gauge_set("g", Scope::Global, f64::INFINITY);
        assert_eq!(r.gauge("g", Scope::Global), None);
        r.gauge_set("g", Scope::Global, 2.5);
        r.gauge_set("g", Scope::Global, f64::NAN);
        assert_eq!(r.gauge("g", Scope::Global), Some(2.5));
    }

    #[test]
    fn log_histogram_buckets_by_octave() {
        let mut h = LogHistogram::new(1.0, 16.0, 4).unwrap();
        for x in [1.0, 1.5, 2.0, 3.0, 4.0, 8.0, 15.9] {
            h.observe(x);
        }
        // Bins cover [1,2), [2,4), [4,8), [8,16) in value space.
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn log_histogram_rejects_nonpositive() {
        let mut h = LogHistogram::new(1e-6, 1.0, 8).unwrap();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(0.5);
        assert_eq!(h.nonpositive(), 3);
        assert_eq!(h.total(), 4);
        assert!(LogHistogram::new(0.0, 1.0, 8).is_none());
        assert!(LogHistogram::new(2.0, 1.0, 8).is_none());
    }

    #[test]
    fn merge_folds_counters_and_series() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", Scope::Global, 2);
        let mut b = MetricsRegistry::new();
        b.counter_add("n", Scope::Global, 3);
        b.gauge_set("g", Scope::Shard(0), 1.0);
        a.merge(&b);
        assert_eq!(a.counter("n", Scope::Global), 5);
        assert_eq!(a.gauge("g", Scope::Shard(0)), Some(1.0));
    }

    #[test]
    fn ring_buffer_capacity_zero_bounces_everything() {
        let mut rb: RingBuffer<u32> = RingBuffer::new(0);
        assert_eq!(rb.push(1), Some(1));
        assert_eq!(rb.push(2), Some(2));
        assert!(rb.is_empty());
        assert_eq!(rb.last(), None);
    }

    #[test]
    fn ring_buffer_capacity_one_keeps_only_latest() {
        let mut rb = RingBuffer::new(1);
        assert_eq!(rb.push(1), None);
        assert_eq!(rb.push(2), Some(1));
        assert_eq!(rb.push(3), Some(2));
        assert_eq!(rb.to_vec(), vec![3]);
    }

    #[test]
    fn ring_buffer_wraparound_keeps_last_n_in_order() {
        let mut rb = RingBuffer::new(3);
        for i in 0..10 {
            rb.push(i);
        }
        assert_eq!(rb.to_vec(), vec![7, 8, 9]);
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.last(), Some(&9));
    }

    #[test]
    fn ring_buffer_serde_round_trip_preserves_order() {
        let mut rb = RingBuffer::new(4);
        for i in 0..7 {
            rb.push(i * 10);
        }
        let json = serde_json::to_string(&rb).unwrap();
        let back: RingBuffer<i32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rb);
        assert_eq!(back.to_vec(), vec![30, 40, 50, 60]);
        let mut back = back;
        assert_eq!(back.push(70), Some(30));
    }
}
