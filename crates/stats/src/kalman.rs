//! Scalar Kalman filters used by the ALERT controller.
//!
//! Three filters live here:
//!
//! * [`AdaptiveKalman`] — the paper's Eq. 5: a scalar Kalman filter whose
//!   process-noise covariance `Q` is re-estimated online from the innovation
//!   sequence with a forgetting factor (after Akhlaghi, Zhou & Huang, 2017).
//!   ALERT uses it to track the *global slowdown factor* ξ and — novelly —
//!   consumes not just the mean but also the variance as a volatility
//!   signal.
//! * [`IdlePowerFilter`] — the paper's Eq. 8: a fixed-gain-schedule filter
//!   tracking the DNN-idle power ratio φ.
//! * [`ScalarKalman`] — the textbook constant-state filter, used by the
//!   `Sys-only` baseline (paper reference [63]) which predicts job latency
//!   directly rather than through a slowdown factor.
//!
//! All filters are purely scalar, allocation-free, and deterministic.

use crate::normal::Normal;
use serde::{Deserialize, Serialize};

/// Parameters of the adaptive filter, with the paper's defaults (§3.4).
///
/// The paper initializes `K⁽⁰⁾ = 0.5`, `R = 0.001`, `Q⁽⁰⁾ = 0.1`,
/// `μ⁽⁰⁾ = 1`, `(σ⁽⁰⁾)² = 0.1` and uses a forgetting factor `α = 0.3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveKalmanParams {
    /// Forgetting factor α for the process-noise re-estimation.
    pub alpha: f64,
    /// Initial Kalman gain K⁽⁰⁾.
    pub k0: f64,
    /// Measurement noise R (constant).
    pub r: f64,
    /// Initial (and maximum) process noise Q⁽⁰⁾.
    ///
    /// Reproduction note: the paper's printed Eq. 5 reads `max{Q⁽⁰⁾, …}`,
    /// which would *floor* the re-estimated process noise at 0.1 and pin
    /// σ ≥ 0.316 forever — contradicting the surrounding prose ("process
    /// noise **capped** with Q⁽⁰⁾"), the §3.4 worked example (completion
    /// probabilities of 97–99.9% require a much tighter ξ), and the Fig. 9
    /// behaviour (ALERT picks the large traditional DNN in quiet phases,
    /// which only a small calm-phase variance permits). We therefore
    /// implement the cap (`min`): Q decays in calm phases and saturates at
    /// Q⁽⁰⁾ under volatility. §3.6 suggests raising Q⁽⁰⁾ to compensate for
    /// aberrant latency distributions.
    pub q0: f64,
    /// Lower bound on the re-estimated process noise.
    ///
    /// Keeps the gain from collapsing to zero after long perfectly-quiet
    /// stretches (with `Q → 0` the filter would freeze and the one-input
    /// reaction delay of §3.6 would stretch to many inputs). The default
    /// (`1e-6`) leaves the calm-phase σ under 1%, far below any real
    /// latency noise.
    pub q_min: f64,
    /// Initial state estimate μ⁽⁰⁾.
    pub mu0: f64,
    /// Initial variance (σ⁽⁰⁾)².
    pub var0: f64,
}

impl Default for AdaptiveKalmanParams {
    fn default() -> Self {
        AdaptiveKalmanParams {
            alpha: 0.3,
            k0: 0.5,
            r: 0.001,
            q0: 0.1,
            q_min: 1e-6,
            mu0: 1.0,
            var0: 0.1,
        }
    }
}

impl AdaptiveKalmanParams {
    /// Validates the parameter set.
    ///
    /// Returns a human-readable description of the first problem found, or
    /// `Ok(())`.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if !(0.0..1.0).contains(&self.k0) {
            return Err(format!("k0 must be in [0,1), got {}", self.k0));
        }
        if self.r <= 0.0 {
            return Err(format!("r must be positive, got {}", self.r));
        }
        if self.q0 <= 0.0 {
            return Err(format!("q0 must be positive, got {}", self.q0));
        }
        if !(self.q_min > 0.0 && self.q_min <= self.q0) {
            return Err(format!(
                "q_min must be in (0, q0], got {} with q0 = {}",
                self.q_min, self.q0
            ));
        }
        if self.var0 < 0.0 {
            return Err(format!("var0 must be non-negative, got {}", self.var0));
        }
        if !self.mu0.is_finite() {
            return Err("mu0 must be finite".to_string());
        }
        Ok(())
    }
}

/// The adaptive-process-noise Kalman filter of paper Eq. 5.
///
/// Per observation `x⁽ⁿ⁻¹⁾` (for ALERT: the ratio of observed latency to
/// profiled latency) the update is, literally:
///
/// ```text
/// y⁽ⁿ⁾   = x⁽ⁿ⁻¹⁾ − μ⁽ⁿ⁻¹⁾
/// Q⁽ⁿ⁾   = min{ Q⁽⁰⁾, α·Q⁽ⁿ⁻¹⁾ + (1−α)·(K⁽ⁿ⁻¹⁾·y⁽ⁿ⁻¹⁾)² }
/// K⁽ⁿ⁾   = ((1−K⁽ⁿ⁻¹⁾)·σ²⁽ⁿ⁻¹⁾ + Q⁽ⁿ⁾) / ((1−K⁽ⁿ⁻¹⁾)·σ²⁽ⁿ⁻¹⁾ + Q⁽ⁿ⁾ + R)
/// μ⁽ⁿ⁾   = μ⁽ⁿ⁻¹⁾ + K⁽ⁿ⁾·y⁽ⁿ⁾
/// σ²⁽ⁿ⁾  = (1−K⁽ⁿ⁻¹⁾)·σ²⁽ⁿ⁻¹⁾ + Q⁽ⁿ⁾
/// ```
///
/// Note three deliberate quirks preserved from the paper: `Q⁽ⁿ⁾` uses the
/// *previous* innovation `y⁽ⁿ⁻¹⁾` (we seed `y⁽⁰⁾ = 0`), so the filter
/// reacts to a step change with exactly one input of delay (§3.6 "it
/// requires at least one input to react to sudden changes"); `σ²⁽ⁿ⁾` uses
/// the *previous* gain, which makes `σ²⁽ⁿ⁾` the prior variance appearing in
/// the numerator of `K⁽ⁿ⁾`; and Q is **capped** (not floored) at `Q⁽⁰⁾` —
/// see [`AdaptiveKalmanParams::q0`] for why the printed `max` must be a
/// typo for the prose's "capped".
///
/// # Examples
///
/// ```
/// use alert_stats::kalman::AdaptiveKalman;
///
/// let mut f = AdaptiveKalman::with_defaults();
/// for _ in 0..200 {
///     f.update(1.4); // environment is steadily 1.4x slower than profile
/// }
/// assert!((f.mean() - 1.4).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveKalman {
    params: AdaptiveKalmanParams,
    mu: f64,
    var: f64,
    gain: f64,
    q: f64,
    prev_innovation: f64,
    steps: u64,
}

impl AdaptiveKalman {
    /// Creates a filter from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the first problem found by
    /// [`AdaptiveKalmanParams::validate`] — parameters typically arrive
    /// from user configuration (`RunSpec` files), so invalid values are a
    /// runtime condition, not a programming error.
    pub fn new(params: AdaptiveKalmanParams) -> Result<Self, String> {
        params
            .validate()
            .map_err(|e| format!("invalid AdaptiveKalmanParams: {e}"))?;
        Ok(AdaptiveKalman {
            params,
            mu: params.mu0,
            var: params.var0,
            gain: params.k0,
            q: params.q0,
            prev_innovation: 0.0,
            steps: 0,
        })
    }

    /// Creates a filter with the paper's default constants.
    pub fn with_defaults() -> Self {
        // lint:allow(no-panic): paper-default constants are compile-time fixed and covered by tests; failure is unreachable
        Self::new(AdaptiveKalmanParams::default()).expect("paper defaults are valid")
    }

    /// Feeds one observation and returns the updated mean.
    ///
    /// Non-finite observations are ignored (the filter state is unchanged);
    /// this mirrors ALERT dropping corrupted measurements rather than
    /// poisoning the estimate.
    pub fn update(&mut self, observation: f64) -> f64 {
        self.update_with_noise(observation, self.params.r)
    }

    /// [`AdaptiveKalman::update`] with an explicit measurement-noise
    /// variance for this step.
    ///
    /// The Akhlaghi method the paper builds on adapts *both* noise
    /// covariances; the paper's Eq. 5 spells out only the Q adaptation
    /// with a constant `R = 0.001` (σ ≈ 3%), which is calibrated for its
    /// quiet-environment measurement noise. Callers that track the
    /// realized observation dispersion (see `alert-core`'s
    /// `SlowdownEstimator`) can pass it here so the gain settles correctly
    /// when per-input noise is much larger than 3% (contended
    /// environments) instead of chasing every sample.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive.
    pub fn update_with_noise(&mut self, observation: f64, r: f64) -> f64 {
        assert!(r > 0.0, "measurement noise must be positive");
        if !observation.is_finite() {
            return self.mu;
        }
        let p = &self.params;
        let y = observation - self.mu;
        let q = (p.alpha * self.q + (1.0 - p.alpha) * (self.gain * self.prev_innovation).powi(2))
            .clamp(p.q_min, p.q0);
        let prior_var = (1.0 - self.gain) * self.var + q;
        let gain = prior_var / (prior_var + r);
        self.mu += gain * y;
        self.var = prior_var;
        self.q = q;
        self.gain = gain;
        self.prev_innovation = y;
        self.steps += 1;
        self.mu
    }

    /// Current state estimate μ⁽ⁿ⁾.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Current variance estimate σ²⁽ⁿ⁾.
    #[inline]
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Current standard deviation σ⁽ⁿ⁾.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Current Kalman gain K⁽ⁿ⁾.
    #[inline]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Current process noise estimate Q⁽ⁿ⁾.
    #[inline]
    pub fn process_noise(&self) -> f64 {
        self.q
    }

    /// Number of observations consumed.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The filter's state as a [`Normal`] distribution `N(μ, σ²)`.
    ///
    /// This is the random-variable view of ξ that ALERT's probabilistic
    /// estimators consume (Eqs. 6, 7, 12).
    pub fn distribution(&self) -> Normal {
        Normal::new(self.mu, self.var.sqrt())
    }

    /// The parameters this filter was built with.
    pub fn params(&self) -> &AdaptiveKalmanParams {
        &self.params
    }

    /// Resets the filter to its initial state.
    pub fn reset(&mut self) {
        // lint:allow(no-panic): params already passed new()'s validation when this filter was built
        *self = AdaptiveKalman::new(self.params).expect("params were validated at construction");
    }
}

/// The DNN-idle power ratio filter of paper Eq. 8.
///
/// Tracks φ, the ratio between system power while the inference pipeline is
/// idle (other co-located work may still be running) and the active power
/// cap. The gain schedule is deterministic:
///
/// ```text
/// W⁽ⁿ⁾ = (M⁽ⁿ⁻¹⁾ + S) / (M⁽ⁿ⁻¹⁾ + S + V)
/// M⁽ⁿ⁾ = (1 − W⁽ⁿ⁾)(M⁽ⁿ⁻¹⁾ + S)
/// φ⁽ⁿ⁾ = φ⁽ⁿ⁻¹⁾ + W⁽ⁿ⁾·(p_idle/p⁽ⁿ⁻¹⁾ − φ⁽ⁿ⁻¹⁾)
/// ```
///
/// with the paper's constants `M⁽⁰⁾ = 0.01`, `S = 0.0001`, `V = 0.001`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdlePowerFilter {
    phi: f64,
    m: f64,
    s: f64,
    v: f64,
    steps: u64,
}

impl Default for IdlePowerFilter {
    fn default() -> Self {
        Self::new(0.5)
    }
}

impl IdlePowerFilter {
    /// Paper constant `M⁽⁰⁾`.
    pub const M0: f64 = 0.01;
    /// Paper constant `S` (process noise).
    pub const S: f64 = 0.0001;
    /// Paper constant `V` (measurement noise).
    pub const V: f64 = 0.001;

    /// Creates the filter with an initial ratio estimate `phi0`.
    ///
    /// # Panics
    ///
    /// Panics if `phi0` is not finite or not within `[0, 1]` — an idle power
    /// ratio outside that range is physically meaningless.
    pub fn new(phi0: f64) -> Self {
        assert!(
            phi0.is_finite() && (0.0..=1.0).contains(&phi0),
            "phi0 must be a ratio in [0,1], got {phi0}"
        );
        IdlePowerFilter {
            phi: phi0,
            m: Self::M0,
            s: Self::S,
            v: Self::V,
            steps: 0,
        }
    }

    /// Feeds one observed ratio `p_idle / p_cap` and returns the new φ.
    ///
    /// Observations are clamped into `[0, 1]`; non-finite observations are
    /// ignored.
    pub fn update(&mut self, observed_ratio: f64) -> f64 {
        if !observed_ratio.is_finite() {
            return self.phi;
        }
        let z = observed_ratio.clamp(0.0, 1.0);
        let w = (self.m + self.s) / (self.m + self.s + self.v);
        self.m = (1.0 - w) * (self.m + self.s);
        self.phi += w * (z - self.phi);
        self.steps += 1;
        self.phi
    }

    /// Current ratio estimate φ⁽ⁿ⁾.
    #[inline]
    pub fn ratio(&self) -> f64 {
        self.phi
    }

    /// Current error covariance M⁽ⁿ⁾.
    #[inline]
    pub fn covariance(&self) -> f64 {
        self.m
    }

    /// Number of observations consumed.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

/// A textbook scalar Kalman filter with a constant-state model.
///
/// Used by the `Sys-only` baseline (paper reference [63], POET/CALOREE
/// style) which filters raw job latency instead of a slowdown factor, and
/// handy as a comparison point in tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarKalman {
    x: f64,
    p: f64,
    q: f64,
    r: f64,
    steps: u64,
}

impl ScalarKalman {
    /// Creates a filter.
    ///
    /// * `x0` — initial state estimate,
    /// * `p0` — initial error covariance,
    /// * `q` — process noise (per step),
    /// * `r` — measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `p0`, `q` or `r` is negative, or `r == 0` (the update would
    /// divide by zero when `p` collapses).
    pub fn new(x0: f64, p0: f64, q: f64, r: f64) -> Self {
        assert!(p0 >= 0.0, "p0 must be non-negative");
        assert!(q >= 0.0, "q must be non-negative");
        assert!(r > 0.0, "r must be positive");
        ScalarKalman {
            x: x0,
            p: p0,
            q,
            r,
            steps: 0,
        }
    }

    /// Feeds one observation and returns the updated estimate.
    pub fn update(&mut self, z: f64) -> f64 {
        if !z.is_finite() {
            return self.x;
        }
        // Predict (constant-state model): x stays, covariance grows.
        let p_prior = self.p + self.q;
        // Update.
        let k = p_prior / (p_prior + self.r);
        self.x += k * (z - self.x);
        self.p = (1.0 - k) * p_prior;
        self.steps += 1;
        self.x
    }

    /// Current state estimate.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.x
    }

    /// Current error covariance.
    #[inline]
    pub fn covariance(&self) -> f64 {
        self.p
    }

    /// Number of observations consumed.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-computed first two steps with the paper's constants.
    #[test]
    fn adaptive_first_steps_match_hand_computation() {
        let mut f = AdaptiveKalman::with_defaults();
        // Step 1, observation 1.2:
        //   y1 = 1.2 - 1.0 = 0.2
        //   Q1 = min(0.1, 0.3*0.1 + 0.7*(0.5*0)^2) = min(0.1, 0.03) = 0.03
        //   prior = (1-0.5)*0.1 + 0.03 = 0.08
        //   K1 = 0.08/(0.08+0.001)
        //   mu1 = 1.0 + K1*0.2
        //   var1 = 0.08
        let q1 = 0.03_f64;
        let prior1 = 0.5 * 0.1 + q1;
        let k1 = prior1 / (prior1 + 0.001);
        let mu1 = 1.0 + k1 * 0.2;
        f.update(1.2);
        assert!((f.mean() - mu1).abs() < 1e-15);
        assert!((f.variance() - prior1).abs() < 1e-15);
        assert!((f.gain() - k1).abs() < 1e-15);
        assert!((f.process_noise() - q1).abs() < 1e-15);

        // Step 2, observation 1.3:
        //   y2 = 1.3 - mu1
        //   Q2 = min(0.1, 0.3*Q1 + 0.7*(K1*y1)^2)
        //   prior2 = (1-K1)*var1 + Q2
        //   K2 = prior2/(prior2+0.001)
        //   mu2 = mu1 + K2*y2
        let q2 = (0.3 * q1 + 0.7 * (k1 * 0.2) * (k1 * 0.2)).min(0.1);
        let prior2 = (1.0 - k1) * prior1 + q2;
        let k2 = prior2 / (prior2 + 0.001);
        let y2 = 1.3 - mu1;
        let mu2 = mu1 + k2 * y2;
        f.update(1.3);
        assert!(
            (f.mean() - mu2).abs() < 1e-15,
            "mean {} want {mu2}",
            f.mean()
        );
        assert!((f.variance() - prior2).abs() < 1e-15);
        assert!((f.process_noise() - q2).abs() < 1e-15);
    }

    #[test]
    fn adaptive_converges_on_constant_signal() {
        let mut f = AdaptiveKalman::with_defaults();
        for _ in 0..500 {
            f.update(1.4);
        }
        assert!((f.mean() - 1.4).abs() < 1e-6);
        // With zero innovations the process noise decays below its cap and
        // the variance collapses — the calm-environment behaviour that lets
        // ALERT run large traditional DNNs close to the deadline (Fig. 9).
        assert!(f.process_noise() < f.params().q0);
        assert!(f.variance() > 0.0);
        assert!(f.variance() < 0.01, "calm variance = {}", f.variance());
    }

    #[test]
    fn adaptive_variance_grows_under_volatility() {
        // Feed a calm stream, then an oscillating one; the re-estimated Q
        // (and hence σ²) must rise — this is the volatility signal ALERT
        // uses to become conservative (paper §3.4 example).
        let mut f = AdaptiveKalman::with_defaults();
        for _ in 0..100 {
            f.update(1.0);
        }
        let calm_var = f.variance();
        for i in 0..100 {
            f.update(if i % 2 == 0 { 0.6 } else { 1.8 });
        }
        let wild_var = f.variance();
        assert!(
            wild_var > calm_var * 1.5,
            "variance should grow: calm={calm_var} wild={wild_var}"
        );
    }

    #[test]
    fn adaptive_tracks_step_change_quickly() {
        let mut f = AdaptiveKalman::with_defaults();
        for _ in 0..100 {
            f.update(1.0);
        }
        // A sudden 1.8x slowdown (e.g. contention starts): the innovation
        // feeds Q with one input of delay (§3.6), after which the gain
        // self-amplifies; the mean must be close within a handful of
        // inputs (Fig. 9 shows recovery within a few inputs).
        for _ in 0..5 {
            f.update(1.8);
        }
        assert!(
            (f.mean() - 1.8).abs() < 0.15,
            "mean after 5 obs: {}",
            f.mean()
        );
    }

    #[test]
    fn adaptive_ignores_non_finite() {
        let mut f = AdaptiveKalman::with_defaults();
        f.update(1.5);
        let snapshot = f.clone();
        f.update(f64::NAN);
        f.update(f64::INFINITY);
        assert_eq!(f, snapshot);
    }

    #[test]
    fn adaptive_reset_restores_initial_state() {
        let mut f = AdaptiveKalman::with_defaults();
        for _ in 0..10 {
            f.update(2.0);
        }
        f.reset();
        assert_eq!(f.mean(), 1.0);
        assert_eq!(f.steps(), 0);
        assert_eq!(f.variance(), 0.1);
    }

    #[test]
    fn adaptive_distribution_matches_state() {
        let mut f = AdaptiveKalman::with_defaults();
        f.update(1.1);
        let d = f.distribution();
        assert_eq!(d.mean(), f.mean());
        assert!((d.variance() - f.variance()).abs() < 1e-15);
    }

    #[test]
    fn adaptive_rejects_bad_params() {
        let err = AdaptiveKalman::new(AdaptiveKalmanParams {
            r: -1.0,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("invalid AdaptiveKalmanParams"), "{err}");
        assert!(AdaptiveKalman::new(AdaptiveKalmanParams::default()).is_ok());
    }

    #[test]
    fn idle_filter_first_step_matches_hand_computation() {
        let mut f = IdlePowerFilter::new(0.5);
        // W1 = (0.01+0.0001)/(0.01+0.0001+0.001) = 0.0101/0.0111
        let w1 = 0.0101 / 0.0111;
        // phi1 = 0.5 + W1*(0.2-0.5)
        let phi1 = 0.5 + w1 * (0.2 - 0.5);
        f.update(0.2);
        assert!((f.ratio() - phi1).abs() < 1e-12);
        // M1 = (1-W1)*0.0101
        assert!((f.covariance() - (1.0 - w1) * 0.0101).abs() < 1e-12);
    }

    #[test]
    fn idle_filter_converges_to_constant_ratio() {
        let mut f = IdlePowerFilter::new(0.5);
        for _ in 0..300 {
            f.update(0.25);
        }
        assert!((f.ratio() - 0.25).abs() < 0.01);
    }

    #[test]
    fn idle_filter_clamps_out_of_range() {
        let mut f = IdlePowerFilter::new(0.5);
        for _ in 0..300 {
            f.update(7.0); // clamped to 1.0
        }
        assert!(f.ratio() <= 1.0);
        assert!((f.ratio() - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "phi0 must be a ratio")]
    fn idle_filter_rejects_bad_initial() {
        let _ = IdlePowerFilter::new(1.5);
    }

    #[test]
    fn scalar_kalman_converges_and_reduces_covariance() {
        let mut f = ScalarKalman::new(0.0, 1.0, 0.0001, 0.01);
        for _ in 0..200 {
            f.update(5.0);
        }
        assert!((f.estimate() - 5.0).abs() < 0.01);
        assert!(f.covariance() < 0.01);
    }

    #[test]
    fn scalar_kalman_gain_bounded() {
        let mut f = ScalarKalman::new(0.0, 1.0, 0.01, 0.1);
        for i in 0..100 {
            f.update(i as f64 % 3.0);
            assert!(f.covariance() > 0.0);
            assert!(f.covariance() < 1.1);
        }
    }

    #[test]
    #[should_panic(expected = "r must be positive")]
    fn scalar_kalman_rejects_zero_measurement_noise() {
        let _ = ScalarKalman::new(0.0, 1.0, 0.01, 0.0);
    }
}
