//! Distribution fitting and goodness-of-fit.
//!
//! Paper Fig. 11 overlays the observed slowdown-factor samples with the
//! Gaussian that the Kalman filter assumes and notes that "no single
//! distribution fits all real-world scenarios and normal distribution is
//! the best fit we can find in practice" (§3.6). This module provides the
//! maximum-likelihood Gaussian fit and a Kolmogorov–Smirnov distance so the
//! reproduction can report *how* non-Gaussian each scenario is.

use crate::normal::Normal;
use serde::{Deserialize, Serialize};

/// A Gaussian fitted to samples by maximum likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianFit {
    /// Fitted mean.
    pub mu: f64,
    /// Fitted (population) standard deviation.
    pub sigma: f64,
    /// Number of samples used.
    pub n: usize,
}

impl GaussianFit {
    /// Fits a Gaussian to the finite values in `xs` by maximum likelihood
    /// (sample mean, population standard deviation).
    ///
    /// Returns `None` when fewer than two finite samples are available.
    pub fn fit(xs: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.len() < 2 {
            return None;
        }
        let n = finite.len() as f64;
        let mu = finite.iter().sum::<f64>() / n;
        let var = finite.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n;
        Some(GaussianFit {
            mu,
            sigma: var.sqrt(),
            n: finite.len(),
        })
    }

    /// The fitted distribution as a [`Normal`].
    pub fn distribution(&self) -> Normal {
        Normal::new(self.mu, self.sigma)
    }
}

/// The Kolmogorov–Smirnov statistic: the maximum absolute difference between
/// the empirical CDF of `xs` and a reference distribution's CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsStatistic {
    /// The KS distance `D = sup |F_emp − F_ref|` in `[0, 1]`.
    pub d: f64,
    /// Sample count.
    pub n: usize,
}

impl KsStatistic {
    /// Computes the KS distance between the samples and a normal
    /// distribution.
    ///
    /// Returns `None` when no finite samples exist.
    pub fn against_normal(xs: &[f64], dist: &Normal) -> Option<Self> {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut d: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let f = dist.cdf(x);
            // Empirical CDF jumps from i/n to (i+1)/n at x; check both sides.
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((f - lo).abs()).max((f - hi).abs());
        }
        Some(KsStatistic { d, n })
    }

    /// An asymptotic critical value at significance `alpha` (e.g. 0.05):
    /// `c(alpha) / sqrt(n)` with `c(0.05) ≈ 1.358`.
    ///
    /// Only the standard significance levels 0.10, 0.05 and 0.01 are
    /// supported; anything else returns `None`.
    pub fn critical_value(&self, alpha: f64) -> Option<f64> {
        let c = if (alpha - 0.10).abs() < 1e-12 {
            1.224
        } else if (alpha - 0.05).abs() < 1e-12 {
            1.358
        } else if (alpha - 0.01).abs() < 1e-12 {
            1.628
        } else {
            return None;
        };
        Some(c / (self.n as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_parameters() {
        // Deterministic pseudo-Gaussian via inverse CDF of a uniform grid.
        let n = 10_000;
        let xs: Vec<f64> = (1..n)
            .map(|i| {
                let p = i as f64 / n as f64;
                3.0 + 0.5 * crate::normal::inv_phi(p)
            })
            .collect();
        let fit = GaussianFit::fit(&xs).unwrap();
        assert!((fit.mu - 3.0).abs() < 1e-3, "mu = {}", fit.mu);
        assert!((fit.sigma - 0.5).abs() < 1e-2, "sigma = {}", fit.sigma);
    }

    #[test]
    fn fit_requires_two_samples() {
        assert!(GaussianFit::fit(&[]).is_none());
        assert!(GaussianFit::fit(&[1.0]).is_none());
        assert!(GaussianFit::fit(&[1.0, f64::NAN]).is_none());
        assert!(GaussianFit::fit(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn ks_small_for_matching_distribution() {
        let n = 2_000;
        let xs: Vec<f64> = (1..n)
            .map(|i| crate::normal::inv_phi(i as f64 / n as f64))
            .collect();
        let ks = KsStatistic::against_normal(&xs, &Normal::new(0.0, 1.0)).unwrap();
        assert!(ks.d < 0.01, "d = {}", ks.d);
        assert!(ks.d < ks.critical_value(0.05).unwrap());
    }

    #[test]
    fn ks_large_for_mismatched_distribution() {
        let xs: Vec<f64> = (0..1000).map(|i| 10.0 + i as f64 * 0.001).collect();
        let ks = KsStatistic::against_normal(&xs, &Normal::new(0.0, 1.0)).unwrap();
        assert!(ks.d > 0.9, "d = {}", ks.d);
        assert!(ks.d > ks.critical_value(0.01).unwrap());
    }

    #[test]
    fn ks_bounded() {
        let xs = [0.5, 1.5, -0.3, 0.0, 2.0];
        let ks = KsStatistic::against_normal(&xs, &Normal::new(0.0, 1.0)).unwrap();
        assert!(ks.d >= 0.0 && ks.d <= 1.0);
        assert_eq!(ks.n, 5);
    }

    #[test]
    fn ks_unsupported_alpha() {
        let ks = KsStatistic { d: 0.1, n: 100 };
        assert!(ks.critical_value(0.5).is_none());
        assert!(ks.critical_value(0.05).is_some());
    }
}
