//! The normal (Gaussian) distribution.
//!
//! ALERT models the global slowdown factor ξ as a normal random variable
//! (paper §3.3, Idea 2). Three operations on the normal distribution sit on
//! the controller's hot path:
//!
//! * the CDF Φ, used for the probability that a configuration finishes by
//!   the deadline (paper Eq. 6),
//! * the inverse CDF Φ⁻¹, used for the percentile-latency energy bound
//!   (paper Eq. 12),
//! * the PDF, used when fitting observed slowdowns for Fig. 11.
//!
//! The implementations are dependency-free: `erf` uses the Abramowitz &
//! Stegun 7.1.26 rational approximation refined to double precision with a
//! continued-fraction-free correction, and `inv_phi` uses Acklam's rational
//! approximation polished by two Halley iterations, giving ~1e-15 relative
//! accuracy across `(0, 1)`.

use serde::{Deserialize, Serialize};

/// 1/√(2π), the normalization constant of the standard normal PDF.
pub const FRAC_1_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// √2.
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// The error function `erf(x)`.
///
/// Uses the rational Chebyshev approximation from W. J. Cody (1969) with
/// three regimes, accurate to better than 1e-15 in double precision.
///
/// # Examples
///
/// ```
/// use alert_stats::normal::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    // Cody's algorithm: erf on [0, 0.5], erfc on (0.5, 4], asymptotic erfc
    // beyond. Coefficients from Cody (1969), "Rational Chebyshev
    // approximation for the error function".
    let ax = x.abs();
    if ax < 0.5 {
        // erf(x) = x * P(x^2)/Q(x^2)
        const P: [f64; 5] = [
            3.209_377_589_138_469_4e3,
            3.774_852_376_853_02e2,
            1.138_641_541_510_501_6e2,
            3.161_123_743_870_565_6,
            1.857_777_061_846_031_5e-1,
        ];
        const Q: [f64; 4] = [
            2.844_236_833_439_171e3,
            1.282_616_526_077_372_3e3,
            2.440_246_379_344_441_7e2,
            2.360_129_095_234_412_3e1,
        ];
        let z = x * x;
        let num = ((((P[4] * z + P[3]) * z + P[2]) * z + P[1]) * z) + P[0];
        let den = ((((z + Q[3]) * z + Q[2]) * z + Q[1]) * z) + Q[0];
        x * num / den
    } else {
        let ec = erfc_abs(ax);
        let v = 1.0 - ec;
        if x < 0.0 {
            -v
        } else {
            v
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Keeps full relative precision in the far right tail where `1 - erf(x)`
/// would cancel catastrophically; this matters because ALERT evaluates
/// deadline-miss probabilities that can be tiny.
pub fn erfc(x: f64) -> f64 {
    if x < 0.5 {
        1.0 - erf(x)
    } else {
        erfc_abs(x)
    }
}

/// `erfc` for non-negative arguments ≥ 0.5.
fn erfc_abs(ax: f64) -> f64 {
    debug_assert!(ax >= 0.5);
    if ax <= 4.0 {
        // erfc(x) = exp(-x^2) * P(x)/Q(x)
        const P: [f64; 9] = [
            1.230_339_354_797_997_2e3,
            2.051_078_377_826_071_6e3,
            1.712_047_612_634_070_7e3,
            8.819_522_212_417_69e2,
            2.986_351_381_974_001e2,
            6.611_919_063_714_163e1,
            8.883_149_794_388_376,
            5.641_884_969_886_7e-1,
            2.153_115_354_744_038_3e-8,
        ];
        const Q: [f64; 8] = [
            1.230_339_354_803_749_8e3,
            3.439_367_674_143_721_6e3,
            4.362_619_090_143_247e3,
            3.290_799_235_733_459_7e3,
            1.621_389_574_566_690_3e3,
            5.371_811_018_620_099e2,
            1.176_939_508_913_124_6e2,
            1.574_492_611_070_983_3e1,
        ];
        let num = P.iter().rev().fold(0.0_f64, |acc, &c| acc * ax + c);
        let den = Q.iter().rev().fold(1.0_f64, |acc, &c| acc * ax + c);
        (-ax * ax).exp() * num / den
    } else {
        // Asymptotic regime (Cody): erfc(x) = exp(-x²)/x · (1/√π − z·P(z)/Q(z))
        // with z = 1/x². Coefficients from netlib CALERF.
        if ax > 26.5 {
            // exp(-x²) underflows; erfc is zero to double precision.
            return 0.0;
        }
        const FRAC_1_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        const P: [f64; 6] = [
            3.053_266_349_612_323_4e-1,
            3.603_448_999_498_044_4e-1,
            1.257_817_261_112_292_5e-1,
            1.608_378_514_874_228e-2,
            6.587_491_615_298_378e-4,
            1.631_538_713_730_209_8e-2,
        ];
        const Q: [f64; 5] = [
            2.568_520_192_289_822,
            1.872_952_849_923_460_5,
            5.279_051_029_514_284e-1,
            6.051_834_131_244_132e-2,
            2.335_204_976_268_691_8e-3,
        ];
        let z = 1.0 / (ax * ax);
        let mut num = P[5] * z;
        let mut den = z;
        for i in 0..4 {
            num = (num + P[i]) * z;
            den = (den + Q[i]) * z;
        }
        let r = z * (num + P[4]) / (den + Q[4]);
        let v = (-ax * ax).exp() * (FRAC_1_SQRT_PI - r) / ax;
        v.max(0.0)
    }
}

/// Standard normal probability density function φ(x).
#[inline]
pub fn pdf(x: f64) -> f64 {
    FRAC_1_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// # Examples
///
/// ```
/// use alert_stats::normal::phi;
/// assert!((phi(0.0) - 0.5).abs() < 1e-15);
/// assert!((phi(1.959963984540054) - 0.975).abs() < 1e-9);
/// ```
#[inline]
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Inverse of the standard normal CDF, Φ⁻¹(p).
///
/// Acklam's rational approximation, refined by two Halley iterations to
/// near machine precision.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` (the quantile is unbounded at the
/// endpoints).
///
/// # Examples
///
/// ```
/// use alert_stats::normal::{inv_phi, phi};
/// let x = inv_phi(0.975);
/// assert!((x - 1.959963984540054).abs() < 1e-9);
/// assert!((phi(inv_phi(0.3)) - 0.3).abs() < 1e-12);
/// ```
pub fn inv_phi(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "inv_phi requires p in (0,1), got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // Two Halley refinement steps push the error to ~1 ulp.
    let mut x = x;
    for _ in 0..2 {
        let e = phi(x) - p;
        let u = e / pdf(x);
        x -= u / (1.0 + x * u / 2.0);
    }
    x
}

/// A normal distribution with mean `mu` and standard deviation `sigma`.
///
/// `sigma == 0` is allowed and degenerates to a point mass; the CDF becomes
/// a step function. ALERT hits this case when the Kalman variance estimate
/// collapses in perfectly quiescent (simulated) environments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mean must be finite");
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and non-negative, got {sigma}"
        );
        Normal { mu, sigma }
    }

    /// The mean μ.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// The standard deviation σ.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// The variance σ².
    #[inline]
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Probability density at `x`.
    ///
    /// For the degenerate `sigma == 0` case the density is not defined; this
    /// returns `f64::INFINITY` at `mu` and `0` elsewhere.
    pub fn pdf(&self, x: f64) -> f64 {
        // lint:allow(nan-unsafe-compare): exact degenerate-distribution sentinel; sigma is validated finite and non-negative at construction
        if self.sigma == 0.0 {
            if x == self.mu {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            pdf((x - self.mu) / self.sigma) / self.sigma
        }
    }

    /// Cumulative probability `P[X <= x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        // lint:allow(nan-unsafe-compare): exact degenerate-distribution sentinel; sigma is validated finite and non-negative at construction
        if self.sigma == 0.0 {
            if x >= self.mu {
                1.0
            } else {
                0.0
            }
        } else {
            phi((x - self.mu) / self.sigma)
        }
    }

    /// Quantile function: the `x` with `P[X <= x] = p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)` and the distribution is not
    /// degenerate.
    pub fn quantile(&self, p: f64) -> f64 {
        // lint:allow(nan-unsafe-compare): exact degenerate-distribution sentinel; sigma is validated finite and non-negative at construction
        if self.sigma == 0.0 {
            self.mu
        } else {
            self.mu + self.sigma * inv_phi(p)
        }
    }

    /// Probability that `X` exceeds `x` (upper tail), computed without
    /// cancellation.
    pub fn sf(&self, x: f64) -> f64 {
        // lint:allow(nan-unsafe-compare): exact degenerate-distribution sentinel; sigma is validated finite and non-negative at construction
        if self.sigma == 0.0 {
            if x >= self.mu {
                0.0
            } else {
                1.0
            }
        } else {
            0.5 * erfc((x - self.mu) / (self.sigma * SQRT_2))
        }
    }

    /// Scales the random variable by a positive constant: `c·X`.
    ///
    /// ALERT uses this to turn the slowdown distribution ξ into a latency
    /// distribution ξ·t^prof (paper Eq. 6).
    ///
    /// # Panics
    ///
    /// Panics if `c` is not positive.
    pub fn scaled(&self, c: f64) -> Normal {
        assert!(c > 0.0 && c.is_finite(), "scale must be positive");
        Normal::new(self.mu * c, self.sigma * c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112_462_916_018_284_9),
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (1.5, 0.966_105_146_475_310_7),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-12,
                "erf({x}) = {} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_tail_has_relative_precision() {
        // erfc(5) = 1.5374597944280348e-12 (mpmath).
        let v = erfc(5.0);
        let want = 1.537_459_794_428_034_8e-12;
        assert!(
            ((v - want) / want).abs() < 1e-8,
            "erfc(5) = {v}, want {want}"
        );
        // erfc(10) = 2.0884875837625448e-45.
        let v = erfc(10.0);
        let want = 2.088_487_583_762_545e-45;
        assert!(((v - want) / want).abs() < 1e-6);
    }

    #[test]
    fn phi_reference_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-15);
        assert!((phi(1.0) - 0.841_344_746_068_542_9).abs() < 1e-12);
        assert!((phi(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-12);
        assert!((phi(2.326_347_874_040_841) - 0.99).abs() < 1e-10);
    }

    #[test]
    fn inv_phi_roundtrip() {
        for &p in &[1e-10, 1e-6, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0 - 1e-6] {
            let x = inv_phi(p);
            let back = phi(x);
            assert!(
                (back - p).abs() < 1e-12 * (1.0 + 1.0 / p.min(1.0 - p)).min(1e3),
                "p={p} x={x} back={back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inv_phi requires p in (0,1)")]
    fn inv_phi_rejects_zero() {
        let _ = inv_phi(0.0);
    }

    #[test]
    fn normal_cdf_and_quantile() {
        let n = Normal::new(10.0, 2.0);
        assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(12.0) - phi(1.0)).abs() < 1e-12);
        assert!((n.quantile(0.5) - 10.0).abs() < 1e-9);
        assert!((n.quantile(phi(1.0)) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn normal_sf_complements_cdf() {
        let n = Normal::new(0.0, 1.0);
        for &x in &[-3.0, -1.0, 0.0, 0.5, 2.0, 4.0] {
            assert!((n.sf(x) + n.cdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_normal_is_step() {
        let n = Normal::new(3.0, 0.0);
        assert_eq!(n.cdf(2.999), 0.0);
        assert_eq!(n.cdf(3.0), 1.0);
        assert_eq!(n.quantile(0.123), 3.0);
        assert_eq!(n.sf(3.0), 0.0);
        assert_eq!(n.sf(2.0), 1.0);
        assert_eq!(n.pdf(3.0), f64::INFINITY);
        assert_eq!(n.pdf(1.0), 0.0);
    }

    #[test]
    fn scaled_normal_matches_latency_use() {
        // ξ ~ N(1.2, 0.1); latency = ξ * 0.05s → N(0.06, 0.005).
        let xi = Normal::new(1.2, 0.1);
        let lat = xi.scaled(0.05);
        assert!((lat.mean() - 0.06).abs() < 1e-15);
        assert!((lat.std_dev() - 0.005).abs() < 1e-15);
        // P[latency <= deadline] must match P[ξ <= deadline/t_prof].
        let deadline = 0.065;
        assert!((lat.cdf(deadline) - xi.cdf(deadline / 0.05)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma must be finite and non-negative")]
    fn negative_sigma_rejected() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simple trapezoid check over [-8, 8].
        let n = 16_000;
        let (a, b) = (-8.0, 8.0);
        let h = (b - a) / n as f64;
        let mut s = 0.5 * (pdf(a) + pdf(b));
        for i in 1..n {
            s += pdf(a + i as f64 * h);
        }
        s *= h;
        assert!((s - 1.0).abs() < 1e-10, "integral = {s}");
    }
}
