//! Streaming and batch descriptive statistics.
//!
//! The evaluation harness summarizes thousands of per-input records into the
//! paper's tables and boxplot figures. This module provides:
//!
//! * [`Welford`] — numerically stable streaming mean/variance,
//! * [`percentile`] — linear-interpolation percentile of a sorted slice,
//! * [`five_number`] — the 10/25/50/75/90 summary used by the paper's
//!   whisker plots (Figs. 4, 5: boxes at 25–75, whiskers at 10–90),
//! * [`harmonic_mean`] — the aggregate used in the bottom row of Table 4.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use alert_stats::summary::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns `true` if no observation has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sample mean, or `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (divides by `n`), or `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// The sample variance (divides by `n − 1`), or `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation, or `+∞` when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `−∞` when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Percentile (0–100) of a slice with linear interpolation between ranks.
///
/// The slice does not need to be sorted; a sorted copy is made internally.
/// Returns `None` for an empty slice or a non-finite/out-of-range `p`.
///
/// # Examples
///
/// ```
/// use alert_stats::summary::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !p.is_finite() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice (ascending). See [`percentile`].
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0]; // lint:allow(no-panic): guarded by the non-empty assert above; panicking here is the documented contract
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number summary used by the paper's latency boxplots
/// (Figs. 4 and 5): whiskers at the 10th/90th percentiles, box at the
/// 25th/75th, line at the median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// 10th percentile (lower whisker).
    pub p10: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 90th percentile (upper whisker).
    pub p90: f64,
}

/// Computes the [`FiveNumber`] summary of a slice.
///
/// Returns `None` when the slice has no finite values.
pub fn five_number(xs: &[f64]) -> Option<FiveNumber> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(FiveNumber {
        p10: percentile_sorted(&sorted, 10.0),
        p25: percentile_sorted(&sorted, 25.0),
        p50: percentile_sorted(&sorted, 50.0),
        p75: percentile_sorted(&sorted, 75.0),
        p90: percentile_sorted(&sorted, 90.0),
    })
}

impl FiveNumber {
    /// Inter-quartile range (box height).
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }

    /// Whisker span (p90 − p10).
    pub fn whisker_span(&self) -> f64 {
        self.p90 - self.p10
    }
}

/// Harmonic mean of strictly positive values, the aggregate of the paper's
/// Table 4 bottom row.
///
/// Returns `None` if the input is empty or contains a non-positive or
/// non-finite value (the harmonic mean is undefined there).
///
/// # Examples
///
/// ```
/// use alert_stats::summary::harmonic_mean;
/// let hm = harmonic_mean(&[1.0, 4.0, 4.0]).unwrap();
/// assert!((hm - 2.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    for &x in xs {
        if !(x.is_finite() && x > 0.0) {
            return None;
        }
        sum += 1.0 / x;
    }
    Some(xs.len() as f64 / sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_basics() {
        let mut w = Welford::new();
        assert!(w.is_empty());
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 5);
        assert!((w.mean() - 3.0).abs() < 1e-12);
        assert!((w.population_variance() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance() - 2.5).abs() < 1e-12);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 5.0);
    }

    #[test]
    fn welford_ignores_non_finite() {
        let mut w = Welford::new();
        w.push(1.0);
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        w.push(3.0);
        assert_eq!(w.count(), 2);
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let snapshot = a;
        a.merge(&b);
        assert_eq!(a, snapshot);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 50.0), Some(30.0));
        assert_eq!(percentile(&xs, 25.0), Some(20.0));
        assert_eq!(percentile(&xs, 10.0), Some(14.0));
        assert_eq!(percentile(&xs, 90.0), Some(46.0));
    }

    #[test]
    fn percentile_handles_unsorted_and_bad_input() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&xs, -1.0), None);
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn five_number_ordering_invariant() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let f = five_number(&xs).unwrap();
        assert!(f.p10 <= f.p25);
        assert!(f.p25 <= f.p50);
        assert!(f.p50 <= f.p75);
        assert!(f.p75 <= f.p90);
        assert!(f.iqr() >= 0.0);
        assert!(f.whisker_span() >= f.iqr());
    }

    #[test]
    fn harmonic_mean_cases() {
        assert!(harmonic_mean(&[]).is_none());
        assert!(harmonic_mean(&[1.0, 0.0]).is_none());
        assert!(harmonic_mean(&[1.0, -2.0]).is_none());
        let hm = harmonic_mean(&[2.0, 2.0, 2.0]).unwrap();
        assert!((hm - 2.0).abs() < 1e-12);
        // Harmonic mean is dominated by small values (why the paper uses it:
        // a scheme that does very well somewhere cannot hide a bad case).
        let hm = harmonic_mean(&[0.1, 10.0]).unwrap();
        assert!(hm < 0.2);
    }

    #[test]
    fn single_element_percentiles() {
        let f = five_number(&[42.0]).unwrap();
        assert_eq!(f.p10, 42.0);
        assert_eq!(f.p90, 42.0);
    }
}
