//! Deterministic RNG stream derivation and samplers.
//!
//! Every stochastic component of the simulator (input variability,
//! contention phases, measurement noise) draws from its own independent
//! stream derived from a single experiment seed, so that
//!
//! * experiments are bit-reproducible across runs and thread schedules, and
//! * changing one component's consumption pattern does not perturb the
//!   others (no accidental coupling through a shared RNG).
//!
//! Streams are derived with SplitMix64 over `(seed, label)` — cheap, well
//! distributed, and stable across platforms.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a 64-bit stream seed from an experiment seed and a label.
///
/// Uses SplitMix64 finalization over the XOR of the seed and the label
/// hash; labels are hashed with FNV-1a so that human-readable stream names
/// ("inputs", "contention", …) can be used directly.
///
/// # Examples
///
/// ```
/// use alert_stats::rng::derive_seed;
/// let a = derive_seed(42, "inputs");
/// let b = derive_seed(42, "contention");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "inputs"));
/// ```
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
    }
    splitmix64(seed ^ h)
}

/// One step of the SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a [`StdRng`] for a named stream of an experiment seed.
pub fn stream_rng(seed: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, label))
}

/// Samples a truncated normal on `[lo, hi]` by clamped Box–Muller.
///
/// Clamping (rather than rejection) slightly inflates the boundary mass but
/// is deterministic in the number of RNG draws, which keeps streams aligned
/// across configuration changes. Good enough for workload noise.
///
/// # Panics
///
/// Panics if `lo > hi` — an inverted truncation interval has no
/// well-defined sample, and every caller derives the bounds from
/// already-validated scenario parameters.
pub fn sample_truncated_normal<R: rand::Rng>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid truncation bounds");
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + std_dev * z).clamp(lo, hi)
}

/// Samples a lognormal with the given *location* and *scale* of the
/// underlying normal (i.e. `exp(N(mu, sigma))`).
pub fn sample_lognormal<R: rand::Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_stable_and_label_sensitive() {
        assert_eq!(derive_seed(1, "a"), derive_seed(1, "a"));
        assert_ne!(derive_seed(1, "a"), derive_seed(1, "b"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn stream_rngs_are_independent() {
        let mut a = stream_rng(7, "x");
        let mut b = stream_rng(7, "y");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
        // Same stream re-created yields identical values.
        let mut a2 = stream_rng(7, "x");
        let va2: Vec<u64> = (0..8).map(|_| a2.gen()).collect();
        assert_eq!(va, va2);
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = stream_rng(3, "t");
        for _ in 0..1000 {
            let v = sample_truncated_normal(&mut rng, 1.0, 5.0, 0.5, 1.5);
            assert!((0.5..=1.5).contains(&v));
        }
    }

    #[test]
    fn truncated_normal_mean_close() {
        let mut rng = stream_rng(4, "m");
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| sample_truncated_normal(&mut rng, 2.0, 0.1, 0.0, 4.0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let mut rng = stream_rng(5, "ln");
        let n = 20_000;
        let mut sum_log = 0.0;
        for _ in 0..n {
            let v = sample_lognormal(&mut rng, 0.2, 0.3);
            assert!(v > 0.0);
            sum_log += v.ln();
        }
        let mean_log = sum_log / n as f64;
        assert!((mean_log - 0.2).abs() < 0.01, "mean log = {mean_log}");
    }

    #[test]
    #[should_panic(expected = "invalid truncation bounds")]
    fn truncated_normal_rejects_inverted_bounds() {
        let mut rng = stream_rng(6, "bad");
        let _ = sample_truncated_normal(&mut rng, 0.0, 1.0, 2.0, 1.0);
    }
}
