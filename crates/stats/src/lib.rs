//! Statistics and estimation substrate for the ALERT reproduction.
//!
//! This crate is the leaf of the workspace dependency graph. It hosts
//! everything that is "pure math" and shared by every other crate:
//!
//! * [`units`] — scalar newtypes ([`Seconds`](units::Seconds),
//!   [`Watts`](units::Watts), [`Joules`](units::Joules)) used at all API
//!   boundaries so that latency/power/energy cannot be mixed up silently.
//! * [`normal`] — the standard normal distribution: `erf`, CDF, inverse CDF
//!   (Acklam's algorithm refined with Halley steps), and a parameterized
//!   [`Normal`](normal::Normal) type. ALERT's deadline-meeting probability
//!   (paper Eq. 6) and percentile energy bound (Eq. 12) are built on these.
//! * [`kalman`] — scalar Kalman filters: the textbook filter, the
//!   adaptive-process-noise extension used for the global slowdown factor
//!   (paper Eq. 5, after Akhlaghi et al.), and the simpler idle-power filter
//!   (paper Eq. 8).
//! * [`summary`] — streaming descriptive statistics (Welford), percentiles,
//!   five-number summaries for the paper's boxplot figures, harmonic means
//!   for Table 4 aggregation.
//! * [`histogram`] — fixed-bin histograms with density normalization
//!   (paper Fig. 11).
//! * [`hull`] — lower convex hull and Pareto frontier of 2-D point sets
//!   (paper Fig. 2).
//! * [`fit`] — Gaussian maximum-likelihood fit plus a Kolmogorov–Smirnov
//!   distance (used to quantify how non-Gaussian observed slowdowns are,
//!   paper Fig. 11 and §3.6).
//! * [`rng`] — deterministic RNG stream derivation and a few samplers not
//!   worth pulling a dependency for.
//! * [`cputime`] — the per-thread CPU clock (raw `clock_gettime` syscall
//!   on Linux), so the controller can meter its own decision cost without
//!   charging itself for preemption and lock waits.
//! * [`telemetry`] — the metric substrate of the observability layer: a
//!   static-name registry (counters, gauges, log-bucketed histograms)
//!   with per-session/per-shard scopes and byte-deterministic JSON
//!   snapshots, plus the bounded ring buffer behind the flight recorder.
//!
//! Everything here is deterministic and allocation-light; the hot paths
//! (CDF evaluation, Kalman updates) are called once per candidate
//! configuration per input by the controller.

pub mod cputime;
pub mod fit;
pub mod histogram;
pub mod hull;
pub mod kalman;
pub mod normal;
pub mod rng;
pub mod summary;
pub mod telemetry;
pub mod units;

pub use fit::{GaussianFit, KsStatistic};
pub use histogram::Histogram;
pub use hull::{lower_convex_hull, pareto_frontier, Point2};
pub use kalman::{AdaptiveKalman, AdaptiveKalmanParams, IdlePowerFilter, ScalarKalman};
pub use normal::{inv_phi, phi, Normal};
pub use summary::{five_number, harmonic_mean, percentile, FiveNumber, Welford};
pub use telemetry::{LogHistogram, MetricsRegistry, MetricsSnapshot, RingBuffer, Scope};
pub use units::{Joules, Seconds, Watts};
