//! Per-thread CPU time, dependency-free.
//!
//! ALERT measures its own decision overhead and reserves the worst case
//! out of every deadline (paper §3.2 step 2, §4). Measuring that with a
//! *wall* clock conflates the controller's compute with scheduler
//! preemption and lock waits: on an oversubscribed machine the measured
//! "overhead" inflates by the co-runner count (the 1-core runtime bench
//! read 33 µs at 1 worker and 222 µs at 8), and `OverheadPolicy::Measured`
//! then feeds that noise straight back into deadlines. The honest meter
//! for "time the controller itself burned" is the thread CPU clock.
//!
//! Rust's `std` does not expose `CLOCK_THREAD_CPUTIME_ID` and this build
//! environment has no `libc`, so on Linux we issue the `clock_gettime`
//! syscall directly (x86-64 and aarch64); elsewhere the caller falls back
//! to the wall clock. The syscall has no vDSO fast path for the thread
//! clock, costing ~100–200 ns — irrelevant against multi-microsecond
//! decisions, and *stable*, unlike the noise it removes.

use std::time::Duration;

/// `CLOCK_THREAD_CPUTIME_ID` from `linux/time.h`.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
const CLOCK_THREAD_CPUTIME_ID: usize = 3;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// CPU time consumed by the calling thread, or `None` where the thread
/// clock is unavailable (non-Linux targets, unsupported architectures).
///
/// The value is an opaque monotonic origin — only differences between two
/// calls on the *same* thread are meaningful.
///
/// # Examples
///
/// ```
/// use alert_stats::cputime::thread_cpu_time;
///
/// if let (Some(a), Some(b)) = (thread_cpu_time(), thread_cpu_time()) {
///     assert!(b >= a, "thread CPU time must be monotone");
/// }
/// ```
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn thread_cpu_time() -> Option<Duration> {
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts)` only
    // writes a `struct timespec` through the pointer we hand it, `ts`
    // lives across the call, and the syscall clobbers exactly the
    // registers declared below (rcx/r11 on x86-64; nothing extra on
    // aarch64 beyond the return register).
    let ret: isize = unsafe {
        #[cfg(target_arch = "x86_64")]
        {
            let mut ret: isize;
            std::arch::asm!(
                "syscall",
                inlateout("rax") 228isize => ret, // __NR_clock_gettime
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") &mut ts as *mut Timespec,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            ret
        }
        #[cfg(target_arch = "aarch64")]
        {
            let mut ret: isize;
            std::arch::asm!(
                "svc 0",
                in("x8") 113usize, // __NR_clock_gettime
                inlateout("x0") CLOCK_THREAD_CPUTIME_ID => ret,
                in("x1") &mut ts as *mut Timespec,
                options(nostack),
            );
            ret
        }
    };
    if ret != 0 || ts.tv_sec < 0 || !(0..1_000_000_000).contains(&ts.tv_nsec) {
        return None;
    }
    Some(Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32))
}

/// Fallback for targets without a usable thread CPU clock.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn thread_cpu_time() -> Option<Duration> {
    None
}

/// A decision-cost stopwatch: thread-CPU clock when the platform has
/// one, wall clock otherwise.
///
/// This is the *only* sanctioned way for non-bench code to measure its
/// own cost. The wall-clock member exists purely as the fallback for
/// targets without `CLOCK_THREAD_CPUTIME_ID`; keeping it here (in the
/// metering module) rather than at the call site is what lets
/// controller state carry no ambient wall time — `alert-lint`'s
/// `no-wall-clock` rule enforces exactly that boundary.
#[derive(Debug)]
pub struct DecisionStopwatch {
    cpu_start: Option<Duration>,
    wall_start: std::time::Instant,
}

impl DecisionStopwatch {
    /// Starts the stopwatch on the calling thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use alert_stats::cputime::DecisionStopwatch;
    ///
    /// let sw = DecisionStopwatch::start();
    /// let cost = sw.elapsed();
    /// assert!(cost >= std::time::Duration::ZERO);
    /// ```
    pub fn start() -> Self {
        DecisionStopwatch {
            cpu_start: thread_cpu_time(),
            wall_start: std::time::Instant::now(),
        }
    }

    /// Elapsed cost since [`DecisionStopwatch::start`]: CPU time where
    /// the thread clock exists, wall time elsewhere. Can be zero — a
    /// cached decision may finish between two ticks of the CPU clock —
    /// so callers that treat zero as "nothing happened" must apply
    /// their own floor.
    pub fn elapsed(&self) -> Duration {
        match (self.cpu_start, thread_cpu_time()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => self.wall_start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_on_one_thread() {
        let Some(a) = thread_cpu_time() else {
            return; // platform without the clock: nothing to check
        };
        // Burn a little CPU so the clock must advance.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = thread_cpu_time().expect("clock stays available");
        assert!(b >= a, "thread CPU time went backwards: {a:?} -> {b:?}");
        assert!(b > a, "2M multiplies must consume measurable CPU time");
    }

    #[test]
    fn excludes_sleep_time() {
        let Some(a) = thread_cpu_time() else {
            return;
        };
        std::thread::sleep(Duration::from_millis(30));
        let b = thread_cpu_time().expect("clock stays available");
        // Sleeping burns (nearly) no CPU: far less than the 30 ms the
        // wall clock would have charged.
        assert!(
            b - a < Duration::from_millis(15),
            "sleep charged {:?} of CPU time",
            b - a
        );
    }
}
